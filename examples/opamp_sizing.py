#!/usr/bin/env python
"""Size the two-stage Miller op-amp (paper §III-B) for a specific target.

Demonstrates the domain workload from the paper's introduction: an analog
designer has a target specification (gain, bandwidth, phase margin, power
budget) and wants transistor sizes.  The trained agent walks the 1e14-point
sizing grid in a couple dozen simulations; the same request through the
vanilla genetic algorithm costs an order of magnitude more.

Run:  python examples/opamp_sizing.py          (scaled-down training)
      AUTOCKT_FULL=1 python examples/opamp_sizing.py
"""

import os

from repro.baselines import GAConfig, GeneticOptimizer
from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig
from repro.rl.ppo import PPOConfig
from repro.topologies import SchematicSimulator, TwoStageOpAmp

FULL = os.environ.get("AUTOCKT_FULL", "0") not in ("0", "", "false")

#: The design request: a 300x amplifier at 10 MHz with proper stability
#: and a 1 mA budget.
TARGET = {"gain": 300.0, "ugbw": 1.0e7, "phase_margin": 60.0, "ibias": 1e-3}


def main() -> None:
    config = AutoCktConfig(
        ppo=PPOConfig(n_envs=10, n_steps=60, epochs=8, minibatch_size=64,
                      lr=5e-4, seed=0),
        env=SizingEnvConfig(max_steps=30),
        n_train_targets=50,
        max_iterations=300 if FULL else 120,
        stop_reward=3.0,
        stop_patience=3,
        seed=0,
    )
    agent = AutoCkt.for_topology(TwoStageOpAmp, config=config)
    print(agent.describe())
    print(f"\nTraining (~{'30' if FULL else '5'} min budget) ...")
    history = agent.train()
    print(f"done: {history.env_steps[-1]} env steps, "
          f"final mean reward {history.final_mean_reward:.2f}\n")

    print("Chasing the design request:",
          agent.spec_space.describe_target(TARGET))
    report = agent.deploy([TARGET], keep_trajectories=True, seed=1)
    outcome = report.outcomes[0]
    print(f"  reached: {outcome.success} in {outcome.sims_used} simulations")
    print("  achieved:", {k: float(f"{v:.4g}")
                          for k, v in outcome.final_specs.items()})
    sizes = agent.parameter_space.values(outcome.final_indices)
    print("  sizing:")
    for name, value in sizes.items():
        unit = "pF" if name == "cc" else "um"
        scale = 1e12 if name == "cc" else 1e6
        print(f"    {name:8s} = {value * scale:7.2f} {unit}")

    print("\nDatasheet of the converged design:")
    from repro.analysis import build_datasheet

    print(build_datasheet(TwoStageOpAmp(),
                          indices=outcome.final_indices).render())

    print("\nSame request through the vanilla GA (restarted from scratch):")
    ga = GeneticOptimizer(SchematicSimulator(TwoStageOpAmp()),
                          GAConfig(population=40, max_simulations=3000),
                          seed=7)
    result = ga.solve(TARGET)
    print(f"  reached: {result.success} in {result.simulations} simulations")
    if outcome.success and result.success:
        print(f"  AutoCkt speedup: {result.simulations / outcome.sims_used:.1f}x")


if __name__ == "__main__":
    main()
