#!/usr/bin/env python
"""Explore the TIA's speed/noise trade-off with the raw simulator stack.

This example skips the RL layer entirely and shows the substrate as a
standalone circuit simulator: sweep the feedback-resistor array of the
transimpedance amplifier and report bandwidth, settling and integrated
noise — the classic TIA design chart — then verify one design point with
a full nonlinear transient simulation of a photodiode current pulse.

Run:  python examples/tia_noise_design.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.sim import MnaSystem, solve_dc, transient_analysis
from repro.sim.transient import pulse_waveform
from repro.topologies import SchematicSimulator, TransimpedanceAmplifier


def main() -> None:
    topo = TransimpedanceAmplifier()
    sim = SchematicSimulator(topo, cache=False)
    space = topo.parameter_space

    # Sweep the series count of the feedback array at fixed device sizes.
    rows = []
    base = space.center.copy()
    series_axis = space.names.index("rf_series")
    for i in range(space["rf_series"].count):
        x = base.copy()
        x[series_axis] = i
        values = space.values(x)
        specs = sim.evaluate(x)
        rows.append([
            f"{topo.feedback_resistance(values) / 1e3:.1f}k",
            f"{specs['cutoff_freq'] / 1e9:.2f} GHz",
            f"{specs['settling_time'] * 1e12:.0f} ps",
            f"{specs['noise'] * 1e6:.0f} uVrms",
        ])
    print(ascii_table(["R_f", "cutoff", "settling (1%)", "input noise"],
                      rows, title="TIA feedback-resistor sweep (device sizes "
                                  "fixed at grid centre)"))

    # Full nonlinear verification of the centre design: a 10 uA photodiode
    # current pulse into the amplifier.
    values = space.values(base)
    netlist = topo.build(values)
    system = MnaSystem(netlist)
    op = solve_dc(system)
    print(f"\nDC operating point: v(out) = {op.voltage('out'):.3f} V, "
          f"supply current = {1e3 * op.supply_current():.2f} mA")
    for name, state in op.mosfet_states.items():
        print(f"  {name}: {state.region}, gm = {state.gm * 1e3:.2f} mS")

    result = transient_analysis(
        system, t_stop=8e-9, dt=4e-12,
        waveforms={"IIN": pulse_waveform(0.0, 10e-6, delay=1e-9,
                                         rise=50e-12, width=3e-9)})
    vout = result.voltage("out")
    swing = np.max(vout) - np.min(vout)
    rt = topo.feedback_resistance(values)
    print(f"\nTransient pulse response: output swing {swing * 1e3:.2f} mV "
          f"for a 10 uA pulse (~{swing / 10e-6 / 1e3:.1f} kOhm "
          f"transimpedance; R_f = {rt / 1e3:.1f} kOhm)")


if __name__ == "__main__":
    main()
