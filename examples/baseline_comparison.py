#!/usr/bin/env python
"""Head-to-head: AutoCkt vs GA vs BagNet vs random agent on one topology.

Reproduces the logic of the paper's comparison tables on a configurable
number of targets, printing per-target simulation counts so the
restart-from-scratch cost of the evolutionary baselines is visible.

Run:  python examples/baseline_comparison.py
"""

import os

import numpy as np

from repro.analysis import ascii_table
from repro.baselines import (
    BagNetConfig,
    BagNetOptimizer,
    GAConfig,
    GeneticOptimizer,
    random_agent_deployment,
)
from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig
from repro.rl.ppo import PPOConfig
from repro.topologies import SchematicSimulator, TransimpedanceAmplifier

FULL = os.environ.get("AUTOCKT_FULL", "0") not in ("0", "", "false")
N_TARGETS = 20 if FULL else 6
BUDGET = 3000 if FULL else 1000


def main() -> None:
    config = AutoCktConfig(
        ppo=PPOConfig(n_envs=10, n_steps=60, epochs=8, minibatch_size=64,
                      lr=5e-4, seed=0),
        env=SizingEnvConfig(max_steps=30),
        n_train_targets=50,
        max_iterations=60,
        stop_reward=2.0,
        stop_patience=3,
        seed=0,
    )
    agent = AutoCkt.for_topology(TransimpedanceAmplifier, config=config)
    print("Training AutoCkt once (amortised over every future target) ...")
    agent.train()
    train_sims = agent.training_env_steps
    print(f"  training cost: {train_sims} simulations\n")

    targets = agent.sampler.fresh_targets(N_TARGETS, seed=99)

    agent_report = agent.deploy(targets, seed=99)
    random_report = random_agent_deployment(
        SchematicSimulator(TransimpedanceAmplifier()), targets,
        max_steps=30, seed=99)

    ga_sims, ga_ok = [], 0
    bn_sims, bn_ok = [], 0
    for i, target in enumerate(targets):
        ga = GeneticOptimizer(SchematicSimulator(TransimpedanceAmplifier()),
                              GAConfig(population=20, max_simulations=BUDGET),
                              seed=i)
        r = ga.solve(target)
        ga_sims.append(r.simulations if r.success else BUDGET)
        ga_ok += int(r.success)
        bn = BagNetOptimizer(SchematicSimulator(TransimpedanceAmplifier()),
                             BagNetConfig(ga=GAConfig(population=20)), seed=i)
        r = bn.solve(target, max_simulations=BUDGET)
        bn_sims.append(r.simulations if r.success else BUDGET)
        bn_ok += int(r.success)

    rows = [
        ["AutoCkt (this work)",
         f"{agent_report.mean_sims_to_success:.1f}",
         f"{agent_report.n_reached}/{N_TARGETS}",
         f"one-off {train_sims}"],
        ["Vanilla GA", f"{np.mean(ga_sims):.1f}", f"{ga_ok}/{N_TARGETS}",
         "restarted per target"],
        ["BagNet-style GA+DNN", f"{np.mean(bn_sims):.1f}",
         f"{bn_ok}/{N_TARGETS}", "restarted per target"],
        ["Random agent", "n/a",
         f"{random_report.n_reached}/{N_TARGETS}", "-"],
    ]
    print(ascii_table(
        ["method", "sims per target", "reached", "training cost"],
        rows, title=f"Baseline comparison on {N_TARGETS} unseen TIA targets"))

    if agent_report.n_reached:
        breakeven = train_sims / max(
            np.mean(ga_sims) - agent_report.mean_sims_to_success, 1.0)
        print(f"\nAutoCkt's training amortises after ~{breakeven:.0f} design "
              "requests (the paper's agile-iteration argument).")


if __name__ == "__main__":
    main()
