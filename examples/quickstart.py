#!/usr/bin/env python
"""Quickstart: train AutoCkt on the transimpedance amplifier and size it
for unseen target specifications.

This is the smallest end-to-end run of the framework: it trains the PPO
agent on 50 random target specs (a couple of minutes on a laptop), then
deploys it on 50 targets it has never seen and prints the paper's two
headline metrics — generalisation and sample efficiency.

Run:  python examples/quickstart.py
"""

from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig
from repro.rl.ppo import PPOConfig
from repro.topologies import TransimpedanceAmplifier


def main() -> None:
    config = AutoCktConfig(
        ppo=PPOConfig(n_envs=10, n_steps=60, epochs=8, minibatch_size=64,
                      lr=5e-4, seed=0),
        env=SizingEnvConfig(max_steps=30),   # the paper's trajectory length H
        n_train_targets=50,                  # the paper's sparse subsample
        max_iterations=60,
        stop_reward=0.0,                     # paper: stop at mean reward 0
        stop_patience=3,
        seed=0,
    )
    agent = AutoCkt.for_topology(TransimpedanceAmplifier, config=config)

    print("Training on 50 random target specifications ...")

    def progress(trainer, history):
        i = history.iterations[-1]
        if i % 5 == 0 or i == 1:
            print(f"  iter {i:3d}  env steps {history.env_steps[-1]:6d}  "
                  f"mean reward {history.mean_reward[-1]:7.2f}  "
                  f"success {history.success_rate[-1]:.2f}")
        return False

    history = agent.train(callback=progress)
    print(f"training done after {history.env_steps[-1]} env steps "
          f"({history.wall_time_s:.0f} s), final mean reward "
          f"{history.final_mean_reward:.2f}\n")

    print("Deploying on 50 unseen random targets ...")
    report = agent.deploy(50, seed=123)
    print(f"  reached {report.n_reached}/{report.n_targets} targets "
          f"({100 * report.generalization:.1f}% generalisation)")
    print(f"  mean simulations per reached target: "
          f"{report.mean_sims_to_success:.1f}")

    # Show one concrete sizing the agent produced.
    success = next((o for o in report.outcomes if o.success), None)
    if success is not None:
        print("\nExample design:")
        print("  target:  ",
              agent.spec_space.describe_target(success.target))
        print("  achieved:", {k: float(f"{v:.4g}")
                              for k, v in success.final_specs.items()})
        values = agent.parameter_space.values(success.final_indices)
        print("  sizing:  ", {k: float(f"{v:.4g}") for k, v in values.items()})


if __name__ == "__main__":
    main()
