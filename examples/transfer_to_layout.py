#!/usr/bin/env python
"""Transfer learning from schematic to post-layout simulation (paper §III-D).

Trains the negative-gm OTA agent on cheap schematic simulations, then
deploys it — with *no retraining* — through the PEX environment: every
evaluation builds a pseudo-layout, extracts wiring/access parasitics,
sweeps three PVT corners and takes the worst case.  Converged designs are
verified with LVS, reproducing the paper's "40 LVS passed designs" flow.

Run:  python examples/transfer_to_layout.py
"""

import os

from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig, transfer_deploy
from repro.core.transfer import schematic_pex_differences
from repro.pex import PexSimulator
from repro.rl.ppo import PPOConfig
from repro.topologies import NegGmOta, SchematicSimulator

import numpy as np

FULL = os.environ.get("AUTOCKT_FULL", "0") not in ("0", "", "false")


def main() -> None:
    config = AutoCktConfig(
        ppo=PPOConfig(n_envs=10, n_steps=60, epochs=8, minibatch_size=64,
                      lr=5e-4, seed=0),
        env=SizingEnvConfig(max_steps=30),
        n_train_targets=50,
        max_iterations=250 if FULL else 100,
        stop_reward=3.0,
        stop_patience=3,
        seed=0,
    )
    agent = AutoCkt.for_topology(NegGmOta, config=config)
    print("Training on schematic simulations ...")
    history = agent.train()
    print(f"done: final mean reward {history.final_mean_reward:.2f}\n")

    n_designs = 40 if FULL else 8
    pex = PexSimulator(NegGmOta)
    targets = agent.sampler.fresh_targets(n_designs, seed=42)
    print(f"Deploying through PEX + PVT corners on {n_designs} targets "
          "(no retraining) ...")
    report = transfer_deploy(agent.policy, pex, targets, max_steps=60,
                             seed=42)
    print(f"  reached {report.deployment.n_reached}/{n_designs}, "
          f"{report.n_lvs_passed} LVS passed, "
          f"mean {report.mean_sims_to_success:.1f} PEX simulations each\n")

    # The Fig. 14 bottom-right statistic: how different is PEX really?
    print("Schematic vs PEX differences over converged designs:")
    designs = [o.final_indices for o in report.deployment.outcomes if o.success]
    if designs:
        diffs = schematic_pex_differences(
            SchematicSimulator(NegGmOta()), pex, designs)
        for name, values in diffs.items():
            print(f"  {name:15s} mean {np.mean(values):+7.2f}%  "
                  f"sd {np.std(values):6.2f}%")

    # Inspect one layout.
    success = next((o for o in report.deployment.outcomes if o.success), None)
    if success is not None:
        layout = pex.layout_for(success.final_indices)
        print(f"\nExample pseudo-layout: {layout.width * 1e6:.1f} x "
              f"{layout.height * 1e6:.1f} um, "
              f"{len(layout.footprints)} devices")
        for fp in layout.footprints[:6]:
            print(f"  {fp.name:5s} at ({fp.x * 1e6:6.2f}, {fp.y * 1e6:6.2f}) "
                  f"um, {fp.width * 1e6:5.2f} x {fp.height * 1e6:5.2f} um")


if __name__ == "__main__":
    main()
