#!/usr/bin/env python
"""Parallel environments: reproducing the paper's Ray axis.

The paper "utilize[s] the capabilities of Ray to run multiple environments
in parallel", quoting 1.3 h wall clock for the op-amp on an 8-core CPU.
The library's stand-in is :class:`repro.rl.ParallelVectorEnv` — one worker
process per environment behind the same interface as the in-process
``VectorEnv``.

This example measures when that pays: it times rollout collection through
both implementations for (a) the real microsecond-scale schematic
environment and (b) the same environment with a simulated per-step cost
(standing in for the 91-second PEX simulations of paper §III-D, scaled to
keep the demo short).  The crossover is the lesson — parallelism wins
exactly when a single simulation is expensive, which is why the paper's
transfer-learning trick (train cheap, deploy expensive) matters.

Run:  python examples/parallel_training.py
"""

import time

import numpy as np

from repro.analysis import ascii_table
from repro.core import SizingEnvConfig
from repro.core.env import SizingEnv
from repro.rl import ParallelVectorEnv, VectorEnv
from repro.topologies import SchematicSimulator, TransimpedanceAmplifier

N_ENVS = 6
N_STEPS = 120


class SlowEnv(SizingEnv):
    """Sizing env with an artificial per-simulation delay (PEX stand-in)."""

    DELAY_S = 0.01

    def step(self, action):
        time.sleep(self.DELAY_S)
        return super().step(action)


def make_env(slow: bool, seed: int):
    cls = SlowEnv if slow else SizingEnv
    return cls(SchematicSimulator(TransimpedanceAmplifier()),
               config=SizingEnvConfig(max_steps=30), seed=seed)


def time_rollout(vec) -> float:
    rng = np.random.default_rng(0)
    obs = vec.reset()
    nvec = vec.action_space.nvec
    started = time.perf_counter()
    for _ in range(N_STEPS):
        actions = rng.integers(0, nvec, size=(N_ENVS, len(nvec)))
        obs, *_ = vec.step(actions)
    return time.perf_counter() - started


def main() -> None:
    rows = []
    for slow, label in ((False, "schematic (~ms/sim)"),
                        (True, f"PEX stand-in ({SlowEnv.DELAY_S * 1e3:.0f} "
                               "ms/sim)")):
        serial = VectorEnv([make_env(slow, seed=i) for i in range(N_ENVS)])
        t_serial = time_rollout(serial)

        with ParallelVectorEnv([lambda i=i: make_env(slow, seed=i)
                                for i in range(N_ENVS)]) as parallel:
            t_parallel = time_rollout(parallel)

        rows.append([label, f"{t_serial:.2f}", f"{t_parallel:.2f}",
                     f"{t_serial / t_parallel:.2f}x"])

    print(ascii_table(
        ["environment", "serial [s]", f"parallel x{N_ENVS} [s]", "speedup"],
        rows,
        title=(f"Rollout wall clock, {N_STEPS} steps x {N_ENVS} envs "
               "(speedup < 1 means IPC overhead dominates)")))
    print("\nThe speedup grows with per-simulation cost: pipe overhead is "
          "~0.1 ms per step, so millisecond schematic sims gain a little "
          "and PEX-scale sims approach the full core count. Set "
          "AutoCktConfig(parallel_envs=True) to opt in.")


if __name__ == "__main__":
    main()
