#!/usr/bin/env python
"""Design-space exploration: what the agent "understands" about a circuit.

The paper argues the trained agent "intuitively understands the design
space in the same manner as a circuit designer ... tradeoffs between
different target specifications".  This example inspects that design
space directly with the analysis toolbox:

1. finite-difference sensitivities of every spec w.r.t. every knob of the
   two-stage op-amp (which transistor moves which spec);
2. a sweep of the Miller capacitor showing the gain/bandwidth/stability
   trade-off as ASCII plots;
3. pole analysis at two compensation settings, connecting the phase-margin
   spec to the underlying pole positions.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.analysis import line_plot, spec_sensitivities, sweep_parameter
from repro.sim import MnaSystem, circuit_poles, solve_dc
from repro.topologies import SchematicSimulator, TwoStageOpAmp


def main() -> None:
    topo = TwoStageOpAmp()
    sim = SchematicSimulator(topo)
    centre = topo.parameter_space.center

    # 1. Which knob moves which spec?
    print("Computing spec sensitivities at the grid centre ...\n")
    report = spec_sensitivities(sim, centre)
    print(report.render())
    print()
    for spec in topo.spec_space.names:
        print(f"  {spec}: dominated by {report.dominant_parameter(spec)}")

    # 2. Sweep the compensation capacitor.
    print("\nSweeping the Miller capacitor cc across its grid ...")
    sweep = sweep_parameter(sim, "cc", centre, points=25)
    cc_pf = sweep.values / 1e-12
    print()
    print(line_plot({"ugbw": (cc_pf, sweep.specs["ugbw"])},
                    log_y=True, x_label="cc [pF]", y_label="UGBW [Hz]",
                    title="Bandwidth falls as compensation grows",
                    width=56, height=12))
    print()
    print(line_plot({"phase margin": (cc_pf, sweep.specs["phase_margin"])},
                    x_label="cc [pF]", y_label="PM [deg]",
                    title="Stability improves as compensation grows",
                    width=56, height=12, hlines=[60.0]))
    pm = sweep.specs["phase_margin"]
    if (pm < 60.0).any() and (pm >= 60.0).any():
        crossing = cc_pf[np.argmax(pm >= 60.0)]
        print(f"\n60-degree phase margin first reached at cc ~ "
              f"{crossing:.2f} pF")

    # 3. Poles at light vs heavy compensation.
    print("\nPole view of the same trade-off:")
    names = list(topo.parameter_space.names)
    for label, cc_index in (("light (cc ~ 0.5 pF)", 4),
                            ("heavy (cc ~ 8 pF)", 79)):
        idx = centre.copy()
        idx[names.index("cc")] = cc_index
        values = topo.parameter_space.values(idx)
        system = MnaSystem(topo.build(values))
        op = solve_dc(system)
        poles = circuit_poles(system, op)
        dom = poles.dominant_frequency_hz()
        print(f"  {label:22s} dominant pole {dom:10.3e} Hz, "
              f"max Q {poles.max_q():.2f}, "
              f"{'stable' if poles.stable else 'UNSTABLE'}")


if __name__ == "__main__":
    main()
