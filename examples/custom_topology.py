#!/usr/bin/env python
"""Adding your own circuit: size a diode-loaded common-source stage.

The paper's Fig. 1 claims the framework designs "any circuit topology"
given three ingredients: the parameter grids, the target-spec ranges, and
a netlist/testbench.  This example supplies all three for a circuit the
library does *not* ship — an NMOS common-source amplifier with a
diode-connected PMOS load — and runs the full train/deploy loop on it, touching
nothing else in the stack.

(The library's own extensibility circuit, the five-transistor OTA in
``repro.topologies.five_t_ota``, was added exactly the same way.)

Run:  python examples/custom_topology.py
"""

from repro.circuits import Capacitor, Netlist, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.technology import Technology, ptm45
from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.measure import dc_gain, f3db
from repro.rl.ppo import PPOConfig
from repro.sim.ac import ac_sweep, log_frequencies
from repro.topologies import GridParam, ParameterSpace, SchematicSimulator, Topology
from repro.units import MICRO, PICO


class CommonSourceAmp(Topology):
    """NMOS common-source stage with a diode-connected PMOS load.

    The diode load self-biases (it conducts whatever the NMOS demands), so
    every point of the two-knob grid has a healthy operating point —
    gain ~ gm_n / gm_p and bandwidth ~ gm_p / C_L pull against each other
    through the shared bias current.  Two knobs, two specs: the smallest
    interesting sizing problem.  (Calibration probe over the grid: gain
    0.4-3.3 V/V, bandwidth 30-500 MHz.)
    """

    name = "common_source"

    C_LOAD = 0.5 * PICO
    VBIAS_FRACTION = 0.35

    @classmethod
    def default_technology(cls) -> Technology:
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        return ParameterSpace([
            GridParam("w_drive", 2, 50, 1, scale=MICRO, unit="m"),
            GridParam("w_load", 2, 50, 1, scale=MICRO, unit="m"),
        ])

    def _build_spec_space(self) -> SpecSpace:
        return SpecSpace([
            Spec("gain", 1.0, 2.5, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("bandwidth", 3.0e7, 2.5e8, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
        ])

    def build(self, values):
        tech = self.technology
        net = Netlist("common_source")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VIN", "g", "0",
                              dc=self.VBIAS_FRACTION * tech.vdd, ac=1.0))
        net.add(Mosfet("MP", "out", "out", "vdd", "vdd", polarity="pmos",
                       params=self.device_params("pmos"),
                       w=values["w_load"], l=tech.l_default))
        net.add(Mosfet("MN", "out", "g", "0", "0", polarity="nmos",
                       params=self.device_params("nmos"),
                       w=values["w_drive"], l=tech.l_default))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def measure(self, system, op):
        freqs = log_frequencies(1e4, 1e11, points_per_decade=8)
        h = ac_sweep(system, op, freqs).voltage("out")
        return {"gain": dc_gain(freqs, h), "bandwidth": f3db(freqs, h)}


def main() -> None:
    topo = CommonSourceAmp()
    sim = SchematicSimulator(topo)
    centre = sim.evaluate(topo.parameter_space.center)
    print(f"{topo.name}: {topo.parameter_space.cardinality} sizings")
    print("centre specs:", {k: float(f"{v:.3g}") for k, v in centre.items()})

    config = AutoCktConfig(
        ppo=PPOConfig(n_envs=6, n_steps=40, epochs=6, minibatch_size=60,
                      lr=1e-3, seed=0),
        env=SizingEnvConfig(max_steps=15),
        n_train_targets=30,
        max_iterations=60,
        stop_reward=2.0,
        stop_patience=3,
        seed=0,
    )
    agent = AutoCkt.for_topology(CommonSourceAmp, config=config)
    print("\nTraining on the custom topology ...")
    history = agent.train()
    print(f"done in {history.env_steps[-1]} env steps, final mean reward "
          f"{history.final_mean_reward:.2f}")

    report = agent.deploy(30, seed=11)
    print(f"\nDeployment: reached {report.n_reached}/{report.n_targets} "
          f"unseen targets, mean {report.mean_sims_to_success:.1f} sims each")
    success = next((o for o in report.outcomes if o.success), None)
    if success:
        values = agent.parameter_space.values(success.final_indices)
        print("example sizing:",
              {k: float(f"{v:.4g}") for k, v in values.items()},
              "->", {k: float(f"{v:.4g}")
                     for k, v in success.final_specs.items()})


if __name__ == "__main__":
    main()
