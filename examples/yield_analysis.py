#!/usr/bin/env python
"""Yield analysis: will a sized design survive mismatch and corners?

The paper sizes circuits to meet a target at the typical corner (plus a
worst-case PVT sweep in the PEX flow).  Real signoff adds local device
mismatch: every transistor's threshold and gain factor vary independently
with sigma ~ 1/sqrt(WL) (the Pelgrom law).  This example takes one sizing
of the five-transistor OTA and asks the production question — *what
fraction of manufactured dies meets the target?* — then shows the classic
remedy: spending area (bigger devices at the same current density) buys
yield.

Run:  python examples/yield_analysis.py
"""

import numpy as np

from repro.analysis import ascii_histogram, ascii_table
from repro.pex import MismatchModel, MonteCarloAnalysis, estimate_yield
from repro.topologies import FiveTransistorOta

TARGET = {"gain": 150.0, "ugbw": 2.0e7, "ibias": 2.0e-4}
N_TRIALS = 120


def run_point(topo, indices, label):
    mc = MonteCarloAnalysis(topo, MismatchModel())
    result = mc.run(indices=indices, n_trials=N_TRIALS, seed=0)
    est = estimate_yield(result, TARGET, topo.spec_space)
    return result, est, label


def main() -> None:
    topo = FiveTransistorOta()
    space = topo.parameter_space
    names = list(space.names)

    print(f"Target: {topo.spec_space.describe_target(TARGET)}")
    print(f"Monte Carlo: {N_TRIALS} mismatch draws per sizing "
          f"(Pelgrom A_vt = 3.5 mV*um)\n")

    # A deliberately small design vs. the same design with 4x the area.
    small = space.center.copy()
    small[names.index("w_in")] = 20
    big = small.copy()
    big[names.index("w_in")] = 80

    rows = []
    results = {}
    for indices, label in ((small, "small input pair (10 um)"),
                           (big, "4x input pair (40 um)")):
        result, est, label = run_point(topo, indices, label)
        results[label] = result
        rows.append([
            label,
            f"{result.mean('gain'):.0f} +/- {result.std('gain'):.1f}",
            f"{result.mean('ugbw'):.3e}",
            f"{100 * est.rate:.1f}%",
            f"[{100 * est.ci_low:.1f}, {100 * est.ci_high:.1f}]%",
        ])
    print(ascii_table(
        ["sizing", "gain (mean +/- sigma)", "UGBW mean", "yield",
         "95% CI"], rows,
        title="Mismatch yield vs. device area"))

    label = "small input pair (10 um)"
    print()
    print(ascii_histogram(results[label].specs["gain"], bins=12,
                          title=f"gain distribution, {label} "
                                f"(target >= {TARGET['gain']:.0f})"))

    small_sigma = results[label].sigma_fraction("gain")
    big_sigma = results["4x input pair (40 um)"].sigma_fraction("gain")
    print(f"\nrelative gain spread: {100 * small_sigma:.2f}% (small) vs "
          f"{100 * big_sigma:.2f}% (4x area) — area buys matching, as "
          "Pelgrom predicts (sigma ~ 1/sqrt(WL)).")


if __name__ == "__main__":
    main()
