"""Netlist container.

A :class:`Netlist` is an ordered collection of elements plus node
book-keeping.  It validates element name uniqueness on insertion and offers
structural checks (floating nodes, DC-path-to-ground) that the simulator
runs before attempting a solve — mirroring the topology checks a real SPICE
performs at parse time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.circuits.elements import Capacitor, CurrentSource, Element
from repro.errors import NetlistError

#: The global reference node.  ``"gnd"`` is accepted as an alias.
GROUND = "0"


def _canonical(node: str) -> str:
    return GROUND if node in (GROUND, "gnd", "GND", "vss!", "0") else node


class Netlist:
    """An ordered, name-indexed collection of circuit elements.

    >>> from repro.circuits import Netlist, Resistor, VoltageSource
    >>> net = Netlist("divider")
    >>> net.add(VoltageSource("V1", "in", "0", dc=1.0))
    >>> net.add(Resistor("R1", "in", "out", 1e3))
    >>> net.add(Resistor("R2", "out", "0", 1e3))
    >>> sorted(net.nodes())
    ['in', 'out']
    """

    def __init__(self, title: str = "untitled"):
        self.title = title
        self._elements: dict[str, Element] = {}

    # -- construction -------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add ``element``; raises :class:`NetlistError` on duplicate names."""
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        element.nodes = tuple(_canonical(n) for n in element.nodes)
        self._elements[element.name] = element
        return element

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements in order."""
        for element in elements:
            self.add(element)

    def remove(self, name: str) -> Element:
        """Remove and return the element called ``name``."""
        try:
            return self._elements.pop(name)
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    @property
    def elements(self) -> tuple[Element, ...]:
        return tuple(self._elements.values())

    def nodes(self) -> set[str]:
        """All non-ground node names."""
        result: set[str] = set()
        for element in self:
            result.update(n for n in element.nodes if n != GROUND)
        return result

    def elements_of(self, kind: type) -> list[Element]:
        """All elements that are instances of ``kind`` (in insertion order)."""
        return [e for e in self if isinstance(e, kind)]

    def structure_signature(self) -> tuple:
        """Hashable structural identity of the netlist.

        Two netlists with equal signatures (same element kinds, names and
        node connections, in the same order) assemble into identical MNA
        structures — same node/branch indices, same device terminal maps —
        and differ only in element *values*.  This is what
        :meth:`repro.sim.system.MnaSystem.restamp` checks before refreshing
        matrices in place instead of rebuilding them.
        """
        return tuple((type(e), e.name, e.nodes) for e in self)

    # -- structural checks ------------------------------------------------------
    def connectivity_graph(self, dc_only: bool = False) -> nx.Graph:
        """Graph with one vertex per node and one edge per element terminal
        pair.  With ``dc_only`` capacitors (which are open at DC) are skipped."""
        graph = nx.Graph()
        graph.add_node(GROUND)
        graph.add_nodes_from(self.nodes())
        for element in self:
            if dc_only and isinstance(element, Capacitor):
                continue
            if dc_only and isinstance(element, CurrentSource):
                # A current source enforces a current, not a potential; it
                # does not anchor a node's DC voltage on its own.
                continue
            terminals = [n for n in element.nodes]
            for a, b in zip(terminals, terminals[1:]):
                graph.add_edge(a, b, element=element.name)
        return graph

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`NetlistError` on problems.

        * the netlist must reference the ground node somewhere;
        * every node must have a DC path to ground (else the MNA matrix is
          singular), where capacitors and current sources do not count as
          paths.
        """
        if not self._elements:
            raise NetlistError(f"netlist {self.title!r} is empty")
        all_nodes = set()
        for element in self:
            all_nodes.update(element.nodes)
        if GROUND not in all_nodes:
            raise NetlistError(f"netlist {self.title!r} never references ground")
        graph = self.connectivity_graph(dc_only=True)
        reachable = nx.node_connected_component(graph, GROUND)
        floating = sorted(self.nodes() - reachable)
        if floating:
            raise NetlistError(
                f"netlist {self.title!r}: nodes without a DC path to ground: "
                f"{', '.join(floating)}")

    # -- utility -----------------------------------------------------------------
    def copy(self, title: str | None = None) -> "Netlist":
        """Shallow copy (elements are shared; safe because solvers never
        mutate elements)."""
        clone = Netlist(title or self.title)
        for element in self:
            clone._elements[element.name] = element
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.title!r}, {len(self)} elements, {len(self.nodes())} nodes)"
