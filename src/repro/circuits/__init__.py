"""Circuit representation: netlists, passive/active elements, MOSFET models,
and technology cards.

This package is the SPICE-netlist layer of the reproduction.  Everything is
plain data plus small-signal/large-signal evaluation; the numerical solvers
live in :mod:`repro.sim`.
"""

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuits.mosfet import Mosfet, MosfetState
from repro.circuits.netlist import GROUND, Netlist
from repro.circuits.technology import (
    Corner,
    DeviceParams,
    Technology,
    finfet16,
    ptm45,
)

__all__ = [
    "Capacitor",
    "Corner",
    "CurrentSource",
    "DeviceParams",
    "Element",
    "GROUND",
    "Inductor",
    "Mosfet",
    "MosfetState",
    "Netlist",
    "Resistor",
    "Technology",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "finfet16",
    "ptm45",
]
