"""Netlist elements.

Elements are light-weight data objects.  They know how to *stamp* themselves
into a modified-nodal-analysis (MNA) system through the small stamping
protocol defined here; the actual matrices live in :mod:`repro.sim.system`.

Stamping protocol
-----------------
The simulator hands each element a *stamper* object exposing:

``stamper.node(name) -> int``
    Index of a node (ground maps to ``-1`` and is skipped by the add
    methods).
``stamper.branch(element) -> int``
    Index of the element's auxiliary branch current (allocated on demand;
    voltage-defined elements need one).
``stamper.add_g(i, j, value)`` / ``stamper.add_c(i, j, value)``
    Accumulate into the conductance / capacitance matrix.
``stamper.add_b_dc(i, value)`` / ``stamper.add_b_ac(i, value)``
    Accumulate into the DC / AC excitation vectors.

Linear elements implement :meth:`Element.stamp`.  Nonlinear devices (the
MOSFET) additionally set ``is_nonlinear`` and implement
``eval_companion`` — see :mod:`repro.circuits.mosfet`.

Noise
-----
Elements that generate noise implement :meth:`Element.noise_sources`,
returning ``(node_p, node_n, psd_fn)`` triples where ``psd_fn(freq)`` is the
one-sided current-noise power spectral density [A^2/Hz] injected from
``node_n`` into ``node_p``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import NetlistError
from repro.units import BOLTZMANN

NoiseSource = tuple[str, str, Callable[[float], float]]


class Element:
    """Base class for every netlist element.

    Parameters
    ----------
    name:
        Unique (per netlist) instance name, e.g. ``"R1"`` or ``"M3"``.
    nodes:
        The node names this element connects to, in element-specific order.
    """

    #: True for devices whose current depends nonlinearly on node voltages.
    is_nonlinear: bool = False

    #: True for elements that add an auxiliary MNA branch-current unknown.
    has_branch: bool = False

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)

    def stamp(self, stamper) -> None:
        """Stamp the element's linear contribution into the MNA system."""
        raise NotImplementedError

    def stamp_key(self):
        """Hashable snapshot of the values :meth:`stamp` writes.

        The incremental restamp path (``MnaSystem.rebind_values``) freezes
        the stamps of elements whose key never changes across sizings and
        re-stamps only the rest.  ``None`` (the default) means "unknown" —
        the element is always re-stamped, which is safe for any subclass
        that does not override this.
        """
        return None

    def noise_sources(self, op) -> list[NoiseSource]:
        """Return this element's noise current sources at operating point ``op``."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"


class TwoTerminal(Element):
    """Convenience base class for two-terminal elements between ``p`` and ``n``."""

    def __init__(self, name: str, p: str, n: str):
        super().__init__(name, (p, n))

    @property
    def p(self) -> str:
        return self.nodes[0]

    @property
    def n(self) -> str:
        return self.nodes[1]


class Resistor(TwoTerminal):
    """Linear resistor.  Contributes Johnson (thermal) current noise 4kT/R."""

    def __init__(self, name: str, p: str, n: str, resistance: float):
        super().__init__(name, p, n)
        if resistance <= 0.0:
            raise NetlistError(f"resistor {name}: resistance must be > 0, got {resistance}")
        self.resistance = float(resistance)

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.p), stamper.node(self.n)
        g = 1.0 / self.resistance
        stamper.add_g(i, i, g)
        stamper.add_g(j, j, g)
        stamper.add_g(i, j, -g)
        stamper.add_g(j, i, -g)

    def stamp_key(self):
        return self.resistance

    def noise_sources(self, op) -> list[NoiseSource]:
        psd = 4.0 * BOLTZMANN * op.temperature / self.resistance

        def thermal(freq, _psd: float = psd):
            # White: broadcast against scalar or array frequency input.
            return _psd + np.zeros_like(np.asarray(freq, dtype=float))

        return [(self.p, self.n, thermal)]


class Capacitor(TwoTerminal):
    """Linear capacitor (noiseless)."""

    def __init__(self, name: str, p: str, n: str, capacitance: float):
        super().__init__(name, p, n)
        if capacitance <= 0.0:
            raise NetlistError(f"capacitor {name}: capacitance must be > 0, got {capacitance}")
        self.capacitance = float(capacitance)

    def stamp_key(self):
        return self.capacitance

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.p), stamper.node(self.n)
        c = self.capacitance
        stamper.add_c(i, i, c)
        stamper.add_c(j, j, c)
        stamper.add_c(i, j, -c)
        stamper.add_c(j, i, -c)


class Inductor(TwoTerminal):
    """Linear inductor.

    Implemented with an auxiliary branch current so that it is a DC short:
    ``v_p - v_n - L di/dt = 0``.
    """

    has_branch = True

    def __init__(self, name: str, p: str, n: str, inductance: float):
        super().__init__(name, p, n)
        if inductance <= 0.0:
            raise NetlistError(f"inductor {name}: inductance must be > 0, got {inductance}")
        self.inductance = float(inductance)

    def stamp_key(self):
        return self.inductance

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.p), stamper.node(self.n)
        k = stamper.branch(self)
        stamper.add_g(i, k, 1.0)
        stamper.add_g(j, k, -1.0)
        stamper.add_g(k, i, 1.0)
        stamper.add_g(k, j, -1.0)
        stamper.add_c(k, k, -self.inductance)


class VoltageSource(TwoTerminal):
    """Independent voltage source with a DC value and an AC magnitude.

    The AC magnitude excites small-signal analyses; it does not affect the
    operating point.
    """

    has_branch = True

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0, ac: float = 0.0):
        super().__init__(name, p, n)
        self.dc = float(dc)
        self.ac = float(ac)

    def stamp_key(self):
        return (self.dc, self.ac)

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.p), stamper.node(self.n)
        k = stamper.branch(self)
        stamper.add_g(i, k, 1.0)
        stamper.add_g(j, k, -1.0)
        stamper.add_g(k, i, 1.0)
        stamper.add_g(k, j, -1.0)
        stamper.add_b_dc(k, self.dc)
        if self.ac:
            stamper.add_b_ac(k, self.ac)


class CurrentSource(TwoTerminal):
    """Independent current source pushing current from ``p`` to ``n``
    through the external circuit (i.e. current is extracted from node ``p``
    and injected into node ``n`` — the SPICE convention)."""

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0, ac: float = 0.0):
        super().__init__(name, p, n)
        self.dc = float(dc)
        self.ac = float(ac)

    def stamp_key(self):
        return (self.dc, self.ac)

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.p), stamper.node(self.n)
        stamper.add_b_dc(i, -self.dc)
        stamper.add_b_dc(j, self.dc)
        if self.ac:
            stamper.add_b_ac(i, -self.ac)
            stamper.add_b_ac(j, self.ac)


class Vccs(Element):
    """Voltage-controlled current source: ``i(p->n) = gm * (v_cp - v_cn)``.

    Current ``gm * v_ctrl`` flows out of node ``p`` and into node ``n``
    through the source (SPICE G-element convention: current is injected
    into ``p``'s KCL as +gm*v_ctrl leaving the node).
    """

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str, gm: float):
        super().__init__(name, (p, n, cp, cn))
        self.gm = float(gm)

    def stamp_key(self):
        return self.gm

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        k, l = stamper.node(self.nodes[2]), stamper.node(self.nodes[3])
        gm = self.gm
        stamper.add_g(i, k, gm)
        stamper.add_g(i, l, -gm)
        stamper.add_g(j, k, -gm)
        stamper.add_g(j, l, gm)


class Vcvs(Element):
    """Voltage-controlled voltage source: ``v_p - v_n = gain * (v_cp - v_cn)``.

    Useful for ideal-amplifier testbenches in unit tests.
    """

    has_branch = True

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str, gain: float):
        super().__init__(name, (p, n, cp, cn))
        self.gain = float(gain)

    def stamp_key(self):
        return self.gain

    def stamp(self, stamper) -> None:
        i, j = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        k, l = stamper.node(self.nodes[2]), stamper.node(self.nodes[3])
        br = stamper.branch(self)
        stamper.add_g(i, br, 1.0)
        stamper.add_g(j, br, -1.0)
        stamper.add_g(br, i, 1.0)
        stamper.add_g(br, j, -1.0)
        stamper.add_g(br, k, -self.gain)
        stamper.add_g(br, l, self.gain)
