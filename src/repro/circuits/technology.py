"""Technology cards: the per-process device constants the MOSFET model needs.

The paper runs on three "processes": a 45 nm BSIM predictive technology
(through a generic schematic simulator), TSMC 16 nm FinFET (through
Spectre), and the same 16 nm process through BAG with layout parasitics.
We reproduce the *axis* — two distinct technologies with different supply
voltages, thresholds and transconductance constants — with two calibrated
cards for the smooth square-law model in :mod:`repro.circuits.mosfet`:

* :func:`ptm45` — a 45 nm-class planar CMOS card (1.0 V supply).
* :func:`finfet16` — a 16 nm-class FinFET card (0.8 V supply, higher
  drive, quantised widths conceptually represented by the finer grid the
  topology uses).

Process corners (TT/FF/SS/FS/SF) scale threshold voltage and mobility in
the usual correlated way; temperature scales mobility with a power law and
shifts the threshold linearly.  These feed the PVT sweep in
:mod:`repro.pex.corners`.
"""

from __future__ import annotations

import dataclasses
import enum
import math

from repro.units import EPSILON_0, EPSILON_SIO2, ROOM_TEMPERATURE


class Corner(enum.Enum):
    """Process corner: (NMOS flavour, PMOS flavour)."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"
    SF = "sf"

    @property
    def nmos_fast(self) -> bool:
        return self.value[0] == "f"

    @property
    def nmos_slow(self) -> bool:
        return self.value[0] == "s"

    @property
    def pmos_fast(self) -> bool:
        return self.value[1] == "f"

    @property
    def pmos_slow(self) -> bool:
        return self.value[1] == "s"


@dataclasses.dataclass(frozen=True)
class DeviceParams:
    """Constants of one MOSFET flavour (NMOS or PMOS) in one technology.

    Attributes
    ----------
    kp:
        Transconductance parameter ``mu * Cox`` [A/V^2].
    vth0:
        Zero-bias threshold voltage magnitude [V] (positive for both
        flavours; the model applies polarity).
    lambda_l:
        Channel-length-modulation coefficient per unit length [V^-1 * m]:
        the effective lambda of a device is ``lambda_l / L``.
    cox:
        Gate-oxide capacitance per area [F/m^2].
    c_overlap:
        Gate-drain/source overlap capacitance per width [F/m].
    c_junction:
        Drain/source junction capacitance per width [F/m] (includes the
        diffusion length implicitly).
    gamma_noise:
        Channel thermal-noise excess factor (2/3 long channel, >1 short).
    kf:
        Flicker-noise coefficient [J] in ``S_id = kf * gm^2 / (Cox W L f)``.
    body_k:
        Linearised body-effect coefficient dVth/dVsb [V/V].
    subthreshold_v:
        Smoothing width of the overdrive softplus [V]; sets an effective
        subthreshold slope.
    vth_corner_shift:
        Threshold shift magnitude [V] applied at fast (−) / slow (+) corners.
    mobility_corner_scale:
        Multiplicative kp spread at fast (×(1+s)) / slow (×(1−s)) corners.
    """

    kp: float
    vth0: float
    lambda_l: float
    cox: float
    c_overlap: float
    c_junction: float
    gamma_noise: float
    kf: float
    body_k: float = 0.2
    subthreshold_v: float = 0.04
    vth_corner_shift: float = 0.04
    mobility_corner_scale: float = 0.12
    vth_temp_coeff: float = -1.0e-3  # dVth/dT [V/K]
    mobility_temp_exp: float = -1.5  # kp ~ (T/T0)^exp

    def at(self, fast: bool, slow: bool, temperature: float) -> "DeviceParams":
        """Return a corner/temperature-adjusted copy of this card."""
        vth = self.vth0
        kp = self.kp
        if fast:
            vth -= self.vth_corner_shift
            kp *= 1.0 + self.mobility_corner_scale
        elif slow:
            vth += self.vth_corner_shift
            kp *= 1.0 - self.mobility_corner_scale
        dt = temperature - ROOM_TEMPERATURE
        vth += self.vth_temp_coeff * dt
        kp *= (temperature / ROOM_TEMPERATURE) ** self.mobility_temp_exp
        return dataclasses.replace(self, vth0=vth, kp=kp)


@dataclasses.dataclass(frozen=True)
class Technology:
    """A process technology: NMOS/PMOS cards plus global constants."""

    name: str
    nmos: DeviceParams
    pmos: DeviceParams
    vdd: float
    l_min: float
    #: Default channel length used by the reproduction's topologies [m].
    l_default: float

    def device(self, polarity: str, corner: Corner = Corner.TT,
               temperature: float = ROOM_TEMPERATURE) -> DeviceParams:
        """Return the (corner, temperature)-adjusted card for ``"nmos"``/``"pmos"``."""
        if polarity == "nmos":
            return self.nmos.at(corner.nmos_fast, corner.nmos_slow, temperature)
        if polarity == "pmos":
            return self.pmos.at(corner.pmos_fast, corner.pmos_slow, temperature)
        raise ValueError(f"unknown device polarity {polarity!r}")


def _cox_for_tox(tox_m: float) -> float:
    """Oxide capacitance per area for an (effective) oxide thickness."""
    return EPSILON_0 * EPSILON_SIO2 / tox_m


def ptm45() -> Technology:
    """45 nm-class planar CMOS card (stands in for the paper's 45 nm BSIM
    predictive technology models).

    Calibrated so that the paper's two-stage op-amp parameter grid
    (widths 0.5..50 um at L = 0.5 um, Cc 0.1..10 pF) spans gains of a few
    hundred V/V, unity-gain bandwidths of 1..25 MHz and bias currents of
    0.1..10 mA — the spec ranges of paper §III-B.
    """
    cox = _cox_for_tox(1.75e-9)  # ~1.97e-2 F/m^2
    nmos = DeviceParams(
        kp=180e-6,
        vth0=0.42,
        lambda_l=0.035e-6,
        cox=cox,
        c_overlap=0.35e-9,
        c_junction=0.9e-9,
        gamma_noise=1.0,
        kf=2.0e-26,
    )
    pmos = DeviceParams(
        kp=75e-6,
        vth0=0.40,
        lambda_l=0.045e-6,
        cox=cox,
        c_overlap=0.35e-9,
        c_junction=1.1e-9,
        gamma_noise=1.0,
        kf=1.0e-26,
    )
    return Technology(name="ptm45", nmos=nmos, pmos=pmos, vdd=1.8,
                      l_min=45e-9, l_default=0.5e-6)


def finfet16() -> Technology:
    """16 nm-class FinFET card (stands in for TSMC 16FF through Spectre).

    Higher drive per width, lower supply, stronger short-channel
    channel-length modulation and a larger thermal-noise excess factor —
    the qualitative differences that matter to the sizing loop.
    """
    cox = _cox_for_tox(1.1e-9)
    nmos = DeviceParams(
        kp=420e-6,
        vth0=0.33,
        lambda_l=0.025e-6,
        cox=cox,
        c_overlap=0.45e-9,
        c_junction=0.7e-9,
        gamma_noise=1.3,
        kf=1.5e-26,
        subthreshold_v=0.035,
    )
    pmos = DeviceParams(
        kp=360e-6,
        vth0=0.31,
        lambda_l=0.030e-6,
        cox=cox,
        c_overlap=0.45e-9,
        c_junction=0.8e-9,
        gamma_noise=1.3,
        kf=0.8e-26,
        subthreshold_v=0.035,
    )
    return Technology(name="finfet16", nmos=nmos, pmos=pmos, vdd=0.8,
                      l_min=16e-9, l_default=60e-9)


#: All corners swept by the PEX/PVT flow, matching a standard signoff set.
SIGNOFF_CORNERS = (Corner.TT, Corner.FF, Corner.SS, Corner.FS, Corner.SF)


def corner_temperatures() -> tuple[float, ...]:
    """Standard signoff temperatures [K]: -40 C, 27 C, 125 C."""
    return (233.15, ROOM_TEMPERATURE, 398.15)


def math_isclose(a: float, b: float, rel: float = 1e-9) -> bool:
    """Tiny helper kept here to avoid importing math at call sites in tests."""
    return math.isclose(a, b, rel_tol=rel)
