"""Smooth square-law MOSFET model with analytic derivatives.

This is the transistor model behind every analysis in the reproduction.  It
is a C1-continuous ("smooth") square-law model — the same class of model
SPICE's Level-1 implements — with three smoothing devices that make Newton
iteration robust:

* a **softplus overdrive** ``vov_eff = theta * ln(1 + exp((vgs-vth)/theta))``
  that blends the off and on regions and yields an exponential
  subthreshold characteristic with slope ~``theta`` per e-fold;
* a **tanh drain saturation** ``vds_eff = vdsat * tanh(vds / vdsat)`` that
  blends triode into saturation with the correct limits (slope
  ``beta*vov`` at vds=0, current ``beta*vov^2/2`` in saturation);
* a **softplus channel-length modulation** ``1 + lambda * sp(vds)`` that is
  inactive for reverse bias.

All partial derivatives are analytic and are property-tested against finite
differences in ``tests/circuits/test_mosfet.py``.

Polarity is handled with the sign trick: PMOS devices evaluate the same
normalised model on negated terminal voltages, which makes the MNA Jacobian
entries polarity-independent (see :meth:`Mosfet.eval_companion`).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.circuits.elements import Element, NoiseSource
from repro.circuits.technology import DeviceParams
from repro.errors import NetlistError
from repro.units import BOLTZMANN

#: Smoothing width [V] of the channel-length-modulation softplus.
_CLM_SMOOTH_V = 0.05

#: Floor for vdsat to keep vds/vdsat finite when the device is deeply off.
_VDSAT_FLOOR = 1e-9


def _softplus(x: float, width: float) -> tuple[float, float]:
    """Return ``(width * ln(1+exp(x/width)), d/dx)`` without overflow."""
    u = x / width
    if u > 40.0:
        return x, 1.0
    if u < -40.0:
        return width * math.exp(u), math.exp(u)
    e = math.exp(u)
    return width * math.log1p(e), e / (1.0 + e)


@dataclasses.dataclass(frozen=True)
class ChannelCurrent:
    """Drain current of the normalised (NMOS-referenced) model and its
    partial derivatives with respect to the source-referenced voltages."""

    ids: float
    d_vgs: float
    d_vds: float
    d_vsb: float
    vov_eff: float
    vds_eff: float
    saturation: float  # 0 = deep triode, 1 = full saturation


def channel_current(params: DeviceParams, w: float, l: float, m: float,
                    vgs: float, vds: float, vsb: float) -> ChannelCurrent:
    """Evaluate the normalised channel model.

    Parameters are the source-referenced voltages of an NMOS-polarity
    device; PMOS callers negate their terminal voltages first.  ``vds`` may
    be negative: the MOSFET is drain/source symmetric, so reverse bias
    evaluates the forward model with the terminals swapped (gate voltage
    referenced to the electrical source, i.e. the lower terminal) and the
    current negated.  The composite is C1-continuous at vds = 0.
    """
    if vds < 0.0:
        swapped = _forward_channel_current(params, w, l, m,
                                           vgs - vds, -vds, vsb + vds)
        return ChannelCurrent(
            ids=-swapped.ids,
            d_vgs=-swapped.d_vgs,
            d_vds=swapped.d_vgs + swapped.d_vds - swapped.d_vsb,
            d_vsb=-swapped.d_vsb,
            vov_eff=swapped.vov_eff,
            vds_eff=-swapped.vds_eff,
            saturation=swapped.saturation,
        )
    return _forward_channel_current(params, w, l, m, vgs, vds, vsb)


def _forward_channel_current(params: DeviceParams, w: float, l: float, m: float,
                             vgs: float, vds: float, vsb: float) -> ChannelCurrent:
    """Forward-bias (vds >= 0) branch of the channel model."""
    beta = params.kp * (w * m / l)
    lam = params.lambda_l / l

    vth = params.vth0 + params.body_k * vsb
    vov = vgs - vth
    vov_eff, sig_v = _softplus(vov, params.subthreshold_v)

    vdsat = vov_eff if vov_eff > _VDSAT_FLOOR else _VDSAT_FLOOR
    dvdsat_dvov = 1.0 if vov_eff > _VDSAT_FLOOR else 0.0

    u = vds / vdsat
    if u > 40.0:
        t = 1.0
        sech2 = 0.0
    else:
        t = math.tanh(u)
        sech2 = 1.0 - t * t
    vds_eff = vdsat * t
    dvdseff_dvds = sech2
    dvdseff_dvdsat = t - u * sech2

    q = vov_eff - 0.5 * vds_eff
    i0 = beta * q * vds_eff

    sp, dsp = _softplus(vds, _CLM_SMOOTH_V)
    clm = 1.0 + lam * sp
    dclm_dvds = lam * dsp

    # Chain rule: vov_eff depends on vgs (through vov) and vsb (through vth).
    di0_dvov = beta * ((1.0 - 0.5 * dvdseff_dvdsat * dvdsat_dvov) * vds_eff
                       + q * dvdseff_dvdsat * dvdsat_dvov)
    di0_dvds = beta * sech2 * (vov_eff - vds_eff)

    ids = i0 * clm
    d_vgs = di0_dvov * sig_v * clm
    d_vds = di0_dvds * clm + i0 * dclm_dvds
    d_vsb = -di0_dvov * sig_v * params.body_k * clm

    saturation = min(max(abs(t), 0.0), 1.0)
    return ChannelCurrent(ids=ids, d_vgs=d_vgs, d_vds=d_vds, d_vsb=d_vsb,
                          vov_eff=vov_eff, vds_eff=vds_eff,
                          saturation=saturation)


@dataclasses.dataclass(frozen=True)
class MosfetState:
    """Operating-point summary of one MOSFET.

    Produced by the DC solver and consumed by AC/noise/transient analyses
    and by the measurement layer (e.g. to check saturation margins).
    """

    ids: float  # drain current in the device's own polarity [A], >= 0 when forward
    gm: float
    gds: float
    gmb: float
    vgs: float  # polarity-normalised source-referenced voltages
    vds: float
    vsb: float
    vov_eff: float
    saturation: float
    cgs: float
    cgd: float
    cdb: float
    csb: float

    @property
    def region(self) -> str:
        """Coarse region label: ``"off"``, ``"triode"`` or ``"saturation"``."""
        if self.vov_eff < 1e-3:
            return "off"
        return "saturation" if self.saturation > 0.75 else "triode"


class Mosfet(Element):
    """Four-terminal MOSFET netlist element (d, g, s, b).

    Parameters
    ----------
    name, d, g, s, b:
        Instance name and terminal node names.
    polarity:
        ``"nmos"`` or ``"pmos"``.
    params:
        Technology card (already corner/temperature adjusted).
    w, l:
        Channel width and length [m].
    m:
        Multiplier (number of parallel fingers/units).
    """

    is_nonlinear = True

    def __init__(self, name: str, d: str, g: str, s: str, b: str, *,
                 polarity: str, params: DeviceParams,
                 w: float, l: float, m: float = 1.0):
        super().__init__(name, (d, g, s, b))
        if polarity not in ("nmos", "pmos"):
            raise NetlistError(f"mosfet {name}: polarity must be nmos/pmos")
        if w <= 0 or l <= 0 or m <= 0:
            raise NetlistError(f"mosfet {name}: w, l, m must be positive")
        self.polarity = polarity
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.m = float(m)
        self._sign = 1.0 if polarity == "nmos" else -1.0
        self._last_state: MosfetState | None = None

    # -- terminal helpers --------------------------------------------------
    @property
    def d(self) -> str:
        return self.nodes[0]

    @property
    def g(self) -> str:
        return self.nodes[1]

    @property
    def s(self) -> str:
        return self.nodes[2]

    @property
    def b(self) -> str:
        return self.nodes[3]

    # -- large signal -------------------------------------------------------
    def stamp(self, stamper) -> None:
        """Linear stamp is empty: the MOSFET is fully handled by the Newton
        companion model and the small-signal stamps."""

    def terminal_voltages(self, v: Callable[[str], float]) -> tuple[float, float, float]:
        """Return polarity-normalised (vgs, vds, vsb) given a node-voltage getter."""
        s = self._sign
        vgs = s * (v(self.g) - v(self.s))
        vds = s * (v(self.d) - v(self.s))
        vsb = s * (v(self.s) - v(self.b))
        return vgs, vds, vsb

    def eval_companion(self, v: Callable[[str], float]):
        """Evaluate the Newton companion model at node voltages ``v``.

        Returns ``(i_d, g_d, g_g, g_s, g_b)`` where ``i_d`` is the current
        leaving the drain node into the device and ``g_x`` is
        ``d i_d / d v_x``.  The source row is the negation; the caller
        stamps both KCL rows.
        """
        vgs, vds, vsb = self.terminal_voltages(v)
        cc = channel_current(self.params, self.w, self.l, self.m, vgs, vds, vsb)
        i_d = self._sign * cc.ids
        g_g = cc.d_vgs
        g_d = cc.d_vds
        g_s = -cc.d_vgs - cc.d_vds + cc.d_vsb
        g_b = -cc.d_vsb
        return i_d, g_d, g_g, g_s, g_b

    # -- small signal -------------------------------------------------------
    def capacitances(self, saturation: float) -> tuple[float, float, float, float]:
        """Return (cgs, cgd, cdb, csb) [F] with a smooth triode/saturation blend.

        In saturation the intrinsic gate capacitance sits mostly on the
        source side (2/3 Cox W L); in triode it splits evenly.  Junction
        capacitances scale with width.
        """
        p = self.params
        area_c = p.cox * self.w * self.l * self.m
        cov = p.c_overlap * self.w * self.m
        cj = p.c_junction * self.w * self.m
        s = saturation
        cgs = area_c * (0.5 + s / 6.0) + cov
        cgd = area_c * 0.5 * (1.0 - s) + cov
        return cgs, cgd, cj, cj

    def state_at(self, v: Callable[[str], float]) -> MosfetState:
        """Compute the full small-signal state at node voltages ``v``."""
        vgs, vds, vsb = self.terminal_voltages(v)
        cc = channel_current(self.params, self.w, self.l, self.m, vgs, vds, vsb)
        cgs, cgd, cdb, csb = self.capacitances(cc.saturation)
        state = MosfetState(
            ids=cc.ids, gm=max(cc.d_vgs, 0.0), gds=max(cc.d_vds, 0.0),
            gmb=abs(cc.d_vsb), vgs=vgs, vds=vds, vsb=vsb,
            vov_eff=cc.vov_eff, saturation=cc.saturation,
            cgs=cgs, cgd=cgd, cdb=cdb, csb=csb,
        )
        self._last_state = state
        return state

    def stamp_small_signal(self, stamper, state: MosfetState) -> None:
        """Stamp the linearised device (gm, gds, gmb and capacitances)."""
        d, g = stamper.node(self.d), stamper.node(self.g)
        s, b = stamper.node(self.s), stamper.node(self.b)
        gm, gds, gmb = state.gm, state.gds, state.gmb
        # Drain current i_d = gm*vgs + gds*vds + gmb*vbs (polarity handled by
        # the sign trick: entries below are already polarity-independent).
        stamper.add_g(d, g, gm)
        stamper.add_g(d, s, -gm - gds - gmb)
        stamper.add_g(d, d, gds)
        stamper.add_g(d, b, gmb)
        stamper.add_g(s, g, -gm)
        stamper.add_g(s, s, gm + gds + gmb)
        stamper.add_g(s, d, -gds)
        stamper.add_g(s, b, -gmb)
        for (i, j, c) in ((g, s, state.cgs), (g, d, state.cgd),
                          (d, b, state.cdb), (s, b, state.csb)):
            stamper.add_c(i, i, c)
            stamper.add_c(j, j, c)
            stamper.add_c(i, j, -c)
            stamper.add_c(j, i, -c)

    # -- noise ----------------------------------------------------------------
    def noise_sources(self, op) -> list[NoiseSource]:
        """Channel thermal noise plus 1/f noise, both drain-source current PSDs."""
        state = op.mosfet_state(self.name)
        p = self.params
        thermal = 4.0 * BOLTZMANN * op.temperature * p.gamma_noise * state.gm
        flicker_k = p.kf * state.gm ** 2 / (p.cox * self.w * self.l * self.m)

        def psd(freq: float, _t: float = thermal, _f: float = flicker_k) -> float:
            return _t + (_f / freq if freq > 0.0 else 0.0)

        return [(self.d, self.s, psd)]
