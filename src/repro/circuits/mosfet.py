"""Smooth square-law MOSFET model with analytic derivatives.

This is the transistor model behind every analysis in the reproduction.  It
is a C1-continuous ("smooth") square-law model — the same class of model
SPICE's Level-1 implements — with three smoothing devices that make Newton
iteration robust:

* a **softplus overdrive** ``vov_eff = theta * ln(1 + exp((vgs-vth)/theta))``
  that blends the off and on regions and yields an exponential
  subthreshold characteristic with slope ~``theta`` per e-fold;
* a **tanh drain saturation** ``vds_eff = vdsat * tanh(vds / vdsat)`` that
  blends triode into saturation with the correct limits (slope
  ``beta*vov`` at vds=0, current ``beta*vov^2/2`` in saturation);
* a **softplus channel-length modulation** ``1 + lambda * sp(vds)`` that is
  inactive for reverse bias.

All partial derivatives are analytic and are property-tested against finite
differences in ``tests/circuits/test_mosfet.py``.

Polarity is handled with the sign trick: PMOS devices evaluate the same
normalised model on negated terminal voltages, which makes the MNA Jacobian
entries polarity-independent (see :meth:`Mosfet.eval_companion`).

Array evaluation
----------------
The Newton hot loop does not call :meth:`Mosfet.eval_companion` per device;
it evaluates *all* devices at once through :class:`DeviceArrays` (stacked
per-device constants) and :func:`eval_companion_batch`, which accept any
leading batch shape — ``(K,)`` terminal voltages for one design or
``(B, K)`` for a stacked batch of designs.  The scalar entry points remain
as the readable reference implementation and are property-tested against
the array path in ``tests/circuits/test_mosfet.py``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

import numpy as np

from repro.circuits.elements import Element, NoiseSource
from repro.circuits.technology import DeviceParams
from repro.errors import NetlistError
from repro.units import BOLTZMANN

#: Smoothing width [V] of the channel-length-modulation softplus.
_CLM_SMOOTH_V = 0.05

#: Floor for vdsat to keep vds/vdsat finite when the device is deeply off.
_VDSAT_FLOOR = 1e-9


def _softplus(x: float, width: float) -> tuple[float, float]:
    """Return ``(width * ln(1+exp(x/width)), d/dx)`` without overflow."""
    u = x / width
    if u > 40.0:
        return x, 1.0
    if u < -40.0:
        return width * math.exp(u), math.exp(u)
    e = math.exp(u)
    return width * math.log1p(e), e / (1.0 + e)


@dataclasses.dataclass(frozen=True)
class ChannelCurrent:
    """Drain current of the normalised (NMOS-referenced) model and its
    partial derivatives with respect to the source-referenced voltages."""

    ids: float
    d_vgs: float
    d_vds: float
    d_vsb: float
    vov_eff: float
    vds_eff: float
    saturation: float  # 0 = deep triode, 1 = full saturation


def channel_current(params: DeviceParams, w: float, l: float, m: float,
                    vgs: float, vds: float, vsb: float) -> ChannelCurrent:
    """Evaluate the normalised channel model.

    Parameters are the source-referenced voltages of an NMOS-polarity
    device; PMOS callers negate their terminal voltages first.  ``vds`` may
    be negative: the MOSFET is drain/source symmetric, so reverse bias
    evaluates the forward model with the terminals swapped (gate voltage
    referenced to the electrical source, i.e. the lower terminal) and the
    current negated.  The composite is C1-continuous at vds = 0.
    """
    if vds < 0.0:
        swapped = _forward_channel_current(params, w, l, m,
                                           vgs - vds, -vds, vsb + vds)
        return ChannelCurrent(
            ids=-swapped.ids,
            d_vgs=-swapped.d_vgs,
            d_vds=swapped.d_vgs + swapped.d_vds - swapped.d_vsb,
            d_vsb=-swapped.d_vsb,
            vov_eff=swapped.vov_eff,
            vds_eff=-swapped.vds_eff,
            saturation=swapped.saturation,
        )
    return _forward_channel_current(params, w, l, m, vgs, vds, vsb)


def _forward_channel_current(params: DeviceParams, w: float, l: float, m: float,
                             vgs: float, vds: float, vsb: float) -> ChannelCurrent:
    """Forward-bias (vds >= 0) branch of the channel model."""
    beta = params.kp * (w * m / l)
    lam = params.lambda_l / l

    vth = params.vth0 + params.body_k * vsb
    vov = vgs - vth
    vov_eff, sig_v = _softplus(vov, params.subthreshold_v)

    vdsat = vov_eff if vov_eff > _VDSAT_FLOOR else _VDSAT_FLOOR
    dvdsat_dvov = 1.0 if vov_eff > _VDSAT_FLOOR else 0.0

    u = vds / vdsat
    if u > 40.0:
        t = 1.0
        sech2 = 0.0
    else:
        t = math.tanh(u)
        sech2 = 1.0 - t * t
    vds_eff = vdsat * t
    dvdseff_dvds = sech2
    dvdseff_dvdsat = t - u * sech2

    q = vov_eff - 0.5 * vds_eff
    i0 = beta * q * vds_eff

    sp, dsp = _softplus(vds, _CLM_SMOOTH_V)
    clm = 1.0 + lam * sp
    dclm_dvds = lam * dsp

    # Chain rule: vov_eff depends on vgs (through vov) and vsb (through vth).
    di0_dvov = beta * ((1.0 - 0.5 * dvdseff_dvdsat * dvdsat_dvov) * vds_eff
                       + q * dvdseff_dvdsat * dvdsat_dvov)
    di0_dvds = beta * sech2 * (vov_eff - vds_eff)

    ids = i0 * clm
    d_vgs = di0_dvov * sig_v * clm
    d_vds = di0_dvds * clm + i0 * dclm_dvds
    d_vsb = -di0_dvov * sig_v * params.body_k * clm

    saturation = min(max(abs(t), 0.0), 1.0)
    return ChannelCurrent(ids=ids, d_vgs=d_vgs, d_vds=d_vds, d_vsb=d_vsb,
                          vov_eff=vov_eff, vds_eff=vds_eff,
                          saturation=saturation)


@dataclasses.dataclass(frozen=True)
class MosfetState:
    """Operating-point summary of one MOSFET.

    Produced by the DC solver and consumed by AC/noise/transient analyses
    and by the measurement layer (e.g. to check saturation margins).
    """

    ids: float  # drain current in the device's own polarity [A], >= 0 when forward
    gm: float
    gds: float
    gmb: float
    vgs: float  # polarity-normalised source-referenced voltages
    vds: float
    vsb: float
    vov_eff: float
    saturation: float
    cgs: float
    cgd: float
    cdb: float
    csb: float

    @property
    def region(self) -> str:
        """Coarse region label: ``"off"``, ``"triode"`` or ``"saturation"``."""
        if self.vov_eff < 1e-3:
            return "off"
        return "saturation" if self.saturation > 0.75 else "triode"


class Mosfet(Element):
    """Four-terminal MOSFET netlist element (d, g, s, b).

    Parameters
    ----------
    name, d, g, s, b:
        Instance name and terminal node names.
    polarity:
        ``"nmos"`` or ``"pmos"``.
    params:
        Technology card (already corner/temperature adjusted).
    w, l:
        Channel width and length [m].
    m:
        Multiplier (number of parallel fingers/units).
    """

    is_nonlinear = True

    def __init__(self, name: str, d: str, g: str, s: str, b: str, *,
                 polarity: str, params: DeviceParams,
                 w: float, l: float, m: float = 1.0):
        super().__init__(name, (d, g, s, b))
        if polarity not in ("nmos", "pmos"):
            raise NetlistError(f"mosfet {name}: polarity must be nmos/pmos")
        if w <= 0 or l <= 0 or m <= 0:
            raise NetlistError(f"mosfet {name}: w, l, m must be positive")
        self.polarity = polarity
        self.params = params
        self.w = float(w)
        self.l = float(l)
        self.m = float(m)
        self._sign = 1.0 if polarity == "nmos" else -1.0
        self._last_state: MosfetState | None = None

    # -- terminal helpers --------------------------------------------------
    @property
    def d(self) -> str:
        return self.nodes[0]

    @property
    def g(self) -> str:
        return self.nodes[1]

    @property
    def s(self) -> str:
        return self.nodes[2]

    @property
    def b(self) -> str:
        return self.nodes[3]

    # -- large signal -------------------------------------------------------
    def stamp(self, stamper) -> None:
        """Linear stamp is empty: the MOSFET is fully handled by the Newton
        companion model and the small-signal stamps."""

    def terminal_voltages(self, v: Callable[[str], float]) -> tuple[float, float, float]:
        """Return polarity-normalised (vgs, vds, vsb) given a node-voltage getter."""
        s = self._sign
        vgs = s * (v(self.g) - v(self.s))
        vds = s * (v(self.d) - v(self.s))
        vsb = s * (v(self.s) - v(self.b))
        return vgs, vds, vsb

    def eval_companion(self, v: Callable[[str], float]):
        """Evaluate the Newton companion model at node voltages ``v``.

        Returns ``(i_d, g_d, g_g, g_s, g_b)`` where ``i_d`` is the current
        leaving the drain node into the device and ``g_x`` is
        ``d i_d / d v_x``.  The source row is the negation; the caller
        stamps both KCL rows.
        """
        vgs, vds, vsb = self.terminal_voltages(v)
        cc = channel_current(self.params, self.w, self.l, self.m, vgs, vds, vsb)
        i_d = self._sign * cc.ids
        g_g = cc.d_vgs
        g_d = cc.d_vds
        g_s = -cc.d_vgs - cc.d_vds + cc.d_vsb
        g_b = -cc.d_vsb
        return i_d, g_d, g_g, g_s, g_b

    # -- small signal -------------------------------------------------------
    def capacitances(self, saturation: float) -> tuple[float, float, float, float]:
        """Return (cgs, cgd, cdb, csb) [F] with a smooth triode/saturation blend.

        In saturation the intrinsic gate capacitance sits mostly on the
        source side (2/3 Cox W L); in triode it splits evenly.  Junction
        capacitances scale with width.
        """
        p = self.params
        area_c = p.cox * self.w * self.l * self.m
        cov = p.c_overlap * self.w * self.m
        cj = p.c_junction * self.w * self.m
        s = saturation
        cgs = area_c * (0.5 + s / 6.0) + cov
        cgd = area_c * 0.5 * (1.0 - s) + cov
        return cgs, cgd, cj, cj

    def state_at(self, v: Callable[[str], float]) -> MosfetState:
        """Compute the full small-signal state at node voltages ``v``."""
        vgs, vds, vsb = self.terminal_voltages(v)
        cc = channel_current(self.params, self.w, self.l, self.m, vgs, vds, vsb)
        cgs, cgd, cdb, csb = self.capacitances(cc.saturation)
        state = MosfetState(
            ids=cc.ids, gm=max(cc.d_vgs, 0.0), gds=max(cc.d_vds, 0.0),
            gmb=abs(cc.d_vsb), vgs=vgs, vds=vds, vsb=vsb,
            vov_eff=cc.vov_eff, saturation=cc.saturation,
            cgs=cgs, cgd=cgd, cdb=cdb, csb=csb,
        )
        self._last_state = state
        return state

    def stamp_small_signal(self, stamper, state: MosfetState) -> None:
        """Stamp the linearised device (gm, gds, gmb and capacitances)."""
        d, g = stamper.node(self.d), stamper.node(self.g)
        s, b = stamper.node(self.s), stamper.node(self.b)
        gm, gds, gmb = state.gm, state.gds, state.gmb
        # Drain current i_d = gm*vgs + gds*vds + gmb*vbs (polarity handled by
        # the sign trick: entries below are already polarity-independent).
        stamper.add_g(d, g, gm)
        stamper.add_g(d, s, -gm - gds - gmb)
        stamper.add_g(d, d, gds)
        stamper.add_g(d, b, gmb)
        stamper.add_g(s, g, -gm)
        stamper.add_g(s, s, gm + gds + gmb)
        stamper.add_g(s, d, -gds)
        stamper.add_g(s, b, -gmb)
        for (i, j, c) in ((g, s, state.cgs), (g, d, state.cgd),
                          (d, b, state.cdb), (s, b, state.csb)):
            stamper.add_c(i, i, c)
            stamper.add_c(j, j, c)
            stamper.add_c(i, j, -c)
            stamper.add_c(j, i, -c)

    # -- array evaluation ---------------------------------------------------
    # The vectorised path lives in DeviceArrays / channel_current_batch
    # below; Mosfet only contributes its constants through
    # DeviceArrays.from_mosfets.

    # -- noise ----------------------------------------------------------------
    def noise_sources(self, op) -> list[NoiseSource]:
        """Channel thermal noise plus 1/f noise, both drain-source current PSDs."""
        state = op.mosfet_state(self.name)
        p = self.params
        thermal = 4.0 * BOLTZMANN * op.temperature * p.gamma_noise * state.gm
        flicker_k = p.kf * state.gm ** 2 / (p.cox * self.w * self.l * self.m)

        def psd(freq, _t: float = thermal, _f: float = flicker_k):
            freq = np.asarray(freq, dtype=float)
            with np.errstate(divide="ignore"):
                flicker = np.where(freq > 0.0, _f / freq, 0.0)
            return _t + flicker

        return [(self.d, self.s, psd)]


# ---------------------------------------------------------------------------
# Vectorised (array) evaluation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class DeviceArrays:
    """Per-device constants of K MOSFETs, stacked into arrays.

    Built once per netlist binding (cheap) and reused across Newton
    iterations; every field broadcasts against terminal-voltage arrays of
    shape ``(..., K)``, so the same object drives both single-design and
    stacked-batch evaluation.  ``beta``/``lam`` are the width/length-derived
    composites the channel model actually consumes, precomputed so the hot
    loop never touches Python-object device attributes.
    """

    beta: np.ndarray       # kp * W * m / L
    lam: np.ndarray        # lambda_l / L
    vth0: np.ndarray
    body_k: np.ndarray
    subth: np.ndarray      # subthreshold softplus width
    sign: np.ndarray       # +1 NMOS, -1 PMOS
    c_area: np.ndarray     # cox * W * L * m
    c_ov: np.ndarray       # c_overlap * W * m
    c_j: np.ndarray        # c_junction * W * m
    gamma_n: np.ndarray    # channel thermal-noise gamma
    kf: np.ndarray         # flicker-noise coefficient
    inv_subth: np.ndarray  # 1 / subth (hot-loop derived)
    lam_sp: np.ndarray     # lam * _CLM_SMOOTH_V

    @classmethod
    def from_mosfets(cls, mosfets: Sequence["Mosfet"]) -> "DeviceArrays":
        """Stack the constants of ``mosfets`` (one row per device)."""
        rows = [(m.params.kp * m.w * m.m / m.l,
                 m.params.lambda_l / m.l,
                 m.params.vth0,
                 m.params.body_k,
                 m.params.subthreshold_v,
                 m._sign,
                 m.params.cox * m.w * m.l * m.m,
                 m.params.c_overlap * m.w * m.m,
                 m.params.c_junction * m.w * m.m,
                 m.params.gamma_noise,
                 m.params.kf) for m in mosfets]
        cols = np.array(rows, dtype=float).reshape(len(rows), 11).T
        return cls(*cols, 1.0 / cols[4], cols[1] * _CLM_SMOOTH_V)

    @classmethod
    def stack(cls, banks: Sequence["DeviceArrays"]) -> "DeviceArrays":
        """Stack B single-design banks into one ``(B, K)`` bank."""
        return cls(*(np.stack([getattr(b, f.name) for b in banks])
                     for f in dataclasses.fields(cls)))

    def take(self, idx) -> "DeviceArrays":
        """Row-subset of a stacked ``(B, K)`` bank (fancy indexing)."""
        return DeviceArrays(*(getattr(self, f.name)[idx]
                              for f in dataclasses.fields(self)))

    def __len__(self) -> int:
        return self.beta.shape[-1]


@dataclasses.dataclass(frozen=True)
class ChannelArrays:
    """Array counterpart of :class:`ChannelCurrent` (shapes ``(..., K)``)."""

    ids: np.ndarray
    d_vgs: np.ndarray
    d_vds: np.ndarray
    d_vsb: np.ndarray
    vov_eff: np.ndarray
    vds_eff: np.ndarray
    saturation: np.ndarray


def _softplus_arrays(u: np.ndarray, width) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``(width * ln(1+exp(u)), sigmoid(u))`` without overflow.

    ``logaddexp(0, u)`` is the overflow-safe softplus and
    ``exp(u - softplus(u))`` is the overflow-safe sigmoid (the exponent is
    always <= 0), matching the clamped scalar :func:`_softplus` to rounding.
    """
    sp = np.logaddexp(0.0, u)
    return width * sp, np.exp(u - sp)


def channel_current_batch(dev: DeviceArrays, vgs: np.ndarray, vds: np.ndarray,
                          vsb: np.ndarray) -> ChannelArrays:
    """Vectorised :func:`channel_current` over stacked devices.

    Accepts any broadcastable batch shape ``(..., K)``; reverse bias
    (``vds < 0``) is handled with the same terminal-swap algebra as the
    scalar model, applied element-wise.
    """
    neg = vds < 0.0
    any_neg = bool(neg.any())
    if any_neg:
        vgs_f = np.where(neg, vgs - vds, vgs)
        vsb_f = np.where(neg, vsb + vds, vsb)
        vds_f = np.abs(vds)
    else:
        vgs_f, vsb_f, vds_f = vgs, vsb, vds

    vov = vgs_f - (dev.vth0 + dev.body_k * vsb_f)
    vov_eff, sig = _softplus_arrays(vov / dev.subth, dev.subth)
    vdsat = np.maximum(vov_eff, _VDSAT_FLOOR)
    dvdsat_dvov = vov_eff > _VDSAT_FLOOR  # bool; promotes to 0/1 in arithmetic

    u = vds_f / vdsat
    t = np.tanh(u)
    sech2 = 1.0 - t * t
    vds_eff = vdsat * t
    dvdseff_dvdsat = t - u * sech2

    q = vov_eff - 0.5 * vds_eff
    i0 = dev.beta * q * vds_eff

    sp, dsp = _softplus_arrays(vds_f / _CLM_SMOOTH_V, _CLM_SMOOTH_V)
    clm = 1.0 + dev.lam * sp
    dclm_dvds = dev.lam * dsp

    chain = dvdseff_dvdsat * dvdsat_dvov
    di0_dvov = dev.beta * ((1.0 - 0.5 * chain) * vds_eff + q * chain)
    di0_dvds = dev.beta * sech2 * (vov_eff - vds_eff)

    ids = i0 * clm
    d_vgs = di0_dvov * sig * clm
    d_vds = di0_dvds * clm + i0 * dclm_dvds
    d_vsb = -d_vgs * dev.body_k
    saturation = np.abs(t)

    if any_neg:
        flip = np.where(neg, -1.0, 1.0)
        d_vds = np.where(neg, d_vgs + d_vds - d_vsb, d_vds)
        ids = flip * ids
        d_vgs = flip * d_vgs
        d_vsb = flip * d_vsb
        vds_eff = flip * vds_eff
    return ChannelArrays(ids=ids, d_vgs=d_vgs, d_vds=d_vds, d_vsb=d_vsb,
                         vov_eff=vov_eff, vds_eff=vds_eff,
                         saturation=saturation)


def channel_ids_batch(dev: DeviceArrays, vgs: np.ndarray, vds: np.ndarray,
                      vsb: np.ndarray) -> np.ndarray:
    """Current-only vectorised channel evaluation (no derivatives).

    Used by KCL residual checks, which previously evaluated the full
    companion model per device only to discard all four conductances.
    """
    neg = vds < 0.0
    any_neg = bool(neg.any())
    if any_neg:
        vgs_f = np.where(neg, vgs - vds, vgs)
        vsb_f = np.where(neg, vsb + vds, vsb)
        vds_f = np.abs(vds)
    else:
        vgs_f, vsb_f, vds_f = vgs, vsb, vds

    vov = vgs_f - (dev.vth0 + dev.body_k * vsb_f)
    vov_eff = dev.subth * np.logaddexp(0.0, vov / dev.subth)
    vdsat = np.maximum(vov_eff, _VDSAT_FLOOR)
    vds_eff = vdsat * np.tanh(vds_f / vdsat)
    i0 = dev.beta * (vov_eff - 0.5 * vds_eff) * vds_eff
    clm = 1.0 + dev.lam * _CLM_SMOOTH_V * np.logaddexp(0.0, vds_f / _CLM_SMOOTH_V)
    ids = i0 * clm
    if any_neg:
        ids = np.where(neg, -ids, ids)
    return ids


#: Maps stacked (vd, vg, vs, vb) columns to (vgs, vds, vsb); the device
#: sign is applied separately (``V * sign`` before the matmul).
_TERMINAL_MAP = np.array([
    [0.0, 1.0, 0.0],    # vd ->        vds
    [1.0, 0.0, 0.0],    # vg -> vgs
    [-1.0, -1.0, 1.0],  # vs -> -vgs, -vds, vsb
    [0.0, 0.0, -1.0],   # vb ->              -vsb
])

#: Maps (d_vgs, d_vds, d_vsb) to the companion conductances (g_d, g_g,
#: g_s, g_b) = d i_d / d (v_d, v_g, v_s, v_b).
_COMPANION_MAP = np.array([
    [0.0, 1.0, -1.0, 0.0],   # d_vgs -> g_g, -g_s
    [1.0, 0.0, -1.0, 0.0],   # d_vds -> g_d, -g_s
    [0.0, 0.0, 1.0, -1.0],   # d_vsb -> g_s, -g_b
])


def terminal_voltages_batch(dev: DeviceArrays, V: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Polarity-normalised (vgs, vds, vsb) from ``V = (..., K, 4)`` stacked
    (drain, gate, source, bulk) node voltages."""
    views = (V * dev.sign[..., :, None]) @ _TERMINAL_MAP  # (..., K, 3)
    return views[..., 0], views[..., 1], views[..., 2]


def eval_companion_batch(dev: DeviceArrays, V: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :meth:`Mosfet.eval_companion` over all devices at once.

    Parameters
    ----------
    V:
        ``(..., K, 4)`` terminal voltages in (d, g, s, b) column order.

    Returns
    -------
    ``(i_d, g)`` where ``i_d`` has shape ``(..., K)`` (current leaving the
    drain) and ``g`` has shape ``(..., K, 4)`` with columns ``d i_d / d
    (v_d, v_g, v_s, v_b)`` — the same quantities the scalar method returns,
    for every device in one call.
    """
    vgs, vds, vsb = terminal_voltages_batch(dev, V)
    cc = channel_current_batch(dev, vgs, vds, vsb)
    i_d = dev.sign * cc.ids
    g = np.stack([cc.d_vgs, cc.d_vds, cc.d_vsb], axis=-1) @ _COMPANION_MAP
    return i_d, g


def eval_ids_batch(dev: DeviceArrays, V: np.ndarray) -> np.ndarray:
    """Current-only vectorised companion evaluation (for residuals)."""
    vgs, vds, vsb = terminal_voltages_batch(dev, V)
    return dev.sign * channel_ids_batch(dev, vgs, vds, vsb)


def state_arrays_batch(dev: DeviceArrays, vgs: np.ndarray, vds: np.ndarray,
                       vsb: np.ndarray) -> dict[str, np.ndarray]:
    """All :class:`MosfetState` fields as arrays of shape ``(..., K)``.

    The capacitance blend matches :meth:`Mosfet.capacitances`.
    """
    cc = channel_current_batch(dev, vgs, vds, vsb)
    s = cc.saturation
    cgs = dev.c_area * (0.5 + s / 6.0) + dev.c_ov
    cgd = dev.c_area * 0.5 * (1.0 - s) + dev.c_ov
    return {
        "ids": cc.ids,
        "gm": np.maximum(cc.d_vgs, 0.0),
        "gds": np.maximum(cc.d_vds, 0.0),
        "gmb": np.abs(cc.d_vsb),
        "vgs": vgs, "vds": vds, "vsb": vsb,
        "vov_eff": cc.vov_eff,
        "saturation": s,
        "cgs": cgs, "cgd": cgd, "cdb": dev.c_j, "csb": dev.c_j,
    }


# ---------------------------------------------------------------------------
# Workspace (allocation-free) evaluation for the single-design Newton loop
# ---------------------------------------------------------------------------

#: 1 / _CLM_SMOOTH_V, folded into the hot loop.
_INV_CLM = 1.0 / _CLM_SMOOTH_V


class ChannelWorkspace:
    """Preallocated temporaries for one system's K devices.

    A Newton iteration on a 10–20 unknown circuit is dominated by numpy
    *dispatch* cost, not arithmetic; reusing buffers via ``out=`` roughly
    halves the per-iteration model cost.  One workspace belongs to one
    :class:`~repro.sim.system.MnaSystem` (single-threaded use, like the
    system's own stamp buffers).
    """

    def __init__(self, n_devices: int):
        K = n_devices
        self.Vs = np.empty((K, 4))
        self.V3 = np.empty((K, 3))
        self.t = [np.empty(K) for _ in range(13)]
        self.mask = np.empty(K, dtype=bool)
        self.D = np.empty((K, 3))
        self.g = np.empty((K, 4))
        self.i_d = np.empty(K)
        self.gV = np.empty((K, 4))
        self.i_eq = np.empty(K)


def _forward_core_ws(dev: DeviceArrays, vgs, vds, vsb, ws: ChannelWorkspace,
                     derivatives: bool):
    """Fused forward-bias model on workspace buffers.

    Returns ``(ids, d_vgs, d_vds, d_vsb)`` views into ``ws`` (the last
    three are None when ``derivatives`` is False).  Callers guarantee
    ``vds >= 0`` for every device.
    """
    t = ws.t
    np.multiply(dev.body_k, vsb, out=t[0])
    np.add(dev.vth0, t[0], out=t[0])
    np.subtract(vgs, t[0], out=t[0])
    np.multiply(t[0], dev.inv_subth, out=t[0])            # u1
    np.logaddexp(0.0, t[0], out=t[1])                     # softplus(u1)
    np.multiply(dev.subth, t[1], out=t[2])                # vov_eff
    np.subtract(t[0], t[1], out=t[0])
    np.exp(t[0], out=t[0])                                # sigmoid(u1)
    np.maximum(t[2], _VDSAT_FLOOR, out=t[3])              # vdsat
    np.divide(vds, t[3], out=t[4])                        # u2
    np.tanh(t[4], out=t[5])
    np.multiply(t[5], t[5], out=t[6])
    np.subtract(1.0, t[6], out=t[6])                      # sech^2
    np.multiply(t[3], t[5], out=t[7])                     # vds_eff
    np.multiply(t[7], 0.5, out=t[9])
    np.subtract(t[2], t[9], out=t[9])                     # q
    np.multiply(dev.beta, t[9], out=t[10])
    np.multiply(t[10], t[7], out=t[10])                   # i0
    np.multiply(vds, _INV_CLM, out=t[11])                 # u3
    np.logaddexp(0.0, t[11], out=t[12])                   # softplus(u3)
    if derivatives:
        np.subtract(t[11], t[12], out=t[11])
        np.exp(t[11], out=t[11])                          # dsp
        np.multiply(dev.lam, t[11], out=t[11])            # dclm
    np.multiply(dev.lam_sp, t[12], out=t[12])
    np.add(1.0, t[12], out=t[12])                         # clm
    ids = np.multiply(t[10], t[12], out=t[8])
    if not derivatives:
        return ids, None, None, None
    # Keep ids in t[8]; reuse D columns as scratch for the chain rule.
    np.multiply(t[4], t[6], out=t[4])
    np.subtract(t[5], t[4], out=t[4])                     # dvdseff_dvdsat
    np.greater(t[2], _VDSAT_FLOOR, out=ws.mask)
    np.multiply(t[4], ws.mask, out=t[4])                  # chain
    D0, D1, D2 = ws.D[:, 0], ws.D[:, 1], ws.D[:, 2]
    np.multiply(t[4], 0.5, out=D0)
    np.subtract(1.0, D0, out=D0)
    np.multiply(D0, t[7], out=D0)
    np.multiply(t[9], t[4], out=D1)
    np.add(D0, D1, out=D0)
    np.multiply(dev.beta, D0, out=D0)                     # di0_dvov
    np.subtract(t[2], t[7], out=D1)
    np.multiply(t[6], D1, out=D1)
    np.multiply(dev.beta, D1, out=D1)                     # di0_dvds
    np.multiply(D0, t[0], out=D0)
    np.multiply(D0, t[12], out=D0)                        # d_vgs
    np.multiply(D1, t[12], out=D1)
    np.multiply(t[10], t[11], out=t[10])
    np.add(D1, t[10], out=D1)                             # d_vds
    np.multiply(D0, dev.body_k, out=D2)
    np.negative(D2, out=D2)                               # d_vsb
    return ids, D0, D1, D2


def eval_companion_ws(dev: DeviceArrays, V: np.ndarray,
                      ws: ChannelWorkspace) -> tuple[np.ndarray, np.ndarray]:
    """Workspace variant of :func:`eval_companion_batch` for one design.

    Returns views into ``ws`` (valid until the next call on the same
    workspace).  Falls back to the general batch path when any device is
    reverse-biased (rare outside transient start-up).
    """
    np.multiply(V, dev.sign[:, None], out=ws.Vs)
    np.matmul(ws.Vs, _TERMINAL_MAP, out=ws.V3)
    vgs, vds, vsb = ws.V3[:, 0], ws.V3[:, 1], ws.V3[:, 2]
    if vds.min() < 0.0:
        cc = channel_current_batch(dev, vgs, vds, vsb)
        np.multiply(dev.sign, cc.ids, out=ws.i_d)
        ws.D[:, 0] = cc.d_vgs
        ws.D[:, 1] = cc.d_vds
        ws.D[:, 2] = cc.d_vsb
        np.matmul(ws.D, _COMPANION_MAP, out=ws.g)
        return ws.i_d, ws.g
    ids, _, _, _ = _forward_core_ws(dev, vgs, vds, vsb, ws, derivatives=True)
    np.multiply(dev.sign, ids, out=ws.i_d)
    np.matmul(ws.D, _COMPANION_MAP, out=ws.g)
    return ws.i_d, ws.g


def eval_ids_ws(dev: DeviceArrays, V: np.ndarray,
                ws: ChannelWorkspace) -> np.ndarray:
    """Workspace variant of :func:`eval_ids_batch` (current only)."""
    np.multiply(V, dev.sign[:, None], out=ws.Vs)
    np.matmul(ws.Vs, _TERMINAL_MAP, out=ws.V3)
    vgs, vds, vsb = ws.V3[:, 0], ws.V3[:, 1], ws.V3[:, 2]
    if vds.min() < 0.0:
        ids = channel_ids_batch(dev, vgs, vds, vsb)
        return np.multiply(dev.sign, ids, out=ws.i_d)
    ids, _, _, _ = _forward_core_ws(dev, vgs, vds, vsb, ws, derivatives=False)
    return np.multiply(dev.sign, ids, out=ws.i_d)
