"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows without
writing any Python:

* ``info``            — describe a topology (parameters, specs, cardinality);
* ``simulate``        — evaluate one sizing (grid indices) and print its specs;
* ``train``           — train an agent (flags or ``--config`` JSON) and save
  a policy or full checkpoint;
* ``config-template`` — print the default training config as JSON;
* ``deploy``          — load a policy and chase N random targets;
* ``sensitivity``     — spec-vs-parameter sensitivity matrix;
* ``sweep``           — sweep one parameter, plot every spec;
* ``montecarlo``      — mismatch Monte Carlo of one sizing;
* ``poles``           — pole analysis / stability verdict;
* ``worker``          — host a remote shard worker on a TCP port
  (evaluation backend for ``REPRO_WORKERS`` / ``repro serve``);
* ``serve``           — stateless sizing-evaluation front-end answering
  newline-delimited JSON queries over a socket;
* ``zoo``             — the declarative scenario zoo (:mod:`repro.zoo`):
  ``zoo list``, ``zoo validate [name|--all]``, ``zoo show <name>``;
* ``experiments``     — list the paper-experiment registry;
* ``knobs``           — list the runtime knobs (``REPRO_*``; see
  ``docs/knobs.md``).

Every command taking a topology accepts zoo scenario names (builtin and
``REPRO_ZOO_DIR``) alongside the module aliases below — a declared
scenario trains, serves and simulates exactly like a module class.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.analysis import ascii_table
from repro.analysis.experiments import EXPERIMENTS
from repro.core import AutoCkt, AutoCktConfig, SizingEnvConfig
from repro.rl.ppo import PPOConfig
from repro.topologies import (
    FiveTransistorOta,
    FoldedCascodeOta,
    NegGmOta,
    OtaChain,
    SchematicSimulator,
    TransimpedanceAmplifier,
    TwoStageOpAmp,
)

TOPOLOGIES = {
    "tia": TransimpedanceAmplifier,
    "opamp": TwoStageOpAmp,
    "ngm": NegGmOta,
    "ota5": FiveTransistorOta,
    "folded": FoldedCascodeOta,
    "ota_chain": OtaChain,
}


def _topology_factory(name: str):
    """Resolve a topology argument to a zero-argument factory.

    Module aliases win on collision; everything else looks up the zoo
    registry, so compiled scenarios flow through ``train``/``serve``/
    ``worker``/... exactly like classes."""
    from repro.errors import TopologyError
    from repro.zoo import scenario

    if name in TOPOLOGIES:
        return TOPOLOGIES[name]
    try:
        return scenario(name)
    except TopologyError as exc:
        raise SystemExit(str(exc)) from None


def _topology(name: str):
    """Build the topology instance a CLI command operates on."""
    return _topology_factory(name)()


def _topology_names() -> list[str]:
    """Argparse choices: module aliases plus every registered scenario
    (best effort — a broken user zoo degrades to the builtin set so the
    parser, and ``repro zoo validate``'s diagnosis, keep working)."""
    from repro.zoo import scenario_names

    return sorted(set(TOPOLOGIES) | set(scenario_names(strict=False)))


def cmd_info(args: argparse.Namespace) -> int:
    """Describe a topology: parameter grid and spec ranges."""
    topo = _topology(args.topology)
    rows = [[p.name, p.start, p.stop, p.step, p.count, p.scale]
            for p in topo.parameter_space]
    print(ascii_table(["param", "start", "stop", "step", "K", "scale"],
                      rows, title=f"{topo.name} ({topo.technology.name}, "
                      f"{topo.parameter_space.cardinality:.3e} sizings)"))
    rows = [[s.name, s.low, s.high, s.kind.value,
             "log" if s.log_scale else "lin", s.unit]
            for s in topo.spec_space]
    print()
    print(ascii_table(["spec", "low", "high", "kind", "scale", "unit"], rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Evaluate one sizing (grid indices) and print measured specs."""
    topo = _topology(args.topology)
    simulator = SchematicSimulator(topo, cache=False)
    space = topo.parameter_space
    if args.indices:
        indices = np.array([int(i) for i in args.indices.split(",")])
        if len(indices) != len(space):
            raise SystemExit(f"need {len(space)} indices, got {len(indices)}")
    else:
        indices = space.center
    specs = simulator.evaluate(indices)
    values = space.values(space.clip(indices))
    print(json.dumps({"indices": [int(i) for i in space.clip(indices)],
                      "values": values, "specs": specs}, indent=2))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train an AutoCkt agent; save a policy or a full checkpoint."""
    if args.config:
        from repro.config import load_config

        config = load_config(args.config)
    else:
        config = AutoCktConfig(
            ppo=PPOConfig(n_envs=args.envs, n_steps=60, epochs=8,
                          minibatch_size=64, lr=5e-4, seed=args.seed),
            env=SizingEnvConfig(max_steps=args.horizon),
            n_train_targets=args.targets,
            max_iterations=args.iterations,
            stop_reward=args.stop_reward,
            stop_patience=3,
            seed=args.seed,
        )
    agent = AutoCkt.for_topology(_topology_factory(args.topology),
                                 config=config)

    def progress(trainer, history):
        i = history.iterations[-1]
        if i % 5 == 0 or i == 1:
            print(f"iter {i:3d}  steps {history.env_steps[-1]:7d}  "
                  f"reward {history.mean_reward[-1]:8.2f}  "
                  f"success {history.success_rate[-1]:.2f}", flush=True)
        return False

    history = agent.train(callback=progress)
    if args.output.endswith(".ckpt.npz") or args.checkpoint:
        agent.save_checkpoint(args.output)
        kind = "checkpoint"
    else:
        agent.save_policy(args.output)
        kind = "policy"
    print(f"saved {kind} to {args.output} (final mean reward "
          f"{history.final_mean_reward:.2f}, {history.env_steps[-1]} steps)")
    return 0


def cmd_config_template(args: argparse.Namespace) -> int:
    """Print (or write) the default training configuration as JSON."""
    from repro.config import autockt_to_dict, save_config

    config = AutoCktConfig()
    if args.output:
        save_config(config, args.output)
        print(f"wrote default config to {args.output}")
    else:
        print(json.dumps(autockt_to_dict(config), indent=2, sort_keys=True))
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    """Load a policy and chase N random unseen targets."""
    agent = AutoCkt.for_topology(_topology_factory(args.topology))
    agent.load_policy(args.policy)
    report = agent.deploy(args.targets, seed=args.seed,
                          max_steps=args.horizon)
    print(json.dumps(report.summary(), indent=2))
    return 0


def _indices_or_center(args: argparse.Namespace, space) -> np.ndarray:
    if getattr(args, "indices", None):
        indices = np.array([int(i) for i in args.indices.split(",")])
        if len(indices) != len(space):
            raise SystemExit(f"need {len(space)} indices, got {len(indices)}")
        return space.clip(indices)
    return space.center


def cmd_sensitivity(args: argparse.Namespace) -> int:
    """Spec-vs-parameter sensitivity matrix at one sizing."""
    from repro.analysis import spec_sensitivities

    topo = _topology(args.topology)
    simulator = SchematicSimulator(topo)
    report = spec_sensitivities(simulator,
                                _indices_or_center(args, topo.parameter_space),
                                step=args.step)
    print(report.render(relative=not args.slopes))
    print()
    for spec in topo.spec_space.names:
        print(f"{spec}: dominated by {report.dominant_parameter(spec)}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep one parameter and plot every spec against it."""
    from repro.analysis import line_plot, sweep_parameter

    topo = _topology(args.topology)
    simulator = SchematicSimulator(topo)
    result = sweep_parameter(simulator, args.parameter,
                             _indices_or_center(args, topo.parameter_space),
                             points=args.points)
    for spec in topo.spec_space:
        xs, ys = result.spec_trace(spec.name)
        print(line_plot({spec.name: (xs, ys)},
                        log_y=spec.log_scale,
                        x_label=f"{args.parameter} [{topo.parameter_space[args.parameter].unit}]",
                        y_label=f"{spec.name} [{spec.unit}]",
                        title=f"{spec.name} vs {args.parameter} "
                              f"(monotone {100 * result.monotonic_fraction(spec.name):.0f}%)",
                        width=56, height=10))
        print()
    return 0


def cmd_montecarlo(args: argparse.Namespace) -> int:
    """Mismatch Monte Carlo of one sizing."""
    from repro.analysis import ascii_table
    from repro.pex import MismatchModel, MonteCarloAnalysis

    topo = _topology(args.topology)
    mc = MonteCarloAnalysis(topo, MismatchModel(a_vth=args.avth * 1e-9))
    result = mc.run(indices=_indices_or_center(args, topo.parameter_space),
                    n_trials=args.trials, seed=args.seed)
    rows = [[name, f"{result.mean(name):.4g}", f"{result.std(name):.3g}",
             f"{100 * result.sigma_fraction(name):.2f}%",
             f"{result.quantile(name, 0.05):.4g}",
             f"{result.quantile(name, 0.95):.4g}"]
            for name in topo.spec_space.names]
    print(ascii_table(
        ["spec", "mean", "sigma", "sigma/mean", "q05", "q95"], rows,
        title=(f"{topo.name}: {args.trials} mismatch trials "
               f"({result.n_failed} failed), A_vt = {args.avth} mV*um")))
    return 0


def cmd_poles(args: argparse.Namespace) -> int:
    """Pole analysis of one sizing."""
    from repro.analysis import ascii_table
    from repro.sim import MnaSystem, circuit_poles, solve_dc

    topo = _topology(args.topology)
    indices = _indices_or_center(args, topo.parameter_space)
    values = topo.parameter_space.values(indices)
    system = MnaSystem(topo.build(values), temperature=topo.temperature)
    op = solve_dc(system)
    poles = circuit_poles(system, op)
    rows = [[f"{p.real:.4e}", f"{p.imag:+.4e}",
             f"{abs(p) / (2 * np.pi):.4e}"]
            for p in poles.poles]
    print(ascii_table(["re [rad/s]", "im [rad/s]", "|p|/2pi [Hz]"], rows,
                      title=f"{topo.name}: {len(poles)} finite poles, "
                            f"{'stable' if poles.stable else 'UNSTABLE'}, "
                            f"max Q {poles.max_q():.2f}"))
    return 0


def cmd_datasheet(args: argparse.Namespace) -> int:
    """Full datasheet of one sizing: specs, bias, poles, power, area."""
    from repro.analysis import build_datasheet

    topo = _topology(args.topology)
    sheet = build_datasheet(
        topo, indices=_indices_or_center(args, topo.parameter_space))
    print(sheet.render())
    return 0


def _parse_listen(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` listen address (port 0 = ephemeral)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"bad --listen address {text!r}: expected HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"bad --listen port in {text!r}") from None


def cmd_worker(args: argparse.Namespace) -> int:
    """Host a remote shard worker for one topology on a TCP port."""
    from repro.sim.remote import serve_worker

    topo = _topology(args.topology)
    host, port = _parse_listen(args.listen)
    # A worker is a leaf: it must never recurse into remote evaluation.
    os.environ.pop("REPRO_WORKERS", None)
    serve_worker(host, port, SchematicSimulator(topo, cache=False))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the stateless sizing-evaluation front-end for one topology."""
    from repro.sim.remote import WORKERS_ENV, serve_queries

    if args.workers:
        os.environ[WORKERS_ENV] = args.workers
    topo = _topology(args.topology)
    host, port = _parse_listen(args.listen)
    serve_queries(host, port, SchematicSimulator(topo))
    return 0


def cmd_zoo_list(_args: argparse.Namespace) -> int:
    """List every registered zoo scenario."""
    from repro.errors import TopologyError
    from repro.zoo import registry

    try:
        scenarios = registry()
    except TopologyError as exc:
        raise SystemExit(str(exc)) from None
    rows = [[name, s.base_cls.__name__, os.path.basename(s.source),
             s.description] for name, s in sorted(scenarios.items())]
    print(ascii_table(["scenario", "class", "file", "description"], rows,
                      title=f"Scenario zoo ({len(rows)} registered)"))
    return 0


def cmd_zoo_validate(args: argparse.Namespace) -> int:
    """Validate the zoo (one scenario, or everything with ``--all``).

    The registry load *is* the validation — parsing, inheritance
    resolution, variant expansion and semantic checks all run there —
    so any broken builtin or ``REPRO_ZOO_DIR`` file surfaces here with
    its file and key path, exit code 1."""
    from repro.errors import TopologyError
    from repro.zoo import registry

    try:
        scenarios = registry()
    except TopologyError as exc:
        print(f"INVALID: {exc}")
        return 1
    if args.name:
        if args.name not in scenarios:
            print(f"INVALID: unknown scenario {args.name!r}; registered: "
                  f"{', '.join(sorted(scenarios))}")
            return 1
        print(f"OK: {args.name} ({scenarios[args.name].source})")
        return 0
    for name in sorted(scenarios):
        print(f"OK: {name}")
    print(f"{len(scenarios)} scenarios valid")
    return 0


def cmd_zoo_show(args: argparse.Namespace) -> int:
    """Print one scenario's resolved description as JSON."""
    from repro.errors import TopologyError
    from repro.zoo import scenario

    try:
        print(json.dumps(scenario(args.name).describe(), indent=2))
    except TopologyError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    """List the paper-experiment registry."""
    rows = [[e.key, e.title, e.bench] for e in EXPERIMENTS.values()]
    print(ascii_table(["key", "experiment", "bench"], rows,
                      title="Paper experiments"))
    return 0


#: Runtime knobs surfaced by ``repro knobs`` (reference: docs/knobs.md).
KNOBS = [
    ("REPRO_ENGINE", "auto|dense|sparse|iterative", "auto",
     "linear-algebra backend (auto: size-thresholded, see below)"),
    ("REPRO_SPARSE_THRESHOLD", "int >= 1", "128",
     "auto engine: unknown count where dense hands over to sparse"),
    ("REPRO_ITERATIVE_THRESHOLD", "int >= 1", "4096",
     "auto engine: unknown count where sparse hands over to iterative"),
    ("REPRO_SHARDS", "int >= 1", "1",
     "multicore shard-pool workers for batched evaluation"),
    ("REPRO_WORKERS", "host:port,...", "",
     "remote shard workers (repro worker); overrides REPRO_SHARDS"),
    ("REPRO_ASYNC", "0|1", "0",
     "double-buffered async rollout pipeline (RL + baselines)"),
    ("REPRO_TIMEOUT", "seconds >= 0", "0",
     "per-attempt shard deadline (0 disables; hung workers get killed)"),
    ("REPRO_RETRIES", "int >= 0", "2",
     "extra attempts per shard node before bisection/quarantine"),
    ("REPRO_RETRY_BACKOFF", "seconds >= 0", "0.05",
     "base exponential backoff between shard retry attempts"),
    ("REPRO_FAULTS", "profile", "",
     "deterministic fault injection (kill/exc/hang/delay/poison)"),
    ("REPRO_CACHE", "off|mem|disk", "off",
     "persistent result store + Newton warm-start cache"),
    ("REPRO_CACHE_DIR", "path", ".repro-cache",
     "disk-tier location of the REPRO_CACHE=disk store"),
    ("REPRO_ZOO_DIR", "dir[:dir...]", "",
     "user scenario-zoo directories (repro zoo; YAML/JSON declarations)"),
    ("REPRO_MODAL_AC", "1|0", "1",
     "modal pole-residue AC fast path (0 forces direct solves)"),
    ("AUTOCKT_FULL", "0|1", "0",
     "paper-scale benchmark configurations"),
]


def cmd_knobs(_args: argparse.Namespace) -> int:
    """Print the runtime-knob reference (see docs/knobs.md)."""
    print(ascii_table(["variable", "values", "default", "effect"],
                      [list(row) for row in KNOBS],
                      title="Runtime knobs (details: docs/knobs.md)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="AutoCkt reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)
    topologies = _topology_names()

    p = sub.add_parser("info", help="describe a topology")
    p.add_argument("topology", choices=topologies)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("simulate", help="evaluate one sizing")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--indices", help="comma-separated grid indices "
                                     "(default: grid centre)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("train", help="train an agent")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--config", help="JSON config file (see config-template); "
                                    "overrides the other training flags")
    p.add_argument("--output", default="policy.npz")
    p.add_argument("--checkpoint", action="store_true",
                   help="save a full checkpoint (config + targets + history) "
                        "instead of a bare policy")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--targets", type=int, default=50)
    p.add_argument("--envs", type=int, default=10)
    p.add_argument("--horizon", type=int, default=30)
    p.add_argument("--stop-reward", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("config-template",
                       help="print the default training config as JSON")
    p.add_argument("--output", help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_config_template)

    p = sub.add_parser("deploy", help="deploy a trained policy")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--policy", default="policy.npz")
    p.add_argument("--targets", type=int, default=100)
    p.add_argument("--horizon", type=int, default=30)
    p.add_argument("--seed", type=int, default=1234)
    p.set_defaults(fn=cmd_deploy)

    p = sub.add_parser("sensitivity",
                       help="spec-vs-parameter sensitivity matrix")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--indices", help="comma-separated grid indices")
    p.add_argument("--step", type=int, default=1)
    p.add_argument("--slopes", action="store_true",
                   help="print raw slopes per grid step instead of "
                        "relative swings")
    p.set_defaults(fn=cmd_sensitivity)

    p = sub.add_parser("sweep", help="sweep one parameter, plot the specs")
    p.add_argument("topology", choices=topologies)
    p.add_argument("parameter")
    p.add_argument("--indices", help="comma-separated grid indices")
    p.add_argument("--points", type=int, default=25)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("montecarlo", help="mismatch Monte Carlo of a sizing")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--indices", help="comma-separated grid indices")
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--avth", type=float, default=3.5,
                   help="Pelgrom A_vt in mV*um (default 3.5)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_montecarlo)

    p = sub.add_parser("poles", help="pole analysis of a sizing")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--indices", help="comma-separated grid indices")
    p.set_defaults(fn=cmd_poles)

    p = sub.add_parser("datasheet",
                       help="full datasheet of a sizing (specs, bias, "
                            "poles, power, area)")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--indices", help="comma-separated grid indices")
    p.set_defaults(fn=cmd_datasheet)

    p = sub.add_parser("worker",
                       help="host a remote shard worker (REPRO_WORKERS "
                            "backend)")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--listen", default="127.0.0.1:0",
                   help="HOST:PORT to listen on (port 0 = ephemeral; the "
                        "bound port is printed on the readiness line)")
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser("serve",
                       help="stateless sizing front-end (newline JSON "
                            "queries in, spec rows out)")
    p.add_argument("topology", choices=topologies)
    p.add_argument("--listen", default="127.0.0.1:0",
                   help="HOST:PORT to listen on (port 0 = ephemeral)")
    p.add_argument("--workers", default="",
                   help="host:port,... of repro worker processes to "
                        "evaluate on (default: in this process)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("zoo", help="declarative scenario zoo "
                                   "(list / validate / show)")
    zoo_sub = p.add_subparsers(dest="zoo_command", required=True)
    zp = zoo_sub.add_parser("list", help="list registered scenarios")
    zp.set_defaults(fn=cmd_zoo_list)
    zp = zoo_sub.add_parser("validate",
                            help="validate scenario declarations "
                                 "(builtin + REPRO_ZOO_DIR)")
    zp.add_argument("name", nargs="?",
                    help="one scenario to validate (default: all)")
    zp.add_argument("--all", action="store_true",
                    help="validate every declaration (the default when "
                         "no name is given)")
    zp.set_defaults(fn=cmd_zoo_validate)
    zp = zoo_sub.add_parser("show", help="show one scenario, resolved")
    zp.add_argument("name")
    zp.set_defaults(fn=cmd_zoo_show)

    p = sub.add_parser("experiments", help="list the paper experiments")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("knobs",
                       help="list the runtime knobs (REPRO_* variables)")
    p.set_defaults(fn=cmd_knobs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
