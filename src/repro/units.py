"""Physical constants and SI unit helpers used throughout the package.

All internal quantities are plain SI floats (volts, amps, ohms, farads,
hertz, seconds, meters).  The helpers here exist so that circuit and
technology definitions read like a datasheet (``5.6 * KILO`` ohms,
``0.5 * MICRO`` meters) instead of a wall of exponents.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default simulation temperature [K] (27 C, the SPICE default).
ROOM_TEMPERATURE = 300.15

#: Permittivity of free space [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPSILON_SIO2 = 3.9

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q [V] at the given temperature [K]."""
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


def db(magnitude: float) -> float:
    """Convert a voltage/current magnitude ratio to decibels (20 log10)."""
    if magnitude <= 0.0:
        return -math.inf
    return 20.0 * math.log10(magnitude)


def from_db(decibels: float) -> float:
    """Convert decibels back to a magnitude ratio (inverse of :func:`db`)."""
    return 10.0 ** (decibels / 20.0)


def degrees(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)


def parse_si(text: str) -> float:
    """Parse a SPICE-style number with an optional SI suffix.

    >>> parse_si("5.6k")
    5600.0
    >>> parse_si("100n")
    1e-07
    >>> parse_si("3meg")
    3000000.0

    Recognised suffixes (case-insensitive): t, g, meg, k, m, u, n, p, f, a.
    Note that SPICE convention applies: ``m`` is milli and ``meg`` is mega.
    """
    text = text.strip().lower()
    suffixes = [
        ("meg", MEGA),
        ("t", TERA),
        ("g", GIGA),
        ("k", KILO),
        ("m", MILLI),
        ("u", MICRO),
        ("n", NANO),
        ("p", PICO),
        ("f", FEMTO),
        ("a", ATTO),
    ]
    for suffix, scale in suffixes:
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * scale
    return float(text)


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``format_si(5600, "Ohm")
    == "5.6 kOhm"``.  Zero and non-finite values are printed plainly."""
    if value == 0.0 or not math.isfinite(value):
        return f"{value} {unit}".strip()
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
