"""Actor-critic policy: the paper's 3-layer, 50-neuron tanh network.

Two separate MLPs (policy and value — RLlib's default for PPO), a factored
categorical head over the ``MultiDiscrete`` action space, and npz
save/load so trained agents can be shipped and transfer-deployed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.rl.distributions import MultiCategorical
from repro.rl.nn import MLP


class ActorCritic:
    """Policy + value networks over a flat observation vector.

    Parameters
    ----------
    obs_dim:
        Observation dimensionality.
    nvec:
        Action-space sizes (``[3] * N`` for sizing).
    hidden:
        Hidden layer widths; the paper uses ``(50, 50, 50)``.
    seed:
        Initialisation seed.
    """

    def __init__(self, obs_dim: int, nvec, hidden: tuple[int, ...] = (50, 50, 50),
                 seed: int = 0):
        self.obs_dim = int(obs_dim)
        self.nvec = np.asarray(nvec, dtype=np.int64)
        self.hidden = tuple(int(h) for h in hidden)
        if self.obs_dim < 1 or len(self.nvec) < 1:
            raise TrainingError("bad policy dimensions")
        rng = np.random.default_rng(seed)
        sizes = [self.obs_dim, *self.hidden]
        self.pi = MLP([*sizes, int(self.nvec.sum())], rng, out_gain=0.01)
        self.vf = MLP([*sizes, 1], rng, out_gain=1.0)

    # -- inference ----------------------------------------------------------
    def distribution(self, obs: np.ndarray) -> MultiCategorical:
        """Action distribution at (a batch of) observations."""
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        return MultiCategorical(self.pi.forward(obs), self.nvec)

    def value(self, obs: np.ndarray) -> np.ndarray:
        """Value estimates for (a batch of) observations."""
        obs = np.atleast_2d(np.asarray(obs, dtype=float))
        return self.vf.forward(obs)[:, 0]

    def act(self, obs: np.ndarray, rng: np.random.Generator,
            deterministic: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched action selection: returns (actions, log_probs, values)."""
        dist = self.distribution(obs)
        actions = dist.mode() if deterministic else dist.sample(rng)
        return actions, dist.log_prob(actions), self.value(obs)

    def act_single(self, obs: np.ndarray, rng: np.random.Generator,
                   deterministic: bool = False) -> np.ndarray:
        """Action for one observation (deployment convenience)."""
        return self.act(obs[None, :], rng, deterministic)[0][0]

    # -- serialisation --------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Weights and architecture as a flat array dict (npz-ready)."""
        arrays = {"meta_obs_dim": np.array(self.obs_dim),
                  "meta_nvec": self.nvec,
                  "meta_hidden": np.array(self.hidden)}
        for i, a in enumerate(self.pi.state_arrays()):
            arrays[f"pi_{i}"] = a
        for i, a in enumerate(self.vf.state_arrays()):
            arrays[f"vf_{i}"] = a
        return arrays

    @classmethod
    def from_arrays(cls, data) -> "ActorCritic":
        """Inverse of :meth:`to_arrays` (accepts any array mapping)."""
        policy = cls(obs_dim=int(data["meta_obs_dim"]),
                     nvec=np.asarray(data["meta_nvec"]),
                     hidden=tuple(int(h) for h in data["meta_hidden"]))
        n_pi = len(policy.pi.state_arrays())
        n_vf = len(policy.vf.state_arrays())
        policy.pi.load_state_arrays([data[f"pi_{i}"] for i in range(n_pi)])
        policy.vf.load_state_arrays([data[f"vf_{i}"] for i in range(n_vf)])
        return policy

    def save(self, path: str) -> None:
        """Save weights and architecture to an ``.npz`` file."""
        np.savez(path, **self.to_arrays())

    @classmethod
    def load(cls, path: str) -> "ActorCritic":
        return cls.from_arrays(np.load(path))

    def clone(self) -> "ActorCritic":
        """Deep copy (used to snapshot the best policy during training)."""
        twin = ActorCritic(self.obs_dim, self.nvec, self.hidden)
        twin.pi.load_state_arrays([a.copy() for a in self.pi.state_arrays()])
        twin.vf.load_state_arrays([a.copy() for a in self.vf.state_arrays()])
        return twin
