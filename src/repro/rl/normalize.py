"""Running observation/reward normalisation.

The sizing environment already normalises observations into [-1, 1] by
construction (spec ranges are known a-priori), which is why the paper's
setup trains without normalisation wrappers.  For *new* environments —
users plugging their own simulators in — running normalisation is the
standard fix for badly-scaled observations, so the substrate provides the
usual wrappers:

* :class:`RunningMeanStd` — numerically-stable streaming mean/variance
  (Chan et al. parallel-update form, the same algorithm RLlib and
  stable-baselines use);
* :class:`NormalizeObservation` — an :class:`~repro.rl.env.Env` wrapper
  whitening observations with running statistics;
* :class:`NormalizeReward` — scales rewards by the running standard
  deviation of the discounted return (variance-only: subtracting a mean
  would change the optimal policy).

Statistics can be frozen for deployment and round-tripped through
``state_dict``/``load_state_dict`` alongside policy checkpoints.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.rl.env import Env


class RunningMeanStd:
    """Streaming estimate of per-component mean and variance."""

    def __init__(self, shape: tuple[int, ...] = (), epsilon: float = 1e-4):
        self.mean = np.zeros(shape, dtype=float)
        self.var = np.ones(shape, dtype=float)
        self.count = float(epsilon)

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch (leading axis = samples) into the statistics."""
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == self.mean.ndim:
            batch = batch[None, ...]
        if batch.shape[1:] != self.mean.shape:
            raise TrainingError(
                f"batch shape {batch.shape[1:]} != stat shape {self.mean.shape}")
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]

        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta ** 2 * self.count * batch_count / total
        self.mean = new_mean
        self.var = m2 / total
        self.count = total

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.var)

    def normalize(self, values: np.ndarray, clip: float = 10.0) -> np.ndarray:
        """Whiten ``values`` with the current statistics."""
        out = (np.asarray(values, dtype=float) - self.mean) / (self.std + 1e-8)
        return np.clip(out, -clip, clip)

    def state_dict(self) -> dict:
        """Statistics as a plain dict (checkpointing)."""
        return {"mean": self.mean.copy(), "var": self.var.copy(),
                "count": self.count}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        self.mean = np.asarray(state["mean"], dtype=float).copy()
        self.var = np.asarray(state["var"], dtype=float).copy()
        self.count = float(state["count"])


class NormalizeObservation(Env):
    """Env wrapper whitening observations with running statistics.

    Set ``frozen=True`` (or call :meth:`freeze`) to stop updating the
    statistics — deployment must see the same transform training ended
    with.
    """

    def __init__(self, env: Env, clip: float = 10.0, frozen: bool = False):
        self.env = env
        self.observation_space = env.observation_space
        self.action_space = env.action_space
        shape = tuple(env.observation_space.shape)
        self.rms = RunningMeanStd(shape=shape)
        self.clip = float(clip)
        self.frozen = bool(frozen)

    def freeze(self) -> None:
        """Stop updating statistics (deployment mode)."""
        self.frozen = True

    def _transform(self, obs: np.ndarray) -> np.ndarray:
        if not self.frozen:
            self.rms.update(obs)
        return self.rms.normalize(obs, clip=self.clip)

    def reset(self) -> np.ndarray:
        return self._transform(self.env.reset())

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        return self._transform(obs), reward, done, info

    def state_dict(self) -> dict:
        """Wrapper state as a plain dict (checkpointing)."""
        return {"rms": self.rms.state_dict(), "clip": self.clip}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        self.rms.load_state_dict(state["rms"])
        self.clip = float(state["clip"])


class NormalizeReward(Env):
    """Env wrapper scaling rewards by the running std of discounted returns.

    Keeps the reward *sign* (no mean subtraction), so goal bonuses remain
    positive and the paper's "mean reward reaches 0" stopping rule stays
    meaningful relative to its own scale.
    """

    def __init__(self, env: Env, gamma: float = 0.99, clip: float = 10.0,
                 frozen: bool = False):
        if not 0.0 < gamma <= 1.0:
            raise TrainingError(f"gamma must be in (0, 1], got {gamma}")
        self.env = env
        self.observation_space = env.observation_space
        self.action_space = env.action_space
        self.rms = RunningMeanStd(shape=())
        self.gamma = float(gamma)
        self.clip = float(clip)
        self.frozen = bool(frozen)
        self._ret = 0.0

    def freeze(self) -> None:
        """Stop updating statistics (deployment mode)."""
        self.frozen = True

    def reset(self) -> np.ndarray:
        self._ret = 0.0
        return self.env.reset()

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        if not self.frozen:
            self._ret = self._ret * self.gamma + reward
            self.rms.update(np.array([self._ret]))
        scaled = float(np.clip(reward / (float(self.rms.std) + 1e-8),
                               -self.clip, self.clip))
        if done:
            self._ret = 0.0
        return obs, scaled, done, info

    def state_dict(self) -> dict:
        """Wrapper state as a plain dict (checkpointing)."""
        return {"rms": self.rms.state_dict(), "gamma": self.gamma,
                "clip": self.clip}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        self.rms.load_state_dict(state["rms"])
        self.gamma = float(state["gamma"])
        self.clip = float(state["clip"])
