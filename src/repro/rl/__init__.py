"""Reinforcement-learning substrate (Gym-style API + numpy PPO).

The paper trains with Proximal Policy Optimization through OpenAI Gym and
RLlib; this package provides the equivalent pieces with no dependencies
beyond numpy:

* :mod:`repro.rl.spaces` — ``Box`` / ``Discrete`` / ``MultiDiscrete``;
* :mod:`repro.rl.env` — the ``Env`` interface and a synchronous
  ``VectorEnv``;
* :mod:`repro.rl.async_env` — the double-buffered ``AsyncVectorEnv``
  (knob ``REPRO_ASYNC``) that overlaps policy inference with batched
  simulation;
* :mod:`repro.rl.nn` — MLPs with manual backprop and Adam;
* :mod:`repro.rl.distributions` — factored categorical action heads;
* :mod:`repro.rl.policy` — the 3x50-tanh actor-critic the paper specifies;
* :mod:`repro.rl.buffer` — GAE(lambda) rollout buffer;
* :mod:`repro.rl.ppo` — clipped-surrogate PPO trainer;
* :mod:`repro.rl.parallel` — multiprocess ``VectorEnv`` (the Ray stand-in);
* :mod:`repro.rl.schedules` — hyperparameter anneals;
* :mod:`repro.rl.normalize` — running obs/reward normalisation wrappers.
"""

from repro.rl.async_env import AsyncVectorEnv, async_enabled
from repro.rl.buffer import RolloutBuffer
from repro.rl.distributions import MultiCategorical
from repro.rl.env import Env, VectorEnv
from repro.rl.nn import MLP, Adam, Linear, Tanh
from repro.rl.normalize import NormalizeObservation, NormalizeReward, RunningMeanStd
from repro.rl.parallel import ParallelVectorEnv
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.rl.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    PiecewiseSchedule,
    Schedule,
    as_schedule,
)
from repro.rl.spaces import Box, Discrete, MultiDiscrete

__all__ = [
    "ActorCritic",
    "Adam",
    "AsyncVectorEnv",
    "async_enabled",
    "Box",
    "ConstantSchedule",
    "CosineSchedule",
    "Discrete",
    "Env",
    "ExponentialSchedule",
    "Linear",
    "LinearSchedule",
    "MLP",
    "MultiCategorical",
    "MultiDiscrete",
    "NormalizeObservation",
    "NormalizeReward",
    "PPOConfig",
    "PPOTrainer",
    "ParallelVectorEnv",
    "PiecewiseSchedule",
    "RolloutBuffer",
    "RunningMeanStd",
    "Schedule",
    "Tanh",
    "TrainingHistory",
    "VectorEnv",
]
