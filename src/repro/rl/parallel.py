"""Multiprocess environment execution (the reproduction's Ray stand-in).

The paper "utilize[s] the capabilities of Ray to run multiple environments
in parallel", quoting 1.3 hours of wall clock on an 8-core CPU for the
two-stage op-amp.  :class:`ParallelVectorEnv` reproduces that axis with
the standard library: each environment lives in its own worker process and
the main process batches policy queries across workers.  The process/pipe
plumbing is :class:`repro.sim.parallel.WorkerGroup` — the same machinery
behind the simulator shard pool — so the start method resolves portably:
``fork`` where the platform has it (closure factories welcome), ``spawn``
everywhere else, in which case the environment factories must be
picklable (a topology class, a ``functools.partial``, or any module-level
callable qualifies; lambdas closing over live simulators do not).

The interface matches :class:`~repro.rl.env.VectorEnv` exactly — same
``reset`` / ``step`` signatures, same auto-reset semantics with
:class:`~repro.rl.env.EpisodeStats` for finished episodes — so
:class:`~repro.rl.ppo.PPOTrainer` accepts either implementation.

Parallelism only pays when a single environment step is expensive (PEX
simulation, big transient sweeps); for the microsecond-scale schematic
steps in this reproduction the in-process :class:`VectorEnv` is usually
faster — and scales across cores anyway through the simulator shard pool
(``REPRO_SHARDS``), which parallelises the batched *solves* instead of
the environments.  ``benchmarks/bench_parallel_scaling.py`` quantifies
the crossover.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import TrainingError
from repro.rl.env import Env, EpisodeStats
from repro.sim.parallel import WorkerGroup


def _worker(remote, env_fn: Callable[[], Env]) -> None:
    """Worker loop: owns one env, tracks episode stats, auto-resets."""
    env = env_fn()
    ep_reward = 0.0
    ep_length = 0
    try:
        while True:
            cmd, payload = remote.recv()
            if cmd == "reset":
                ep_reward = 0.0
                ep_length = 0
                remote.send(env.reset())
            elif cmd == "step":
                obs, reward, done, info = env.step(payload)
                ep_reward += reward
                ep_length += 1
                stats = None
                if done:
                    stats = EpisodeStats(
                        reward=float(ep_reward), length=int(ep_length),
                        success=bool(info.get("success", False)))
                    ep_reward = 0.0
                    ep_length = 0
                    obs = env.reset()
                remote.send((obs, float(reward), bool(done), info, stats))
            elif cmd == "spaces":
                remote.send((env.observation_space, env.action_space))
            elif cmd == "close":
                remote.send(None)
                break
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        remote.close()


class ParallelVectorEnv:
    """Synchronous batch of environments, one per worker process.

    Parameters
    ----------
    env_fns:
        One zero-argument environment factory per worker.  With the fork
        start method the factories may close over unpicklable state; under
        spawn (the fallback on fork-less platforms, or when requested)
        they must be picklable.
    context:
        Multiprocessing start method; None picks ``fork`` where available
        and ``spawn`` otherwise (an explicit ``"fork"`` request is also
        downgraded to ``spawn`` on platforms without fork).
    """

    def __init__(self, env_fns: list[Callable[[], Env]],
                 context: str | None = None):
        if not env_fns:
            raise TrainingError("ParallelVectorEnv needs at least one env factory")
        self._group = WorkerGroup(_worker, [(fn,) for fn in env_fns],
                                  context=context)
        self._remotes = self._group.remotes
        self._remotes[0].send(("spaces", None))
        self.observation_space, self.action_space = self._remotes[0].recv()

    def __len__(self) -> int:
        return len(self._remotes)

    def _ensure_open(self) -> None:
        """Refuse to touch a closed worker group."""
        if self._group.closed:
            raise TrainingError("ParallelVectorEnv is closed")

    def _send(self, remote, message) -> None:
        """Send one command, translating a dead worker into a clear error.

        A worker that died (crash, OOM, kill) closes its pipe end; the
        group is mid-protocol and unrecoverable, so it is torn down and
        the caller gets a :class:`TrainingError` instead of a raw
        ``BrokenPipeError`` — and never a hang."""
        try:
            remote.send(message)
        except (BrokenPipeError, OSError):
            self.close()
            raise TrainingError(
                "environment worker died; vector env closed") from None

    def _recv(self, remote):
        """Receive one reply, translating a dead worker into a clear error."""
        try:
            return remote.recv()
        except (EOFError, OSError):
            self.close()
            raise TrainingError(
                "environment worker died mid-step; vector env closed"
            ) from None

    def reset(self) -> np.ndarray:
        """Reset every worker; returns the stacked initial observations."""
        self._ensure_open()
        for remote in self._remotes:
            self._send(remote, ("reset", None))
        return np.stack([self._recv(remote) for remote in self._remotes])

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, list[dict],
                                                 list[EpisodeStats]]:
        """Step every worker; identical contract to ``VectorEnv.step``."""
        self._ensure_open()
        if len(actions) != len(self._remotes):
            raise TrainingError(
                f"got {len(actions)} actions for {len(self._remotes)} envs")
        for remote, action in zip(self._remotes, actions):
            self._send(remote, ("step", action))
        obs_list, rewards, dones, infos = [], [], [], []
        finished: list[EpisodeStats] = []
        for remote in self._remotes:
            obs, reward, done, info, stats = self._recv(remote)
            obs_list.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
            if stats is not None:
                finished.append(stats)
        return (np.stack(obs_list), np.asarray(rewards, dtype=float),
                np.asarray(dones, dtype=bool), infos, finished)

    def close(self) -> None:
        """Shut down the workers (idempotent)."""
        self._group.close()

    def __enter__(self) -> "ParallelVectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown best effort
        try:
            self.close()
        except Exception:
            pass
