"""Multiprocess environment execution (the reproduction's Ray stand-in).

The paper "utilize[s] the capabilities of Ray to run multiple environments
in parallel", quoting 1.3 hours of wall clock on an 8-core CPU for the
two-stage op-amp.  :class:`ParallelVectorEnv` reproduces that axis with
the standard library: each environment lives in its own worker process and
the main process batches policy queries across workers.  The process/pipe
plumbing is :class:`repro.sim.parallel.WorkerGroup` — the same machinery
behind the simulator shard pool — so the start method resolves portably:
``fork`` where the platform has it (closure factories welcome), ``spawn``
everywhere else, in which case the environment factories must be
picklable (a topology class, a ``functools.partial``, or any module-level
callable qualifies; lambdas closing over live simulators do not).

The interface matches :class:`~repro.rl.env.VectorEnv` exactly — same
``reset`` / ``step`` signatures, same auto-reset semantics with
:class:`~repro.rl.env.EpisodeStats` for finished episodes — so
:class:`~repro.rl.ppo.PPOTrainer` accepts either implementation.

Failure contract: a worker that dies mid-rollout (crash, OOM, kill) is
respawned in place with a fresh environment; its slot reports one
synthetic truncated episode (``done`` True, zero reward,
``info["worker_fault"]``) and training continues — the healed faults
are listed in ``fault_events``.  Only a worker that dies *again* before
delivering a single successful reply (a broken factory) tears the group
down with a :class:`~repro.errors.TrainingError`.

Parallelism only pays when a single environment step is expensive (PEX
simulation, big transient sweeps); for the microsecond-scale schematic
steps in this reproduction the in-process :class:`VectorEnv` is usually
faster — and scales across cores anyway through the simulator shard pool
(``REPRO_SHARDS``), which parallelises the batched *solves* instead of
the environments.  ``benchmarks/bench_parallel_scaling.py`` quantifies
the crossover.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import TrainingError
from repro.rl.env import Env, EpisodeStats
from repro.sim.parallel import WorkerGroup


def _worker(remote, env_fn: Callable[[], Env]) -> None:
    """Worker loop: owns one env, tracks episode stats, auto-resets."""
    env = env_fn()
    ep_reward = 0.0
    ep_length = 0
    try:
        while True:
            cmd, payload = remote.recv()
            if cmd == "reset":
                ep_reward = 0.0
                ep_length = 0
                remote.send(env.reset())
            elif cmd == "step":
                obs, reward, done, info = env.step(payload)
                ep_reward += reward
                ep_length += 1
                stats = None
                if done:
                    stats = EpisodeStats(
                        reward=float(ep_reward), length=int(ep_length),
                        success=bool(info.get("success", False)))
                    ep_reward = 0.0
                    ep_length = 0
                    obs = env.reset()
                remote.send((obs, float(reward), bool(done), info, stats))
            elif cmd == "spaces":
                remote.send((env.observation_space, env.action_space))
            elif cmd == "close":
                remote.send(None)
                break
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        remote.close()


class ParallelVectorEnv:
    """Synchronous batch of environments, one per worker process.

    Parameters
    ----------
    env_fns:
        One zero-argument environment factory per worker.  With the fork
        start method the factories may close over unpicklable state; under
        spawn (the fallback on fork-less platforms, or when requested)
        they must be picklable.
    context:
        Multiprocessing start method; None picks ``fork`` where available
        and ``spawn`` otherwise (an explicit ``"fork"`` request is also
        downgraded to ``spawn`` on platforms without fork).
    """

    def __init__(self, env_fns: list[Callable[[], Env]],
                 context: str | None = None):
        if not env_fns:
            raise TrainingError("ParallelVectorEnv needs at least one env factory")
        self._group = WorkerGroup(_worker, [(fn,) for fn in env_fns],
                                  context=context)
        self._remotes = self._group.remotes
        self._remotes[0].send(("spaces", None))
        self.observation_space, self.action_space = self._remotes[0].recv()
        #: Human-readable record of every worker fault healed so far.
        self.fault_events: list[str] = []
        # Workers healed since their last successful reply: a second
        # death before any success means the factory (or machine) is
        # broken — healing again would churn forever.
        self._suspect: set[int] = set()

    def __len__(self) -> int:
        return len(self._remotes)

    def _ensure_open(self) -> None:
        """Refuse to touch a closed worker group."""
        if self._group.closed:
            raise TrainingError("ParallelVectorEnv is closed")

    def _heal(self, index: int, detail: str) -> np.ndarray:
        """Respawn a dead worker and reset its env; returns the fresh obs.

        Healing is bounded: a worker that dies again before delivering a
        single successful reply points at a broken factory (or machine),
        so the second death tears the group down with a clear
        :class:`TrainingError` instead of churning respawns forever.
        """
        if index in self._suspect:
            self.close()
            raise TrainingError(
                f"environment worker {index} died twice in a row "
                f"({detail}); vector env closed")
        self._suspect.add(index)
        self.fault_events.append(f"worker {index}: {detail}")
        remote = self._group.respawn(index)
        try:
            remote.send(("reset", None))
            return remote.recv()
        except (BrokenPipeError, EOFError, OSError):
            self.close()
            raise TrainingError(
                f"environment worker {index} failed to respawn; "
                "vector env closed") from None

    def reset(self) -> np.ndarray:
        """Reset every worker; returns the stacked initial observations.

        A worker found dead (crash, OOM, kill) is respawned and reset in
        place — the caller only sees fresh observations."""
        self._ensure_open()
        obs: list = [None] * len(self._remotes)
        for i, remote in enumerate(self._remotes):
            try:
                remote.send(("reset", None))
            except (BrokenPipeError, OSError):
                obs[i] = self._heal(i, "died before reset")
        for i in range(len(self._remotes)):
            if obs[i] is None:
                try:
                    obs[i] = self._remotes[i].recv()
                    self._suspect.discard(i)
                except (EOFError, OSError):
                    obs[i] = self._heal(i, "died during reset")
        return np.stack(obs)

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, list[dict],
                                                 list[EpisodeStats]]:
        """Step every worker; identical contract to ``VectorEnv.step``.

        A worker that dies mid-step is respawned with a fresh env and its
        slot reports a synthetic truncated episode — ``done`` True,
        zero reward, ``info["worker_fault"]`` set and an
        :class:`EpisodeStats` marking the episode unsuccessful — so the
        trainer's bookkeeping stays consistent and training continues."""
        self._ensure_open()
        if len(actions) != len(self._remotes):
            raise TrainingError(
                f"got {len(actions)} actions for {len(self._remotes)} envs")
        outcomes: list = [None] * len(self._remotes)
        for i, action in enumerate(actions):
            try:
                self._remotes[i].send(("step", action))
            except (BrokenPipeError, OSError):
                outcomes[i] = self._fault_outcome(i, "died before step")
        for i in range(len(self._remotes)):
            if outcomes[i] is None:
                try:
                    outcomes[i] = self._remotes[i].recv()
                    self._suspect.discard(i)
                except (EOFError, OSError):
                    outcomes[i] = self._fault_outcome(i, "died mid-step")
        obs_list, rewards, dones, infos = [], [], [], []
        finished: list[EpisodeStats] = []
        for obs, reward, done, info, stats in outcomes:
            obs_list.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
            if stats is not None:
                finished.append(stats)
        return (np.stack(obs_list), np.asarray(rewards, dtype=float),
                np.asarray(dones, dtype=bool), infos, finished)

    def _fault_outcome(self, index: int, detail: str):
        """Heal one worker and synthesise its truncated step outcome."""
        obs = self._heal(index, detail)
        info = {"worker_fault": True, "success": False}
        return (obs, 0.0, True, info,
                EpisodeStats(reward=0.0, length=0, success=False))

    def close(self) -> None:
        """Shut down the workers (idempotent)."""
        self._group.close()

    def __enter__(self) -> "ParallelVectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown best effort
        try:
            self.close()
        except Exception:
            pass
