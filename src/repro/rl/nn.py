"""Minimal neural-network library: dense layers, tanh, manual backprop, Adam.

Implements exactly what PPO on a small MLP needs — nothing more.  Layers
cache their forward inputs and accumulate parameter gradients on
``backward``; gradients are checked against finite differences in
``tests/rl/test_nn.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def orthogonal(shape: tuple[int, int], gain: float,
               rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation (the PPO-standard choice)."""
    a = rng.standard_normal(shape)
    u, _, vt = np.linalg.svd(a, full_matrices=False)
    q = u if u.shape == shape else vt
    return gain * q.reshape(shape)


class Layer:
    """Base layer: forward caches what backward needs."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches what ``backward`` needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad``; returns grad w.r.t. input."""
        raise NotImplementedError

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs; gradients are accumulated in place."""
        return []

    def zero_grad(self) -> None:
        """Zero accumulated parameter gradients."""
        for _, grad in self.parameters():
            grad.fill(0.0)


class Linear(Layer):
    """Affine layer ``y = x W^T + b`` with orthogonal init."""

    def __init__(self, in_dim: int, out_dim: int, gain: float,
                 rng: np.random.Generator):
        if in_dim < 1 or out_dim < 1:
            raise TrainingError("Linear dims must be >= 1")
        self.W = orthogonal((out_dim, in_dim), gain, rng)
        self.b = np.zeros(out_dim)
        self.gW = np.zeros_like(self.W)
        self.gb = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine map ``x @ W + b``."""
        self._x = x
        return x @ self.W.T + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate dW/db; return upstream gradient."""
        if self._x is None:
            raise TrainingError("backward before forward")
        self.gW += grad_out.T @ self._x
        self.gb += grad_out.sum(axis=0)
        return grad_out @ self.W

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.gW), (self.b, self.gb)]


class Tanh(Layer):
    """Elementwise tanh."""

    def __init__(self):
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Elementwise tanh."""
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Chain through the tanh derivative."""
        if self._y is None:
            raise TrainingError("backward before forward")
        return grad_out * (1.0 - self._y ** 2)


class MLP(Layer):
    """Tanh MLP: ``sizes=[in, h1, ..., out]``; the final layer is linear.

    ``out_gain`` scales the last layer's orthogonal init (0.01 for policy
    heads, 1.0 for value heads — the usual PPO recipe).
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator,
                 out_gain: float = 0.01, hidden_gain: float = np.sqrt(2.0)):
        if len(sizes) < 2:
            raise TrainingError("MLP needs at least input and output sizes")
        self.layers: list[Layer] = []
        for i in range(len(sizes) - 1):
            last = i == len(sizes) - 2
            gain = out_gain if last else hidden_gain
            self.layers.append(Linear(sizes[i], sizes[i + 1], gain, rng))
            if not last:
                self.layers.append(Tanh())

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the stack layer by layer."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through the whole stack."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        """Zero every layer's gradients."""
        for layer in self.layers:
            layer.zero_grad()

    # -- serialisation -------------------------------------------------------
    def state_arrays(self) -> list[np.ndarray]:
        """Flat list of the parameter arrays (save order)."""
        return [p for p, _ in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_arrays`."""
        params = self.parameters()
        if len(arrays) != len(params):
            raise TrainingError(
                f"state mismatch: {len(arrays)} arrays for {len(params)} params")
        for (p, _), a in zip(params, arrays):
            if p.shape != a.shape:
                raise TrainingError(f"shape mismatch {p.shape} vs {a.shape}")
            p[...] = a


def global_grad_norm(params: list[tuple[np.ndarray, np.ndarray]]) -> float:
    """L2 norm over all gradients."""
    total = 0.0
    for _, g in params:
        total += float(np.sum(g * g))
    return float(np.sqrt(total))


def clip_grad_norm(params: list[tuple[np.ndarray, np.ndarray]],
                   max_norm: float) -> float:
    """Scale all gradients so the global norm is at most ``max_norm``."""
    norm = global_grad_norm(params)
    if max_norm > 0.0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for _, g in params:
            g *= scale
    return norm


class Adam:
    """Adam optimiser over a fixed parameter list."""

    def __init__(self, params: list[tuple[np.ndarray, np.ndarray]],
                 lr: float = 3e-4, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8):
        if lr <= 0:
            raise TrainingError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.t = 0
        self._m = [np.zeros_like(p) for p, _ in params]
        self._v = [np.zeros_like(p) for p, _ in params]

    def step(self, lr: float | None = None) -> None:
        """Apply one update from the accumulated gradients."""
        lr = self.lr if lr is None else lr
        self.t += 1
        bias1 = 1.0 - self.beta1 ** self.t
        bias2 = 1.0 - self.beta2 ** self.t
        for (p, g), m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        """Zero the tracked gradient buffers."""
        for _, g in self.params:
            g.fill(0.0)
