"""Rollout storage and Generalized Advantage Estimation.

Stores fixed-length synchronous rollouts from a :class:`VectorEnv` (shape
``(T, E, ...)``) and computes GAE(lambda) advantages and value targets,
handling episode boundaries (``done``) and bootstrap values at both
truncation and rollout end.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class RolloutBuffer:
    """(T, E) rollout with GAE post-processing."""

    def __init__(self, n_steps: int, n_envs: int, obs_dim: int, act_dim: int):
        if min(n_steps, n_envs, obs_dim, act_dim) < 1:
            raise TrainingError("all buffer dimensions must be >= 1")
        self.n_steps = n_steps
        self.n_envs = n_envs
        self.obs = np.zeros((n_steps, n_envs, obs_dim))
        self.actions = np.zeros((n_steps, n_envs, act_dim), dtype=np.int64)
        self.rewards = np.zeros((n_steps, n_envs))
        self.dones = np.zeros((n_steps, n_envs), dtype=bool)
        self.values = np.zeros((n_steps, n_envs))
        self.log_probs = np.zeros((n_steps, n_envs))
        self.advantages = np.zeros((n_steps, n_envs))
        self.returns = np.zeros((n_steps, n_envs))
        self._cursor = 0

    @property
    def full(self) -> bool:
        return self._cursor == self.n_steps

    def add(self, obs, actions, rewards, dones, values, log_probs) -> None:
        """Append one vector-env transition to the buffer."""
        if self.full:
            raise TrainingError("rollout buffer overflow")
        t = self._cursor
        self.obs[t] = obs
        self.actions[t] = actions
        self.rewards[t] = rewards
        self.dones[t] = dones
        self.values[t] = values
        self.log_probs[t] = log_probs
        self._cursor += 1

    def add_slice(self, t: int, env_slice: slice, obs, actions, rewards,
                  dones, values, log_probs) -> None:
        """Write one env-group's transition at step ``t``.

        The async rollout pipeline fills the buffer group by group (the
        groups reach step ``t`` at different wall-clock moments); call
        :meth:`mark_full` once every ``(t, group)`` cell is written.
        """
        if not 0 <= t < self.n_steps:
            raise TrainingError(f"step {t} outside rollout of {self.n_steps}")
        self.obs[t, env_slice] = obs
        self.actions[t, env_slice] = actions
        self.rewards[t, env_slice] = rewards
        self.dones[t, env_slice] = dones
        self.values[t, env_slice] = values
        self.log_probs[t, env_slice] = log_probs

    def mark_full(self) -> None:
        """Declare a slice-filled buffer complete (enables GAE/flatten)."""
        self._cursor = self.n_steps

    def reset(self) -> None:
        """Clear the buffer for the next rollout."""
        self._cursor = 0

    def compute_gae(self, last_values: np.ndarray, gamma: float,
                    lam: float) -> None:
        """Fill ``advantages`` and ``returns``.

        ``dones[t]`` marks that the episode ended *at* step t, so no value
        bootstraps across t -> t+1.  ``last_values`` bootstraps the final
        step for episodes still running at the rollout boundary.
        """
        if not self.full:
            raise TrainingError("compute_gae on a partially-filled buffer")
        gae = np.zeros(self.n_envs)
        for t in reversed(range(self.n_steps)):
            next_values = (last_values if t == self.n_steps - 1
                           else self.values[t + 1])
            not_done = 1.0 - self.dones[t].astype(float)
            delta = (self.rewards[t] + gamma * next_values * not_done
                     - self.values[t])
            gae = delta + gamma * lam * not_done * gae
            self.advantages[t] = gae
        self.returns = self.advantages + self.values

    def flattened(self) -> dict[str, np.ndarray]:
        """Flatten (T, E) to (T*E,) for minibatching."""
        if not self.full:
            raise TrainingError("flatten on a partially-filled buffer")
        n = self.n_steps * self.n_envs
        return {
            "obs": self.obs.reshape(n, -1),
            "actions": self.actions.reshape(n, -1),
            "values": self.values.reshape(n),
            "log_probs": self.log_probs.reshape(n),
            "advantages": self.advantages.reshape(n),
            "returns": self.returns.reshape(n),
        }
