"""Observation/action spaces (the Gym subset the reproduction needs)."""

from __future__ import annotations

import numpy as np

from repro.errors import SpaceError


class Space:
    """Base class: a set with a shape, sampling and membership test."""

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one element of the space."""
        raise NotImplementedError

    def contains(self, x) -> bool:
        """Membership test."""
        raise NotImplementedError


class Box(Space):
    """Continuous box in R^shape with per-dimension bounds."""

    def __init__(self, low, high, shape: tuple[int, ...] | None = None):
        low = np.asarray(low, dtype=float)
        high = np.asarray(high, dtype=float)
        if shape is not None:
            low = np.broadcast_to(low, shape).copy()
            high = np.broadcast_to(high, shape).copy()
        if low.shape != high.shape:
            raise SpaceError("low/high shapes differ")
        if np.any(low > high):
            raise SpaceError("Box needs low <= high everywhere")
        self.low = low
        self.high = high
        self.shape = low.shape

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Gaussian draw clipped into the box."""
        finite = np.isfinite(self.low) & np.isfinite(self.high)
        gaussian = rng.standard_normal(self.shape)
        lo = np.where(finite, self.low, 0.0)
        hi = np.where(finite, self.high, 1.0)
        return np.where(finite, rng.uniform(lo, hi), gaussian)

    def contains(self, x) -> bool:
        """Shape and bound check."""
        x = np.asarray(x, dtype=float)
        return (x.shape == self.shape
                and bool(np.all(x >= self.low - 1e-12))
                and bool(np.all(x <= self.high + 1e-12)))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Box(shape={self.shape})"


class Discrete(Space):
    """{0, 1, ..., n-1}."""

    def __init__(self, n: int):
        if n < 1:
            raise SpaceError("Discrete needs n >= 1")
        self.n = int(n)
        self.shape = ()

    def sample(self, rng: np.random.Generator) -> int:
        """Uniform integer in [0, n)."""
        return int(rng.integers(self.n))

    def contains(self, x) -> bool:
        """Integer range check."""
        try:
            xi = int(x)
        except (TypeError, ValueError):
            return False
        return 0 <= xi < self.n and float(x) == xi

    def __repr__(self) -> str:  # pragma: no cover
        return f"Discrete({self.n})"


class MultiDiscrete(Space):
    """Product of Discrete spaces; the paper's per-parameter
    {decrement, keep, increment} action space is ``MultiDiscrete([3]*N)``."""

    def __init__(self, nvec):
        self.nvec = np.asarray(nvec, dtype=np.int64)
        if self.nvec.ndim != 1 or len(self.nvec) == 0 or np.any(self.nvec < 1):
            raise SpaceError("MultiDiscrete needs a 1-D vector of sizes >= 1")
        self.shape = (len(self.nvec),)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Independent uniform integer per dimension."""
        return rng.integers(0, self.nvec)

    def contains(self, x) -> bool:
        """Per-dimension integer range check."""
        x = np.asarray(x)
        if x.shape != self.shape:
            return False
        if not np.issubdtype(x.dtype, np.integer):
            if not np.all(x == np.floor(x)):
                return False
            x = x.astype(np.int64)
        return bool(np.all(x >= 0) and np.all(x < self.nvec))

    def __repr__(self) -> str:  # pragma: no cover
        return f"MultiDiscrete({self.nvec.tolist()})"
