"""Hyperparameter schedules.

RLlib-era PPO commonly anneals the learning rate and entropy bonus over
training; the paper's hyperparameter sweep operates in that regime.  A
:class:`Schedule` maps training *progress* — the fraction of the training
budget consumed, in [0, 1] — to a hyperparameter value, decoupling the
schedule shape from iteration counts so the same config works for any
``max_iterations``.

:class:`~repro.rl.ppo.PPOTrainer` consults ``PPOConfig.lr_schedule`` and
``PPOConfig.ent_schedule`` once per iteration when they are set.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import TrainingError


def _check_fraction(fraction: float) -> float:
    if not 0.0 <= fraction <= 1.0 or not math.isfinite(fraction):
        raise TrainingError(f"schedule fraction must be in [0, 1], got {fraction}")
    return float(fraction)


class Schedule:
    """Maps training progress (0 = start, 1 = end) to a value."""

    def value(self, fraction: float) -> float:
        """Value at training progress ``fraction`` in [0, 1]."""
        raise NotImplementedError

    def __call__(self, fraction: float) -> float:
        return self.value(fraction)


@dataclasses.dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """Always returns ``constant``."""

    constant: float

    def value(self, fraction: float) -> float:
        """The constant, at any progress."""
        _check_fraction(fraction)
        return self.constant


@dataclasses.dataclass(frozen=True)
class LinearSchedule(Schedule):
    """Linear interpolation from ``start`` to ``end``."""

    start: float
    end: float

    def value(self, fraction: float) -> float:
        """Linear interpolation at ``fraction``."""
        f = _check_fraction(fraction)
        return self.start + (self.end - self.start) * f


@dataclasses.dataclass(frozen=True)
class ExponentialSchedule(Schedule):
    """Geometric decay from ``start`` to ``end`` (both strictly positive)."""

    start: float
    end: float

    def __post_init__(self):
        if self.start <= 0.0 or self.end <= 0.0:
            raise TrainingError("exponential schedule needs positive endpoints")

    def value(self, fraction: float) -> float:
        """Geometric interpolation at ``fraction``."""
        f = _check_fraction(fraction)
        return self.start * (self.end / self.start) ** f


@dataclasses.dataclass(frozen=True)
class CosineSchedule(Schedule):
    """Half-cosine anneal from ``start`` to ``end`` (flat at both ends)."""

    start: float
    end: float

    def value(self, fraction: float) -> float:
        """Half-cosine interpolation at ``fraction``."""
        f = _check_fraction(fraction)
        w = 0.5 * (1.0 + math.cos(math.pi * f))
        return self.end + (self.start - self.end) * w


@dataclasses.dataclass(frozen=True)
class PiecewiseSchedule(Schedule):
    """Linear interpolation through ``(fraction, value)`` breakpoints.

    Breakpoints must be sorted by fraction and span at most [0, 1]; values
    before the first / after the last breakpoint are held constant.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self):
        if len(self.points) < 1:
            raise TrainingError("piecewise schedule needs >= 1 breakpoint")
        fracs = [p[0] for p in self.points]
        if fracs != sorted(fracs):
            raise TrainingError("piecewise breakpoints must be sorted")
        if fracs[0] < 0.0 or fracs[-1] > 1.0:
            raise TrainingError("piecewise breakpoints must lie in [0, 1]")

    def value(self, fraction: float) -> float:
        """Piecewise-linear interpolation at ``fraction``."""
        f = _check_fraction(fraction)
        points = self.points
        if f <= points[0][0]:
            return points[0][1]
        for (f0, v0), (f1, v1) in zip(points, points[1:]):
            if f <= f1:
                if f1 == f0:
                    return v1
                t = (f - f0) / (f1 - f0)
                return v0 + t * (v1 - v0)
        return points[-1][1]


def as_schedule(value: "float | Schedule | None") -> Schedule | None:
    """Coerce a plain number into a :class:`ConstantSchedule`.

    ``None`` passes through (meaning "use the static config value").
    """
    if value is None or isinstance(value, Schedule):
        return value
    return ConstantSchedule(float(value))
