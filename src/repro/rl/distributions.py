"""Factored categorical action distribution.

The sizing action space is ``MultiDiscrete([3] * N)`` — one independent
3-way categorical per circuit parameter.  :class:`MultiCategorical` wraps
the concatenated logits ``(B, sum(nvec))`` and provides sampling,
log-probabilities, entropies, and — because the network library uses
manual backprop — the analytic gradients of both with respect to the
logits:

* ``d log p(a) / d z = onehot(a) - softmax(z)`` per block,
* ``d H / d z_k = -p_k (log p_k + H)`` per block.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def log_softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable log softmax."""
    z = z - z.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


class MultiCategorical:
    """A batch of products of categorical distributions."""

    def __init__(self, logits: np.ndarray, nvec):
        self.nvec = np.asarray(nvec, dtype=np.int64)
        logits = np.asarray(logits, dtype=float)
        if logits.ndim != 2 or logits.shape[1] != int(self.nvec.sum()):
            raise TrainingError(
                f"logits shape {logits.shape} does not match nvec {self.nvec}")
        self.logits = logits
        self._splits = np.cumsum(self.nvec)[:-1]
        self._blocks = np.split(logits, self._splits, axis=1)
        self._logp_blocks = [log_softmax(b) for b in self._blocks]
        self._p_blocks = [np.exp(lp) for lp in self._logp_blocks]

    @property
    def batch_size(self) -> int:
        return self.logits.shape[0]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample actions, shape (B, len(nvec))."""
        cols = []
        for p in self._p_blocks:
            cdf = np.cumsum(p, axis=1)
            u = rng.random((self.batch_size, 1))
            cols.append((u > cdf[:, :-1]).sum(axis=1) if p.shape[1] > 1
                        else np.zeros(self.batch_size, dtype=np.int64))
        return np.stack([np.asarray(c, dtype=np.int64) for c in cols], axis=1)

    def mode(self) -> np.ndarray:
        """Greedy (argmax) actions — used for deterministic deployment."""
        return np.stack([b.argmax(axis=1) for b in self._blocks], axis=1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """Joint log-probability, shape (B,)."""
        actions = self._check_actions(actions)
        rows = np.arange(self.batch_size)
        total = np.zeros(self.batch_size)
        for d, lp in enumerate(self._logp_blocks):
            total += lp[rows, actions[:, d]]
        return total

    def entropy(self) -> np.ndarray:
        """Joint entropy (sum of block entropies), shape (B,)."""
        total = np.zeros(self.batch_size)
        for p, lp in zip(self._p_blocks, self._logp_blocks):
            total += -(p * lp).sum(axis=1)
        return total

    # -- gradients -----------------------------------------------------------
    def grad_log_prob(self, actions: np.ndarray) -> np.ndarray:
        """d log p(a) / d logits, shape (B, sum(nvec))."""
        actions = self._check_actions(actions)
        rows = np.arange(self.batch_size)
        grads = []
        for d, p in enumerate(self._p_blocks):
            g = -p.copy()
            g[rows, actions[:, d]] += 1.0
            grads.append(g)
        return np.concatenate(grads, axis=1)

    def grad_entropy(self) -> np.ndarray:
        """d H / d logits, shape (B, sum(nvec))."""
        grads = []
        for p, lp in zip(self._p_blocks, self._logp_blocks):
            h = -(p * lp).sum(axis=1, keepdims=True)
            grads.append(-p * (lp + h))
        return np.concatenate(grads, axis=1)

    def _check_actions(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.batch_size, len(self.nvec)):
            raise TrainingError(
                f"actions shape {actions.shape}, expected "
                f"({self.batch_size}, {len(self.nvec)})")
        if np.any(actions < 0) or np.any(actions >= self.nvec[None, :]):
            raise TrainingError("action index out of range")
        return actions
