"""Proximal Policy Optimization (clipped surrogate) in numpy.

Faithful to the algorithm the paper trains with (PPO via RLlib):
synchronous rollouts from a vector of environments, GAE(lambda)
advantages, several epochs of minibatched updates on the clipped
surrogate with entropy bonus, a separate value network trained by MSE,
global gradient-norm clipping, and Adam.

Gradients are computed analytically (see
:mod:`repro.rl.distributions` for the categorical-head derivatives) and
verified against finite differences in the test suite.

The stopping rule mirrors the paper: "training terminates once the mean
reward has reached 0, meaning all target specifications are consistently
satisfied" — :meth:`PPOTrainer.train` stops once the mean episode reward
over an iteration crosses ``stop_reward`` for ``stop_patience``
consecutive iterations.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.errors import TrainingError
from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Env, VectorEnv
from repro.rl.nn import Adam, clip_grad_norm
from repro.rl.policy import ActorCritic
from repro.rl.schedules import Schedule


@dataclasses.dataclass
class PPOConfig:
    """Hyperparameters.  Defaults follow RLlib-era PPO practice scaled to
    the paper's setting (trajectories of ~30 steps, 3x50 tanh nets)."""

    n_envs: int = 10
    n_steps: int = 60               # rollout length per env per iteration
    epochs: int = 10
    minibatch_size: int = 64
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    lr: float = 3e-4
    vf_coef: float = 0.5
    ent_coef: float = 0.003
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True
    hidden: tuple[int, ...] = (50, 50, 50)
    seed: int = 0
    #: Optional anneals over training progress (fraction of max_iterations);
    #: when None the static ``lr`` / ``ent_coef`` apply throughout.
    lr_schedule: Schedule | None = None
    ent_schedule: Schedule | None = None

    def __post_init__(self):
        if self.n_envs < 1 or self.n_steps < 1:
            raise TrainingError("n_envs and n_steps must be >= 1")
        if not 0.0 < self.gamma <= 1.0 or not 0.0 <= self.gae_lambda <= 1.0:
            raise TrainingError("bad gamma/lambda")
        if self.clip_ratio <= 0.0:
            raise TrainingError("clip_ratio must be positive")

    @property
    def batch_size(self) -> int:
        return self.n_envs * self.n_steps


@dataclasses.dataclass
class TrainingHistory:
    """Per-iteration training statistics (the data behind Figs. 5/7/11)."""

    iterations: list[int] = dataclasses.field(default_factory=list)
    env_steps: list[int] = dataclasses.field(default_factory=list)
    mean_reward: list[float] = dataclasses.field(default_factory=list)
    success_rate: list[float] = dataclasses.field(default_factory=list)
    mean_length: list[float] = dataclasses.field(default_factory=list)
    entropy: list[float] = dataclasses.field(default_factory=list)
    policy_loss: list[float] = dataclasses.field(default_factory=list)
    value_loss: list[float] = dataclasses.field(default_factory=list)
    stopped_early: bool = False
    wall_time_s: float = 0.0

    def record(self, iteration: int, env_steps: int, mean_reward: float,
               success_rate: float, mean_length: float, entropy: float,
               policy_loss: float, value_loss: float) -> None:
        """Append one iteration's statistics."""
        self.iterations.append(iteration)
        self.env_steps.append(env_steps)
        self.mean_reward.append(mean_reward)
        self.success_rate.append(success_rate)
        self.mean_length.append(mean_length)
        self.entropy.append(entropy)
        self.policy_loss.append(policy_loss)
        self.value_loss.append(value_loss)

    @property
    def final_mean_reward(self) -> float:
        return self.mean_reward[-1] if self.mean_reward else float("-inf")

    def reward_curve(self) -> list[tuple[int, float]]:
        """(env_steps, mean_reward) series — the paper's reward figures."""
        return list(zip(self.env_steps, self.mean_reward))

    def to_dict(self) -> dict:
        """JSON-safe field dict (checkpointing, bench caches)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so old
        checkpoints stay loadable as fields are added."""
        history = cls()
        for field in dataclasses.fields(cls):
            if field.name in data:
                setattr(history, field.name, data[field.name])
        return history


class PPOTrainer:
    """Clipped-surrogate PPO over a synchronous vector of environments."""

    def __init__(self, env_fns, config: PPOConfig | None = None,
                 policy: ActorCritic | None = None, vec_env=None):
        """``vec_env`` overrides the default in-process :class:`VectorEnv`
        (pass a :class:`~repro.rl.parallel.ParallelVectorEnv` for
        multiprocess rollouts); when given, ``env_fns`` is ignored."""
        self.config = config or PPOConfig()
        if vec_env is not None:
            if len(vec_env) != self.config.n_envs:
                raise TrainingError(
                    f"vec_env has {len(vec_env)} envs for "
                    f"n_envs={self.config.n_envs}")
            self.vec = vec_env
        else:
            envs: list[Env] = [fn() for fn in env_fns]
            if len(envs) != self.config.n_envs:
                # Allow passing exactly one factory and replicating it.
                if len(envs) == 1 and self.config.n_envs > 1:
                    envs = envs + [env_fns[0]()
                                   for _ in range(self.config.n_envs - 1)]
                else:
                    raise TrainingError(
                        f"{len(envs)} env factories for n_envs={self.config.n_envs}")
            self.vec = VectorEnv(envs)
        obs_dim = int(np.prod(self.vec.observation_space.shape))
        nvec = self.vec.action_space.nvec
        self.policy = policy or ActorCritic(obs_dim, nvec,
                                            hidden=self.config.hidden,
                                            seed=self.config.seed)
        params = self.policy.pi.parameters() + self.policy.vf.parameters()
        self.optimizer = Adam(params, lr=self.config.lr)
        self.rng = np.random.default_rng(self.config.seed)
        self.total_env_steps = 0
        self._last_mean_reward = float("-inf")
        self._ent_coef = self.config.ent_coef
        #: Mirror of the vector env's cumulative supervision counters
        #: (shard faults/retries/respawns/quarantines, healed env
        #: workers) — updated after every rollout so operators can see
        #: what training survived.  Deliberately kept out of
        #: :class:`TrainingHistory` (whose schema benchmark artifacts
        #: pin).
        self.fault_stats: dict[str, int] = {}

    def _absorb_vec_faults(self) -> None:
        """Mirror the vector env's cumulative fault counters, if any."""
        stats = getattr(self.vec, "fault_stats", None)
        if stats is not None:
            self.fault_stats.update(stats)
        events = getattr(self.vec, "fault_events", None)
        if events is not None:
            self.fault_stats["env_worker_faults"] = len(events)

    # -- rollout ---------------------------------------------------------------
    def collect_rollout(self, obs: np.ndarray) -> tuple[RolloutBuffer, np.ndarray, list]:
        """Collect one on-policy rollout; returns (buffer, next obs, finished-episode stats).

        Async vector envs (``is_async``, see
        :class:`~repro.rl.async_env.AsyncVectorEnv`) roll out through
        the double-buffered group schedule; everything else steps the
        classic lockstep loop.
        """
        if getattr(self.vec, "is_async", False):
            result = self._collect_rollout_async(obs)
            self._absorb_vec_faults()
            return result
        cfg = self.config
        buffer = RolloutBuffer(cfg.n_steps, cfg.n_envs,
                               int(np.prod(self.vec.observation_space.shape)),
                               len(self.vec.action_space.nvec))
        finished = []
        for _ in range(cfg.n_steps):
            actions, log_probs, values = self.policy.act(obs, self.rng)
            next_obs, rewards, dones, _, done_stats = self.vec.step(actions)
            buffer.add(obs, actions, rewards, dones, values, log_probs)
            finished.extend(done_stats)
            obs = next_obs
            self.total_env_steps += cfg.n_envs
        last_values = self.policy.value(obs)
        buffer.compute_gae(last_values, cfg.gamma, cfg.gae_lambda)
        self._absorb_vec_faults()
        return buffer, obs, finished

    def _collect_rollout_async(self, obs: np.ndarray
                               ) -> tuple[RolloutBuffer, np.ndarray, list]:
        """Double-buffered rollout over an async vector env.

        Work units are ``(step, group)`` pairs in lexicographic order;
        unit *k+1* is submitted (policy inference + dispatch) *before*
        unit *k* is collected, so while one group's batch solves in the
        shard workers the parent is already running the network for the
        next group.  Each group still sees a strictly sequential
        obs -> action -> obs chain, so the trajectories match the
        lockstep semantics group-for-group.
        """
        cfg = self.config
        vec = self.vec
        buffer = RolloutBuffer(cfg.n_steps, cfg.n_envs,
                               int(np.prod(vec.observation_space.shape)),
                               len(vec.action_space.nvec))
        finished: list = []
        slices = vec.group_slices
        group_obs = [np.array(obs[sl]) for sl in slices]
        pending: dict[int, tuple] = {}

        def submit(t: int, g: int) -> None:
            actions, log_probs, values = self.policy.act(group_obs[g],
                                                         self.rng)
            vec.submit(g, actions)
            pending[g] = (t, group_obs[g], actions, log_probs, values)

        units = [(t, g) for t in range(cfg.n_steps)
                 for g in range(len(slices))]
        submit(*units[0])
        for k, (t, g) in enumerate(units):
            nxt = units[k + 1] if k + 1 < len(units) else None
            if nxt is not None and nxt[1] != g:
                # The overlap: dispatch the next group's work before
                # waiting on this group's results.
                submit(*nxt)
            next_obs, rewards, dones, _, done_stats = vec.collect(g)
            t0, obs_g, actions, log_probs, values = pending.pop(g)
            buffer.add_slice(t0, slices[g], obs_g, actions, rewards, dones,
                             values, log_probs)
            finished.extend(done_stats)
            group_obs[g] = next_obs
            self.total_env_steps += slices[g].stop - slices[g].start
            if nxt is not None and nxt[1] == g:
                # Single-group env: no second buffer to overlap with —
                # degenerate to submit-after-collect.
                submit(*nxt)
        buffer.mark_full()
        obs = np.concatenate(group_obs)
        last_values = self.policy.value(obs)
        buffer.compute_gae(last_values, cfg.gamma, cfg.gae_lambda)
        return buffer, obs, finished

    # -- update -------------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> dict[str, float]:
        """Run the PPO epochs on one rollout; returns mean loss stats."""
        cfg = self.config
        batch = buffer.flattened()
        n = len(batch["obs"])
        advantages = batch["advantages"]
        if cfg.normalize_advantages:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses, value_losses, entropies = [], [], []
        for _ in range(cfg.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, cfg.minibatch_size):
                idx = order[start:start + cfg.minibatch_size]
                if len(idx) < 2:
                    continue
                stats = self._minibatch_step(
                    batch["obs"][idx], batch["actions"][idx],
                    batch["log_probs"][idx], advantages[idx],
                    batch["returns"][idx])
                policy_losses.append(stats[0])
                value_losses.append(stats[1])
                entropies.append(stats[2])
        return {"policy_loss": float(np.mean(policy_losses)),
                "value_loss": float(np.mean(value_losses)),
                "entropy": float(np.mean(entropies))}

    def _minibatch_step(self, obs, actions, logp_old, adv, returns):
        cfg = self.config
        b = len(obs)
        self.policy.pi.zero_grad()
        self.policy.vf.zero_grad()

        dist = self.policy.distribution(obs)
        logp = dist.log_prob(actions)
        ratio = np.exp(np.clip(logp - logp_old, -20.0, 20.0))
        unclipped = ratio * adv
        clipped = np.clip(ratio, 1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * adv
        policy_loss = -float(np.mean(np.minimum(unclipped, clipped)))
        entropy = dist.entropy()
        mean_entropy = float(np.mean(entropy))

        # d policy_loss / d logp: gradient flows only where the unclipped
        # branch is selected by the min (elsewhere the clip is active and
        # its derivative w.r.t. the ratio is zero).
        active = (unclipped <= clipped).astype(float)
        dlogp = -(active * ratio * adv) / b
        dlogits = dlogp[:, None] * dist.grad_log_prob(actions)
        # entropy bonus: loss includes -ent_coef * mean(H)
        dlogits += (-self._ent_coef / b) * dist.grad_entropy()
        self.policy.pi.backward(dlogits)

        values = self.policy.vf.forward(obs)[:, 0]
        verr = values - returns
        value_loss = float(np.mean(verr ** 2))
        dv = (cfg.vf_coef * 2.0 * verr / b)[:, None]
        self.policy.vf.backward(dv)

        clip_grad_norm(self.policy.pi.parameters()
                       + self.policy.vf.parameters(), cfg.max_grad_norm)
        self.optimizer.step()
        return policy_loss, value_loss, mean_entropy

    # -- training loop ---------------------------------------------------------------
    def train(self, max_iterations: int = 100, stop_reward: float | None = 0.0,
              stop_patience: int = 1, callback=None,
              max_env_steps: int | None = None) -> TrainingHistory:
        """Run PPO until the stop rule fires or the budget runs out.

        Parameters
        ----------
        stop_reward:
            Stop once the iteration's mean episode reward is at or above
            this value for ``stop_patience`` consecutive iterations (the
            paper stops at 0).  ``None`` disables early stopping.
        callback:
            Optional ``fn(trainer, history) -> bool``; return True to stop.
        """
        history = TrainingHistory()
        started = time.perf_counter()
        obs = self.vec.reset()
        hits = 0
        for iteration in range(1, max_iterations + 1):
            fraction = (iteration - 1) / max(max_iterations - 1, 1)
            if self.config.lr_schedule is not None:
                self.optimizer.lr = self.config.lr_schedule.value(fraction)
            if self.config.ent_schedule is not None:
                self._ent_coef = self.config.ent_schedule.value(fraction)
            buffer, obs, finished = self.collect_rollout(obs)
            stats = self.update(buffer)

            if finished:
                mean_reward = float(np.mean([s.reward for s in finished]))
                success = float(np.mean([s.success for s in finished]))
                mean_len = float(np.mean([s.length for s in finished]))
            else:
                mean_reward = self._last_mean_reward
                success, mean_len = 0.0, float(self.config.n_steps)
            self._last_mean_reward = mean_reward
            history.record(iteration, self.total_env_steps, mean_reward,
                           success, mean_len, stats["entropy"],
                           stats["policy_loss"], stats["value_loss"])
            if callback is not None and callback(self, history):
                history.stopped_early = True
                break
            if stop_reward is not None and mean_reward >= stop_reward:
                hits += 1
                if hits >= stop_patience:
                    history.stopped_early = True
                    break
            else:
                hits = 0
            if max_env_steps is not None and self.total_env_steps >= max_env_steps:
                break
        history.wall_time_s = time.perf_counter() - started
        return history
