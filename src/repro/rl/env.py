"""Environment interface and synchronous vectorisation.

The subset of the Gym API the paper's training loop needs, plus a
:class:`VectorEnv` that steps several environments per policy query (the
paper uses Ray to "run multiple environments in parallel"; in-process
batching gives the same sample efficiency — the policy network is queried
with a batch — without process overhead, since each env step is already a
fast in-process simulation here).

When a shared ``batch_simulator`` is given, every vectorised step is one
``evaluate_batch`` call — which means rollouts inherit both the stacked
engine and, with ``REPRO_SHARDS`` set, the multicore shard pool
(:mod:`repro.sim.parallel`) without any changes here.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrainingError
from repro.rl.spaces import Space


class Env:
    """One episodic environment."""

    observation_space: Space
    action_space: Space

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        raise NotImplementedError

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action``; returns (obs, reward, done, info)."""
        raise NotImplementedError


@dataclasses.dataclass
class EpisodeStats:
    """Summary of one finished episode."""

    reward: float
    length: int
    success: bool


class VectorEnv:
    """Synchronous batch of identically-spaced environments with auto-reset.

    Parameters
    ----------
    envs:
        The environments to step together.
    batch_simulator:
        Optional :class:`~repro.topologies.base.CircuitSimulator` shared
        by every env.  When given (and every env supports the
        ``begin_step``/``finish_step`` split), each :meth:`step` gathers
        all envs' sizing indices and evaluates them in one
        ``evaluate_batch`` call — the batched-engine path that makes a
        vectorised rollout step cost far less than N sequential
        simulations.
    """

    def __init__(self, envs: list[Env], batch_simulator=None):
        if not envs:
            raise TrainingError("VectorEnv needs at least one env")
        self.envs = envs
        self.observation_space = envs[0].observation_space
        self.action_space = envs[0].action_space
        self._ep_reward = np.zeros(len(envs))
        self._ep_length = np.zeros(len(envs), dtype=np.int64)
        self._batch_sim = batch_simulator
        if batch_simulator is not None and not all(
                hasattr(env, "begin_step") and hasattr(env, "finish_step")
                for env in envs):
            raise TrainingError(
                "batch_simulator requires envs with begin_step/finish_step")

    def __len__(self) -> int:
        return len(self.envs)

    def reset(self) -> np.ndarray:
        """Reset every env; returns the stacked initial observations."""
        self._ep_reward[:] = 0.0
        self._ep_length[:] = 0
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, list[dict],
                                                 list[EpisodeStats]]:
        """Step every env; finished envs are reset and their stats returned.

        The observation returned for a finished env is the *new* episode's
        first observation (standard auto-reset), while ``infos[i]`` carries
        the terminal info dict of the finished episode.
        """
        if len(actions) != len(self.envs):
            raise TrainingError(
                f"got {len(actions)} actions for {len(self.envs)} envs")
        if self._batch_sim is not None:
            return self._step_batched(actions)
        return self._step_loop([env.step(a) for env, a
                                in zip(self.envs, actions)])

    def _step_batched(self, actions: np.ndarray):
        """One stacked simulator call for every env's next sizing."""
        indices = np.stack([env.begin_step(action)
                            for env, action in zip(self.envs, actions)])
        specs = self._batch_sim.evaluate_batch(indices)
        return self._step_loop([env.finish_step(s) for env, s
                                in zip(self.envs, specs)])

    def _step_loop(self, outcomes):
        return self._finish_outcomes(0, self.envs, outcomes)

    def _finish_outcomes(self, start: int, envs, outcomes):
        """Episode accounting for ``envs`` (global indices ``start``...).

        Shared by the full-width step and the group-scoped async collect
        (:class:`~repro.rl.async_env.AsyncVectorEnv`): accumulates the
        per-env episode reward/length, emits :class:`EpisodeStats` and
        auto-resets finished envs.
        """
        obs_list, rewards, dones, infos = [], [], [], []
        finished: list[EpisodeStats] = []
        for i, (env, (obs, reward, done, info)) in enumerate(
                zip(envs, outcomes), start=start):
            self._ep_reward[i] += reward
            self._ep_length[i] += 1
            if done:
                finished.append(EpisodeStats(
                    reward=float(self._ep_reward[i]),
                    length=int(self._ep_length[i]),
                    success=bool(info.get("success", False))))
                self._ep_reward[i] = 0.0
                self._ep_length[i] = 0
                obs = env.reset()
            obs_list.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
        return (np.stack(obs_list), np.asarray(rewards, dtype=float),
                np.asarray(dones, dtype=bool), infos, finished)
