"""Environment interface and synchronous vectorisation.

The subset of the Gym API the paper's training loop needs, plus a
:class:`VectorEnv` that steps several environments per policy query (the
paper uses Ray to "run multiple environments in parallel"; in-process
batching gives the same sample efficiency — the policy network is queried
with a batch — without process overhead, since each env step is already a
fast in-process simulation here).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrainingError
from repro.rl.spaces import Space


class Env:
    """One episodic environment."""

    observation_space: Space
    action_space: Space

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        raise NotImplementedError

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action``; returns (obs, reward, done, info)."""
        raise NotImplementedError


@dataclasses.dataclass
class EpisodeStats:
    """Summary of one finished episode."""

    reward: float
    length: int
    success: bool


class VectorEnv:
    """Synchronous batch of identically-spaced environments with auto-reset."""

    def __init__(self, envs: list[Env]):
        if not envs:
            raise TrainingError("VectorEnv needs at least one env")
        self.envs = envs
        self.observation_space = envs[0].observation_space
        self.action_space = envs[0].action_space
        self._ep_reward = np.zeros(len(envs))
        self._ep_length = np.zeros(len(envs), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.envs)

    def reset(self) -> np.ndarray:
        """Reset every env; returns the stacked initial observations."""
        self._ep_reward[:] = 0.0
        self._ep_length[:] = 0
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, list[dict],
                                                 list[EpisodeStats]]:
        """Step every env; finished envs are reset and their stats returned.

        The observation returned for a finished env is the *new* episode's
        first observation (standard auto-reset), while ``infos[i]`` carries
        the terminal info dict of the finished episode.
        """
        if len(actions) != len(self.envs):
            raise TrainingError(
                f"got {len(actions)} actions for {len(self.envs)} envs")
        obs_list, rewards, dones, infos = [], [], [], []
        finished: list[EpisodeStats] = []
        for i, (env, action) in enumerate(zip(self.envs, actions)):
            obs, reward, done, info = env.step(action)
            self._ep_reward[i] += reward
            self._ep_length[i] += 1
            if done:
                finished.append(EpisodeStats(
                    reward=float(self._ep_reward[i]),
                    length=int(self._ep_length[i]),
                    success=bool(info.get("success", False))))
                self._ep_reward[i] = 0.0
                self._ep_length[i] = 0
                obs = env.reset()
            obs_list.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
        return (np.stack(obs_list), np.asarray(rewards, dtype=float),
                np.asarray(dones, dtype=bool), infos, finished)
