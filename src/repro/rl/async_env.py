"""Asynchronous, double-buffered vectorised rollouts (knob ``REPRO_ASYNC``).

The lockstep training loop alternates "policy step -> wait for
simulation -> policy step": the shard workers idle while the agent
thinks and the agent idles while the shards solve.  Within one
environment chain that dependency is real — an action needs the previous
observation — so the pipeline overlaps *across* environments instead:
:class:`AsyncVectorEnv` splits its environments into contiguous groups
(two by default — classic double buffering) and lets the trainer submit
group *t*'s simulations before collecting group *t-1*'s, so policy
inference and reward bookkeeping for one group run while the other
group's batch is solving in the :class:`~repro.sim.parallel.ShardPool`
workers.

The simulation side is the non-blocking half-pair grown in this PR:
``CircuitSimulator.submit_batch`` runs the cache front-end and fires the
distinct misses into the shard pool's shared-memory plumbing without
waiting; ``collect_batch`` reaps them.  With ``REPRO_SHARDS`` <= 1 there
are no workers to overlap with — submit simply defers the solve to
collect time, keeping the API uniform (and the trajectories correct)
with zero processes spawned.

Semantics versus the lockstep :class:`~repro.rl.env.VectorEnv`:

* ``REPRO_ASYNC=0`` (default) — the async classes are never constructed;
  training runs the exact lockstep code path, step-for-step and bitwise
  identical to the previous release under a fixed seed.
* ``REPRO_ASYNC=1`` — each policy query sees one *group* instead of the
  full width, so the action-sampling RNG stream interleaves differently
  and the batched solver sees group-sized stacks (straggler designs that
  enter the gmin/source fallback chains can differ at solver tolerance).
  Trajectories are equivalent, reproducible run-to-run under a fixed
  seed, but not bitwise equal to the lockstep schedule; the cache
  front-end also dedupes per group rather than across the full width.

Failure contract: the shard pool is supervised
(:mod:`repro.sim.parallel`), so a worker dying mid-batch is respawned
and its shard re-run bitwise-identically — :meth:`AsyncVectorEnv.collect`
returns normal results and training never notices.  Designs whose solve
keeps crashing are quarantined with pessimistic failure measurements
(a heavily penalised but ordinary transition).  Each collect folds the
simulator's :class:`~repro.sim.faults.BatchReport` into the env's
cumulative :attr:`AsyncVectorEnv.fault_stats`; only unrecoverable
infrastructure failures still raise :class:`~repro.errors.TrainingError`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TrainingError
from repro.rl.env import Env, VectorEnv

#: Environment variable enabling the async rollout pipeline (default off).
ASYNC_ENV = "REPRO_ASYNC"

#: Values of :data:`ASYNC_ENV` read as "off".
_FALSE = ("", "0", "false", "off", "no")


def async_enabled() -> bool:
    """Whether ``REPRO_ASYNC`` asks for the async rollout pipeline."""
    return os.environ.get(ASYNC_ENV, "").strip().lower() not in _FALSE


class AsyncVectorEnv(VectorEnv):
    """Double-buffered batch of environments over one shared simulator.

    A drop-in :class:`~repro.rl.env.VectorEnv` (``reset``/``step`` keep
    their synchronous contracts) that additionally exposes the group
    pipeline: :meth:`submit` dispatches one group's simulations without
    waiting and :meth:`collect` reaps them, with the same auto-reset
    semantics and :class:`~repro.rl.env.EpisodeStats` per finished
    episode.  Groups must be collected in submission order (the shard
    pool's reply queues are FIFO).

    Parameters
    ----------
    envs:
        The environments to step together; all must support the
        ``begin_step``/``finish_step`` split.
    batch_simulator:
        The shared :class:`~repro.topologies.base.CircuitSimulator`
        (mandatory here — the pipeline is built on its
        ``submit_batch``/``collect_batch`` halves).
    n_groups:
        Pipeline depth: 2 (default) is classic double buffering; capped
        at ``len(envs)``.
    """

    #: Trainer dispatch hook (``PPOTrainer`` checks this attribute).
    is_async = True

    def __init__(self, envs: list[Env], batch_simulator, n_groups: int = 2):
        if batch_simulator is None:
            raise TrainingError("AsyncVectorEnv needs a shared batch "
                                "simulator (the pipeline overlaps its "
                                "submit/collect halves)")
        if not getattr(batch_simulator, "supports_batch_pipeline", False):
            raise TrainingError(
                f"{type(batch_simulator).__name__} has no batched engine "
                "for the async pipeline")
        if n_groups < 1:
            raise TrainingError("n_groups must be >= 1")
        super().__init__(envs, batch_simulator=batch_simulator)
        n_groups = min(n_groups, len(envs))
        bounds = np.linspace(0, len(envs), n_groups + 1).astype(int)
        self._slices = [slice(int(lo), int(hi))
                        for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
        self._tickets = [None] * len(self._slices)
        self._order: list[int] = []   # groups in submission order (FIFO)
        #: Cumulative supervision counters over this env's lifetime:
        #: faults seen, work retries, worker respawns, designs
        #: quarantined (folded in from each batch's
        #: :class:`~repro.sim.faults.BatchReport`).
        self.fault_stats = {"faults": 0, "retries": 0, "respawns": 0,
                            "quarantined": 0}
        self._seen_report = None

    def _absorb_report(self) -> None:
        """Fold the simulator's last batch report into fault_stats.

        Guarded by report identity: a fully-cached step publishes no
        fresh report, and re-reading the previous one must not
        double-count its faults.
        """
        report = getattr(self._batch_sim, "last_batch_report", None)
        if report is not None and report is not self._seen_report:
            self._seen_report = report
            self.fault_stats["faults"] += len(report.faults)
            self.fault_stats["retries"] += report.retries
            self.fault_stats["respawns"] += report.respawns
            self.fault_stats["quarantined"] += report.n_quarantined

    @property
    def n_groups(self) -> int:
        """Number of pipeline groups."""
        return len(self._slices)

    @property
    def group_slices(self) -> list[slice]:
        """Contiguous env-index slice of each group, in group order."""
        return list(self._slices)

    def submit(self, group: int, actions: np.ndarray) -> None:
        """Dispatch one group's next simulations without waiting.

        Applies ``actions`` to the group's envs (``begin_step``) and
        submits the stacked sizing indices to the shared simulator; the
        solve proceeds in the shard workers (if any) while the caller
        does other work.  One batch per group may be in flight.
        """
        sl = self._check_group(group)
        if self._tickets[group] is not None:
            raise TrainingError(f"group {group} already has work in flight")
        envs = self.envs[sl]
        if len(actions) != len(envs):
            raise TrainingError(
                f"got {len(actions)} actions for {len(envs)} envs "
                f"in group {group}")
        indices = np.stack([env.begin_step(action)
                            for env, action in zip(envs, actions)])
        self._tickets[group] = self._batch_sim.submit_batch(indices)
        self._order.append(group)

    def collect(self, group: int):
        """Wait for a submitted group; returns its step results.

        Same tuple contract as ``VectorEnv.step`` restricted to the
        group's envs: ``(obs, rewards, dones, infos, finished)`` with
        auto-reset of finished episodes.
        """
        sl = self._check_group(group)
        ticket = self._tickets[group]
        if ticket is None:
            raise TrainingError(f"collect before submit for group {group}")
        if self._order and self._order[0] != group:
            raise TrainingError(
                f"groups must be collected in submission order "
                f"(next is group {self._order[0]}, got {group})")
        self._tickets[group] = None
        self._order.pop(0)
        specs = self._batch_sim.collect_batch(ticket)
        self._absorb_report()
        envs = self.envs[sl]
        outcomes = [env.finish_step(s) for env, s in zip(envs, specs)]
        return self._finish_outcomes(sl.start, envs, outcomes)

    def reset(self) -> np.ndarray:
        """Reset every env (draining any in-flight group first)."""
        self.drain()
        return super().reset()

    def step(self, actions: np.ndarray):
        """Synchronous full-width step (the lockstep fallback path)."""
        if any(ticket is not None for ticket in self._tickets):
            raise TrainingError("step() with groups in flight; collect "
                                "or drain them first")
        result = super().step(actions)
        self._absorb_report()
        return result

    def drain(self) -> None:
        """Collect and discard every in-flight group (submission order).

        Collect errors are swallowed: drain runs from ``reset``/``close``
        cleanup paths, often *because* a worker already died — the
        original diagnostic must not be masked by the discard (same
        policy as ``iter_batch_specs``'s drain)."""
        while self._order:
            group = self._order.pop(0)
            ticket = self._tickets[group]
            self._tickets[group] = None
            if ticket is not None:
                try:
                    self._batch_sim.collect_batch(ticket)
                except Exception:
                    pass

    def close(self) -> None:
        """Drain in-flight work and shut down the simulator's shard pool."""
        try:
            self.drain()
        finally:
            self._batch_sim.close_shard_pool()

    def _check_group(self, group: int) -> slice:
        """Validate a group index and return its env slice."""
        if not 0 <= group < len(self._slices):
            raise TrainingError(
                f"group {group} out of range (n_groups={self.n_groups})")
        return self._slices[group]
