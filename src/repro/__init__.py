"""AutoCkt reproduction: deep reinforcement learning of analog circuit designs.

Reproduces Settaluri et al., "AutoCkt: Deep Reinforcement Learning of
Analog Circuit Designs" (DATE 2020) as a self-contained Python library:

* a modified-nodal-analysis circuit simulator (``repro.sim``) with smooth
  MOSFET models and two technology cards (``repro.circuits``),
* the paper's three circuit topologies (``repro.topologies``),
* a pseudo-layout + parasitic-extraction + LVS + PVT flow (``repro.pex``),
* a numpy PPO stack (``repro.rl``),
* the AutoCkt framework itself (``repro.core``) and its baselines
  (``repro.baselines``),
* analysis tooling — statistics, ASCII plotting, sensitivities, Pareto
  fronts, mismatch Monte Carlo (``repro.analysis``, ``repro.pex``).

Quickstart::

    from repro import AutoCkt, AutoCktConfig
    from repro.topologies import TwoStageOpAmp

    agent = AutoCkt.for_topology(TwoStageOpAmp)
    agent.train()
    report = agent.deploy(100)
    print(report.summary())
"""

from repro.core import (
    AutoCkt,
    AutoCktConfig,
    DeploymentReport,
    EvalCallback,
    ParetoFront,
    SizingEnv,
    SizingEnvConfig,
    Spec,
    SpecKind,
    SpecSpace,
    TargetSampler,
    compute_reward,
    deploy_agent,
    pareto_front,
    sample_front,
    transfer_deploy,
)

__version__ = "1.0.0"

__all__ = [
    "AutoCkt",
    "AutoCktConfig",
    "DeploymentReport",
    "EvalCallback",
    "ParetoFront",
    "SizingEnv",
    "SizingEnvConfig",
    "Spec",
    "SpecKind",
    "SpecSpace",
    "TargetSampler",
    "__version__",
    "compute_reward",
    "deploy_agent",
    "pareto_front",
    "sample_front",
    "transfer_deploy",
]
