"""Cross-entropy-method baseline.

Population search with a *distribution* instead of a population: sample
sizings from an independent Gaussian in grid-index space, keep the elite
fraction, refit the Gaussian to the elites (with smoothing and a variance
floor to avoid premature collapse), repeat.  CEM is the standard
derivative-free strong-man for RL comparisons; like the GA it restarts
per target, so its sample efficiency is directly comparable to the
paper's table rows.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.common import (
    BudgetExhausted,
    GoalReached,
    SearchResult,
    TargetObjective,
)
from repro.core.reward import RewardSpec
from repro.errors import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class CEMConfig:
    """Cross-entropy-method hyperparameters."""

    population: int = 32
    elite_fraction: float = 0.25
    smoothing: float = 0.7        # new = s*fit + (1-s)*old
    min_std_steps: float = 0.75   # variance floor, in grid steps
    max_simulations: int = 4000

    def __post_init__(self):
        if self.population < 4:
            raise TrainingError("CEM population must be >= 4")
        if not 0.0 < self.elite_fraction <= 0.5:
            raise TrainingError("elite_fraction must be in (0, 0.5]")
        if not 0.0 < self.smoothing <= 1.0:
            raise TrainingError("smoothing must be in (0, 1]")
        if self.min_std_steps <= 0.0:
            raise TrainingError("min_std_steps must be positive")

    @property
    def n_elite(self) -> int:
        return max(2, int(round(self.population * self.elite_fraction)))


class CrossEntropyMethod:
    """Per-target CEM over a sizing grid (Gaussian in index space)."""

    def __init__(self, simulator: "CircuitSimulator",
                 config: CEMConfig | None = None,
                 reward: RewardSpec | None = None, seed: int = 0):
        self.simulator = simulator
        self.config = config or CEMConfig()
        self.reward = reward
        self.rng = np.random.default_rng(seed)

    def solve(self, target: dict[str, float],
              max_simulations: int | None = None) -> SearchResult:
        """Iterate sampling/refitting until success or budget exhaustion."""
        cfg = self.config
        space = self.simulator.parameter_space
        objective = TargetObjective(self.simulator, target,
                                    max_simulations or cfg.max_simulations,
                                    reward=self.reward)
        counts = space.counts.astype(float)
        mean = space.center.astype(float)
        std = counts / 4.0  # initial spread covers the grid broadly
        try:
            while True:
                samples = self.rng.normal(mean, std,
                                          size=(cfg.population, len(space)))
                samples = np.clip(np.round(samples), 0,
                                  counts - 1).astype(np.int64)
                # One stacked simulator call per generation.
                fitness = objective.evaluate_population(samples)
                elite_idx = np.argsort(fitness)[::-1][:cfg.n_elite]
                elites = samples[elite_idx].astype(float)
                s = cfg.smoothing
                mean = s * elites.mean(axis=0) + (1.0 - s) * mean
                std = (s * elites.std(axis=0) + (1.0 - s) * std)
                std = np.maximum(std, cfg.min_std_steps)
        except (GoalReached, BudgetExhausted):
            return objective.result()
