"""BagNet-style GA with a deep-learning discriminator (paper reference [7]).

Hakhamaneshi et al.'s BagNet "accelerates the genetic algorithm
optimization process by having a deep neural network discriminate against
weaker generated samples": candidate offspring are screened by a network
trained online to predict whether a candidate will beat the current
population's median fitness, and only promising candidates are sent to the
(expensive) simulator.  Sample efficiency counts only real simulations.

This reproduction keeps the mechanism faithful at the scale of our
substrate: an elitist integer GA, an MLP discriminator on normalised
parameter vectors trained on simulate-and-compare outcomes, and an
oversample-then-screen offspring loop.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.genetic import GAConfig, GAResult
from repro.core.reward import RewardSpec, compute_reward
from repro.rl.nn import MLP, Adam

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class BagNetConfig:
    """BagNet hyperparameters on top of the base GA settings."""

    ga: GAConfig = dataclasses.field(default_factory=GAConfig)
    oversample: int = 4           # candidates generated per simulated slot
    hidden: tuple[int, ...] = (40, 40)
    train_epochs: int = 30
    lr: float = 1e-3
    warmup_generations: int = 1   # generations before the screen activates


class BagNetOptimizer:
    """GA + online discriminator screening."""

    def __init__(self, simulator: "CircuitSimulator",
                 config: BagNetConfig | None = None,
                 reward: RewardSpec | None = None, seed: int = 0):
        self.simulator = simulator
        self.config = config or BagNetConfig()
        self.reward = reward or RewardSpec()
        self.rng = np.random.default_rng(seed)
        n = len(simulator.parameter_space)
        net_rng = np.random.default_rng(seed + 1)
        self._net = MLP([n, *self.config.hidden, 1], net_rng, out_gain=0.1)
        self._opt = Adam(self._net.parameters(), lr=self.config.lr)
        self._features: list[np.ndarray] = []
        self._fitnesses: list[float] = []

    # -- discriminator -------------------------------------------------------
    def _featurize(self, indices: np.ndarray) -> np.ndarray:
        return self.simulator.parameter_space.normalize(indices)

    def _train_discriminator(self) -> None:
        if len(self._features) < 8:
            return
        x = np.stack(self._features)
        fits = np.array(self._fitnesses)
        labels = (fits >= np.median(fits)).astype(float)
        for _ in range(self.config.train_epochs):
            self._net.zero_grad()
            logits = self._net.forward(x)[:, 0]
            probs = 1.0 / (1.0 + np.exp(-logits))
            grad = ((probs - labels) / len(labels))[:, None]
            self._net.backward(grad)
            self._opt.step()

    def _score(self, candidates: list[np.ndarray]) -> np.ndarray:
        x = np.stack([self._featurize(c) for c in candidates])
        return self._net.forward(x)[:, 0]

    # -- GA with screening ----------------------------------------------------
    def solve(self, target: dict[str, float],
              max_simulations: int | None = None) -> GAResult:
        """Search until a sizing meets ``target`` or the budget runs out."""
        cfg = self.config.ga
        space = self.simulator.parameter_space
        budget = max_simulations or cfg.max_simulations

        population: list[np.ndarray] = [space.sample(self.rng)
                                        for _ in range(cfg.population)]
        fitness = np.empty(cfg.population)
        sims = 0
        generations = 0
        best_fit, best_x, best_specs = -np.inf, population[0], {}

        def evaluate(genome: np.ndarray):
            nonlocal sims, best_fit, best_x, best_specs
            specs = self.simulator.evaluate(genome)
            breakdown = compute_reward(specs, target,
                                       self.simulator.spec_space, self.reward)
            sims += 1
            self._features.append(self._featurize(genome))
            self._fitnesses.append(breakdown.reward)
            if breakdown.reward > best_fit:
                best_fit, best_x, best_specs = breakdown.reward, genome.copy(), specs
            return breakdown.reward, breakdown.goal_reached, specs

        for i, genome in enumerate(population):
            fit, ok, specs = evaluate(genome)
            fitness[i] = fit
            if ok:
                return GAResult(True, sims, generations, fit, genome.copy(), specs)
            if sims >= budget:
                return GAResult(False, sims, generations, best_fit, best_x,
                                best_specs)

        while sims < budget:
            generations += 1
            self._train_discriminator()
            order = np.argsort(fitness)[::-1]
            elites = [population[i].copy() for i in order[:cfg.elite]]
            elite_fitness = fitness[order[:cfg.elite]].copy()

            n_slots = cfg.population - cfg.elite
            candidates = [self._offspring(population, fitness)
                          for _ in range(n_slots * self.config.oversample)]
            if generations > self.config.warmup_generations:
                scores = self._score(candidates)
                chosen = [candidates[i]
                          for i in np.argsort(scores)[::-1][:n_slots]]
            else:
                chosen = candidates[:n_slots]

            population = elites + chosen
            fitness = np.empty(cfg.population)
            fitness[:cfg.elite] = elite_fitness
            for i in range(cfg.elite, cfg.population):
                fit, ok, specs = evaluate(population[i])
                fitness[i] = fit
                if ok:
                    return GAResult(True, sims, generations, fit,
                                    population[i].copy(), specs)
                if sims >= budget:
                    break
        return GAResult(False, sims, generations, best_fit, best_x, best_specs)

    def _offspring(self, population: list[np.ndarray],
                   fitness: np.ndarray) -> np.ndarray:
        cfg = self.config.ga
        space = self.simulator.parameter_space

        def pick() -> np.ndarray:
            contenders = self.rng.integers(0, len(fitness), size=cfg.tournament)
            return population[int(contenders[np.argmax(fitness[contenders])])]

        mother, father = pick(), pick()
        if self.rng.random() < cfg.crossover_rate:
            mask = self.rng.random(len(mother)) < 0.5
            child = np.where(mask, mother, father)
        else:
            child = mother.copy()
        for i in range(len(child)):
            if self.rng.random() < cfg.mutation_rate:
                child[i] += self.rng.integers(-cfg.mutation_span,
                                              cfg.mutation_span + 1)
        return space.clip(child)
