"""Simulated-annealing baseline.

A classic single-point stochastic optimiser over the sizing grid:
propose a neighbour by stepping a random subset of parameters a few grid
points, accept improvements always and regressions with the Metropolis
probability ``exp(delta / T)``, cool geometrically.  Like the paper's GA
it must restart from scratch for every new target — the weakness the RL
agent fixes — so its sample efficiency slots directly into the paper's
comparison tables (the ablation bench runs it alongside the GA, CEM and
random search).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.common import (
    BudgetExhausted,
    GoalReached,
    SearchResult,
    TargetObjective,
)
from repro.core.reward import RewardSpec
from repro.errors import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class AnnealingConfig:
    """Simulated-annealing hyperparameters.

    ``t_start`` should be on the scale of typical reward differences
    (Eq. (1) rewards live in roughly [-2, 0] before the goal bonus, so the
    default accepts most moves early on); ``t_end`` sets the final
    near-greedy behaviour.  Temperature decays geometrically over
    ``cooling_steps`` proposals and is then held at ``t_end``.
    """

    t_start: float = 0.5
    t_end: float = 0.01
    cooling_steps: int = 500
    mutation_span: int = 4      # max +/- grid steps per moved parameter
    move_fraction: float = 0.4  # expected fraction of parameters moved
    restart_after: int = 150    # proposals without improvement -> restart
    max_simulations: int = 4000

    def __post_init__(self):
        if self.t_start <= 0.0 or self.t_end <= 0.0:
            raise TrainingError("temperatures must be positive")
        if self.t_end > self.t_start:
            raise TrainingError("t_end must be <= t_start")
        if not 0.0 < self.move_fraction <= 1.0:
            raise TrainingError("move_fraction must be in (0, 1]")
        if self.cooling_steps < 1 or self.restart_after < 1:
            raise TrainingError("cooling_steps/restart_after must be >= 1")


class SimulatedAnnealing:
    """Per-target simulated annealing over a sizing grid."""

    def __init__(self, simulator: "CircuitSimulator",
                 config: AnnealingConfig | None = None,
                 reward: RewardSpec | None = None, seed: int = 0):
        self.simulator = simulator
        self.config = config or AnnealingConfig()
        self.reward = reward
        self.rng = np.random.default_rng(seed)

    def _temperature(self, step: int) -> float:
        cfg = self.config
        if step >= cfg.cooling_steps:
            return cfg.t_end
        ratio = cfg.t_end / cfg.t_start
        return cfg.t_start * ratio ** (step / cfg.cooling_steps)

    def _neighbour(self, indices: np.ndarray) -> np.ndarray:
        cfg = self.config
        space = self.simulator.parameter_space
        out = indices.copy()
        moved = self.rng.random(len(out)) < cfg.move_fraction
        if not moved.any():
            moved[self.rng.integers(len(out))] = True
        steps = self.rng.integers(-cfg.mutation_span, cfg.mutation_span + 1,
                                  size=len(out))
        steps[steps == 0] = 1
        out[moved] += steps[moved]
        return space.clip(out)

    def solve(self, target: dict[str, float],
              max_simulations: int | None = None) -> SearchResult:
        """Anneal until a sizing meets ``target`` or the budget runs out."""
        cfg = self.config
        space = self.simulator.parameter_space
        objective = TargetObjective(self.simulator, target,
                                    max_simulations or cfg.max_simulations,
                                    reward=self.reward)
        try:
            current = space.center.copy()
            current_fit = objective(current)
            stale = 0
            step = 0
            while True:
                candidate = self._neighbour(current)
                fit = objective(candidate)
                step += 1
                delta = fit - current_fit
                t = self._temperature(step)
                if delta >= 0.0 or self.rng.random() < np.exp(delta / t):
                    current, current_fit = candidate, fit
                stale = 0 if delta > 0.0 else stale + 1
                if stale >= cfg.restart_after:
                    current = space.sample(self.rng)
                    current_fit = objective(current)
                    stale = 0
        except (GoalReached, BudgetExhausted):
            return objective.result()
