"""Vanilla genetic algorithm baseline.

The paper's GA rows: for every target specification the GA is restarted
from scratch (its central weakness — "they require re-starting the
algorithm from scratch if any change is made to the goal"), evolving
integer sizing vectors with tournament selection, uniform crossover and
per-gene +/- step mutation.  Fitness is the same Eq. (1) hard-constraint
reward the RL agent optimises, and sample efficiency is the number of
simulator calls until the first individual meets the target.  The paper
reports "the best result obtained when sweeping initial population sizes";
:meth:`GeneticOptimizer.solve_with_population_sweep` does exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.reward import RewardSpec, compute_reward
from repro.errors import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class GAConfig:
    """Genetic-algorithm hyperparameters."""

    population: int = 40
    tournament: int = 3
    crossover_rate: float = 0.7
    mutation_rate: float = 0.15
    mutation_span: int = 4          # max +/- grid steps per mutated gene
    elite: int = 2
    max_simulations: int = 4000

    def __post_init__(self):
        if self.population < 4:
            raise TrainingError("GA population must be >= 4")
        if self.elite >= self.population:
            raise TrainingError("elite must be smaller than the population")


@dataclasses.dataclass
class GAResult:
    """Outcome of one GA run against one target."""

    success: bool
    simulations: int
    generations: int
    best_fitness: float
    best_indices: np.ndarray
    best_specs: dict[str, float]


class GeneticOptimizer:
    """Per-target GA over a sizing grid."""

    def __init__(self, simulator: "CircuitSimulator",
                 config: GAConfig | None = None,
                 reward: RewardSpec | None = None, seed: int = 0):
        self.simulator = simulator
        self.config = config or GAConfig()
        self.reward = reward or RewardSpec()
        self.rng = np.random.default_rng(seed)

    # -- fitness ---------------------------------------------------------------
    def _fitness(self, indices: np.ndarray,
                 target: dict[str, float]) -> tuple[float, bool, dict[str, float]]:
        specs = self.simulator.evaluate(indices)
        breakdown = compute_reward(specs, target, self.simulator.spec_space,
                                   self.reward)
        return breakdown.reward, breakdown.goal_reached, specs

    def _fitness_many(self, genomes: list[np.ndarray], target: dict[str, float],
                      budget_left: int):
        """Batched fitness of several genomes (one stacked simulation;
        chunk-pipelined through the shard workers under ``REPRO_ASYNC``
        via :func:`~repro.baselines.common.iter_batch_specs`).

        Only the first ``budget_left`` genomes are evaluated; returns a
        list of ``(reward, goal_reached, specs)`` triples in order.
        """
        from repro.baselines.common import iter_batch_specs

        genomes = genomes[:max(budget_left, 0)]
        if not genomes:
            return []
        out = []
        for _offset, specs_chunk in iter_batch_specs(self.simulator,
                                                     np.stack(genomes)):
            for specs in specs_chunk:
                breakdown = compute_reward(specs, target,
                                           self.simulator.spec_space,
                                           self.reward)
                out.append((breakdown.reward, breakdown.goal_reached, specs))
        return out

    # -- GA operators ------------------------------------------------------------
    def _tournament_pick(self, fitness: np.ndarray) -> int:
        contenders = self.rng.integers(0, len(fitness), size=self.config.tournament)
        return int(contenders[np.argmax(fitness[contenders])])

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.rng.random() >= self.config.crossover_rate:
            return a.copy()
        mask = self.rng.random(len(a)) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        cfg = self.config
        out = genome.copy()
        for i in range(len(out)):
            if self.rng.random() < cfg.mutation_rate:
                out[i] += self.rng.integers(-cfg.mutation_span,
                                            cfg.mutation_span + 1)
        return self.simulator.parameter_space.clip(out)

    # -- driver -----------------------------------------------------------------
    def solve(self, target: dict[str, float],
              max_simulations: int | None = None) -> GAResult:
        """Evolve until an individual meets ``target`` or the budget runs out."""
        cfg = self.config
        space = self.simulator.parameter_space
        budget = max_simulations or cfg.max_simulations

        population = [space.sample(self.rng) for _ in range(cfg.population)]
        sims = 0
        generations = 0
        best_fit = -np.inf
        best_x = population[0]
        best_specs: dict[str, float] = {}

        fitness = np.empty(cfg.population)
        evals = self._fitness_many(population, target, budget - sims)
        sims += len(evals)  # the whole batch is simulated (and charged)
        for i, (fit, ok, specs) in enumerate(evals):
            fitness[i] = fit
            genome = population[i]
            if fit > best_fit:
                best_fit, best_x, best_specs = fit, genome.copy(), specs
            if ok:
                return GAResult(True, sims, generations, fit, genome.copy(), specs)
        if len(evals) < cfg.population:
            # Budget cut the initial evaluation short.
            return GAResult(False, sims, generations, best_fit, best_x, best_specs)

        while sims < budget:
            generations += 1
            order = np.argsort(fitness)[::-1]
            next_pop = [population[i].copy() for i in order[:cfg.elite]]
            elite_fitness = fitness[order[:cfg.elite]].copy()
            while len(next_pop) < cfg.population:
                mother = population[self._tournament_pick(fitness)]
                father = population[self._tournament_pick(fitness)]
                child = self._mutate(self._crossover(mother, father))
                next_pop.append(child)
            population = next_pop
            fitness = np.empty(cfg.population)
            fitness[:cfg.elite] = elite_fitness  # elites keep their fitness
            offspring = population[cfg.elite:]
            evals = self._fitness_many(offspring, target, budget - sims)
            sims += len(evals)
            for j, (fit, ok, specs) in enumerate(evals):
                i = cfg.elite + j
                fitness[i] = fit
                if fit > best_fit:
                    best_fit, best_x = fit, population[i].copy()
                    best_specs = specs
                if ok:
                    return GAResult(True, sims, generations, fit,
                                    population[i].copy(), specs)
            if len(evals) < len(offspring):
                break
        return GAResult(False, sims, generations, best_fit, best_x, best_specs)

    def solve_with_population_sweep(self, target: dict[str, float],
                                    populations=(20, 40, 80),
                                    max_simulations: int | None = None) -> GAResult:
        """The paper's protocol: sweep initial population sizes and keep the
        best (fewest simulations among successful runs)."""
        best: GAResult | None = None
        for pop in populations:
            config = dataclasses.replace(self.config, population=pop)
            runner = GeneticOptimizer(self.simulator, config, self.reward,
                                      seed=int(self.rng.integers(2**31)))
            result = runner.solve(target, max_simulations=max_simulations)
            if best is None or _better(result, best):
                best = result
        assert best is not None
        return best


def _better(a: GAResult, b: GAResult) -> bool:
    if a.success != b.success:
        return a.success
    if a.success:
        return a.simulations < b.simulations
    return a.best_fitness > b.best_fitness
