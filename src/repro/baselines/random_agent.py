"""Random RL agent baseline (paper Tables II & III).

"Note that the comparison also includes a random RL agent taking steps in
the environment, to illustrate design space complexity."  An untrained
policy network — i.e. near-uniform random increment/decrement/keep actions
from the grid centre — is deployed through the exact same machinery as the
trained agent, so the 38/1000 and 4/500 rows are apples-to-apples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.agent import fresh_random_policy
from repro.core.deploy import DeploymentReport, deploy_agent
from repro.core.reward import RewardSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


def random_agent_deployment(simulator: "CircuitSimulator",
                            targets: list[dict[str, float]], *,
                            max_steps: int = 30,
                            reward: RewardSpec | None = None,
                            seed: int = 0) -> DeploymentReport:
    """Deploy an untrained (randomly-initialised) policy on ``targets``."""
    policy = fresh_random_policy(simulator, seed=seed)
    return deploy_agent(policy, simulator, targets, max_steps=max_steps,
                        reward=reward, seed=seed)
