"""Comparison algorithms from the paper's tables.

* :mod:`repro.baselines.genetic` — the "vanilla genetic algorithm" rows
  (sample efficiency measured per target, best over a population sweep);
* :mod:`repro.baselines.random_agent` — the "Random RL Agent" rows;
* :mod:`repro.baselines.bagnet` — the GA + deep-discriminator method of
  reference [7] (BagNet), the prior state of the art in Table IV.

Beyond the paper's own comparators, the package carries the standard
derivative-free strong-men for the ablation bench:

* :mod:`repro.baselines.annealing` — simulated annealing;
* :mod:`repro.baselines.cem` — cross-entropy method;
* :mod:`repro.baselines.random_search` — uniform sampling, doubling as
  the design-space difficulty calibrator.
"""

from repro.baselines.annealing import AnnealingConfig, SimulatedAnnealing
from repro.baselines.bagnet import BagNetConfig, BagNetOptimizer
from repro.baselines.cem import CEMConfig, CrossEntropyMethod
from repro.baselines.common import SearchResult, TargetObjective, iter_batch_specs
from repro.baselines.genetic import GAConfig, GAResult, GeneticOptimizer
from repro.baselines.random_agent import random_agent_deployment
from repro.baselines.random_search import RandomSearch, feasible_volume_fraction

__all__ = [
    "AnnealingConfig",
    "BagNetConfig",
    "BagNetOptimizer",
    "CEMConfig",
    "CrossEntropyMethod",
    "GAConfig",
    "GAResult",
    "GeneticOptimizer",
    "RandomSearch",
    "SearchResult",
    "SimulatedAnnealing",
    "TargetObjective",
    "feasible_volume_fraction",
    "iter_batch_specs",
    "random_agent_deployment",
]
