"""Shared machinery for the per-target search baselines.

Every baseline in this package answers the same question the paper's
tables ask: *given one target specification, how many simulations does the
algorithm need before some sizing meets it?*  :class:`TargetObjective`
wraps a simulator + target + Eq. (1) reward into a budget-enforcing
fitness function so each algorithm only implements its search logic, and
:class:`SearchResult` is the common outcome record.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.reward import RewardSpec, compute_reward
from repro.errors import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class SearchResult:
    """Outcome of one per-target search run.

    ``simulations`` is the paper's sample-efficiency metric — the number
    of simulator evaluations consumed before success (or until the budget
    ran out).
    """

    success: bool
    simulations: int
    best_fitness: float
    best_indices: np.ndarray
    best_specs: dict[str, float]


class BudgetExhausted(Exception):
    """Internal control flow: the simulation budget ran out mid-search."""


class GoalReached(Exception):
    """Internal control flow: an evaluation met the target."""


def iter_batch_specs(simulator: "CircuitSimulator", stacked: np.ndarray,
                     min_chunk: int = 8):
    """Yield ``(offset, specs_chunk)`` for a stacked generation.

    The population baselines' async on-ramp (knob ``REPRO_ASYNC``): the
    generation is split into a few contiguous chunks which are *all*
    submitted to the simulator's non-blocking ``submit_batch`` up front —
    they queue FIFO in the shard workers — and collected one at a time,
    so the caller's per-individual reward bookkeeping for chunk *k*
    overlaps the workers solving chunk *k+1*.  With the knob off (or no
    ``submit_batch``, or a tiny generation) the whole generation comes
    back as a single ``evaluate_batch`` chunk — the exact historical
    code path.

    Note the chunked decomposition dedupes the cache per chunk rather
    than across the generation, and stragglers entering solver fallback
    chains see chunk-sized stacks — generation results can differ from
    the lockstep path at solver tolerance.  If the consumer abandons the
    generator mid-generation (e.g. the target was met), the remaining
    chunks are drained on close so the simulator is left clean.
    """
    from repro.rl.async_env import async_enabled

    B = len(stacked)
    if (not async_enabled()
            or not getattr(simulator, "supports_batch_pipeline", False)
            or B < 2 * min_chunk):
        yield 0, simulator.evaluate_batch(stacked)
        return
    n_chunks = min(4, B // min_chunk)
    bounds = np.linspace(0, B, n_chunks + 1).astype(int)
    tickets = [(int(lo), simulator.submit_batch(stacked[lo:hi]))
               for lo, hi in zip(bounds, bounds[1:])]
    consumed = 0
    try:
        for offset, ticket in tickets:
            consumed += 1
            yield offset, simulator.collect_batch(ticket)
    finally:
        for _, ticket in tickets[consumed:]:
            try:
                simulator.collect_batch(ticket)
            except Exception:  # drain must not mask the original exit
                pass


class TargetObjective:
    """Budget-enforcing fitness function for one target specification.

    Calling the objective evaluates a sizing, tracks the incumbent, and
    raises :class:`GoalReached` / :class:`BudgetExhausted` to stop the
    search; :meth:`result` converts the final state into a
    :class:`SearchResult` either way.
    """

    def __init__(self, simulator: "CircuitSimulator",
                 target: dict[str, float], budget: int,
                 reward: RewardSpec | None = None):
        if budget < 1:
            raise TrainingError(f"search budget must be >= 1, got {budget}")
        self.simulator = simulator
        self.target = dict(target)
        self.budget = int(budget)
        self.reward = reward or RewardSpec()
        self.simulations = 0
        self.best_fitness = -np.inf
        self.best_indices: np.ndarray | None = None
        self.best_specs: dict[str, float] = {}
        self.succeeded = False
        #: Cumulative supervision counters folded in from each batch's
        #: :class:`~repro.sim.faults.BatchReport`: quarantined designs
        #: score their pessimistic failure measurements through Eq. (1)
        #: like any other individual (and stay charged to the budget),
        #: so the search keeps going — these counters are how a run
        #: reports what it survived.
        self.fault_stats = {"faults": 0, "retries": 0, "respawns": 0,
                            "quarantined": 0}
        self._seen_report = None

    def _absorb_report(self) -> None:
        """Fold the simulator's last batch report into ``fault_stats``.

        Guarded by report identity: a fully-cached evaluation publishes
        no fresh report, and re-reading the previous one must not
        double-count its faults.
        """
        report = getattr(self.simulator, "last_batch_report", None)
        if report is not None and report is not self._seen_report:
            self._seen_report = report
            self.fault_stats["faults"] += len(report.faults)
            self.fault_stats["retries"] += report.retries
            self.fault_stats["respawns"] += report.respawns
            self.fault_stats["quarantined"] += report.n_quarantined

    def __call__(self, indices: np.ndarray) -> float:
        """Evaluate one sizing; returns its Eq. (1) fitness."""
        if self.simulations >= self.budget:
            raise BudgetExhausted
        indices = self.simulator.parameter_space.clip(np.asarray(indices))
        specs = self.simulator.evaluate(indices)
        self._absorb_report()
        self.simulations += 1
        breakdown = compute_reward(specs, self.target,
                                   self.simulator.spec_space, self.reward)
        if breakdown.reward > self.best_fitness:
            self.best_fitness = breakdown.reward
            self.best_indices = indices.copy()
            self.best_specs = specs
        if breakdown.goal_reached:
            self.succeeded = True
            self.best_indices = indices.copy()
            self.best_specs = specs
            self.best_fitness = breakdown.reward
            raise GoalReached
        if self.simulations >= self.budget:
            raise BudgetExhausted
        return breakdown.reward

    def evaluate_population(self, population) -> np.ndarray:
        """Evaluate a whole population through the batched engine (which
        stacks the designs — and shards them across worker processes when
        ``REPRO_SHARDS`` is set; with ``REPRO_ASYNC`` the generation is
        additionally pipelined in chunks via :func:`iter_batch_specs`, so
        reward bookkeeping overlaps the workers' solves).

        Returns the fitness array (one entry per individual) and keeps the
        scalar call's control flow: :class:`GoalReached` is raised when an
        individual meets the target and :class:`BudgetExhausted` once the
        budget is consumed.  Every simulated individual is charged to
        ``simulations`` — a population method commits to its whole
        generation before looking at the outcomes, so the sample-efficiency
        metric stays equal to the simulator's own invocation counter.
        The population is truncated to the remaining budget, which keeps
        the budget exact.
        """
        if self.simulations >= self.budget:
            raise BudgetExhausted
        space = self.simulator.parameter_space
        population = [space.clip(np.asarray(p)) for p in population]
        remaining = self.budget - self.simulations
        evaluated = population[:remaining]
        # The whole generation is committed (and charged) up front; the
        # chunk iterator below only changes *when* results stream back.
        self.simulations += len(evaluated)
        fitness = np.empty(len(population))
        for offset, specs_chunk in iter_batch_specs(self.simulator,
                                                    np.stack(evaluated)):
            self._absorb_report()
            for i, specs in enumerate(specs_chunk, start=offset):
                indices = evaluated[i]
                breakdown = compute_reward(specs, self.target,
                                           self.simulator.spec_space,
                                           self.reward)
                fitness[i] = breakdown.reward
                if breakdown.reward > self.best_fitness:
                    self.best_fitness = breakdown.reward
                    self.best_indices = indices.copy()
                    self.best_specs = specs
                if breakdown.goal_reached:
                    self.succeeded = True
                    self.best_indices = indices.copy()
                    self.best_specs = specs
                    self.best_fitness = breakdown.reward
                    raise GoalReached
        if len(evaluated) < len(population) or self.simulations >= self.budget:
            raise BudgetExhausted
        return fitness

    def result(self) -> SearchResult:
        """The search outcome given everything evaluated so far."""
        space = self.simulator.parameter_space
        indices = (self.best_indices if self.best_indices is not None
                   else space.center)
        return SearchResult(
            success=self.succeeded,
            simulations=self.simulations,
            best_fitness=float(self.best_fitness),
            best_indices=np.asarray(indices),
            best_specs=dict(self.best_specs),
        )
