"""Pure random search baseline.

Uniform sampling of the sizing grid until some sample meets the target.
Deliberately the weakest possible optimiser: its expected sample count
equals the reciprocal of the target's feasible-volume fraction, which
makes it the calibration instrument for *design-space difficulty* — the
paper's 10^14-point op-amp grid is exactly the regime where "random
generation of parameters to meet the target design specification [is]
infeasible" (§III-B).  The EXPERIMENTS.md calibration notes use it to
match our spec-range difficulty to the paper's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.baselines.common import (
    BudgetExhausted,
    GoalReached,
    SearchResult,
    TargetObjective,
)
from repro.core.reward import RewardSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


class RandomSearch:
    """Per-target uniform random search over a sizing grid."""

    def __init__(self, simulator: "CircuitSimulator",
                 reward: RewardSpec | None = None, seed: int = 0):
        self.simulator = simulator
        self.reward = reward
        self.rng = np.random.default_rng(seed)

    def solve(self, target: dict[str, float],
              max_simulations: int = 4000) -> SearchResult:
        """Sample uniformly until ``target`` is met or the budget runs out."""
        objective = TargetObjective(self.simulator, target, max_simulations,
                                    reward=self.reward)
        space = self.simulator.parameter_space
        try:
            # Include the centre point first: it is the RL agent's start
            # state, so "how far is the centre from feasible" is free info.
            objective(space.center)
            # Scalar draws first keep the sample count exact for easy
            # targets (random search is the difficulty-calibration
            # instrument); once a target has survived a while, switch to
            # geometrically growing batches so the stacked engine does the
            # heavy lifting with bounded count granularity.
            for _ in range(16):
                objective(space.sample(self.rng))
            chunk = 16
            while True:
                objective.evaluate_population(
                    [space.sample(self.rng) for _ in range(chunk)])
                chunk = min(2 * chunk, 64)
        except (GoalReached, BudgetExhausted):
            return objective.result()


def feasible_volume_fraction(simulator: "CircuitSimulator",
                             target: dict[str, float], n_samples: int = 1000,
                             reward: RewardSpec | None = None,
                             seed: int = 0) -> float:
    """Monte-Carlo estimate of the fraction of the grid meeting ``target``.

    The reciprocal approximates the expected random-search cost; targets
    with zero measured volume at ``n_samples`` are the "likely
    unreachable" points of paper Fig. 8.
    """
    from repro.core.reward import compute_reward

    rng = np.random.default_rng(seed)
    reward = reward or RewardSpec()
    hits = 0
    done = 0
    while done < n_samples:
        chunk = min(64, n_samples - done)
        samples = np.stack([simulator.parameter_space.sample(rng)
                            for _ in range(chunk)])
        for specs in simulator.evaluate_batch(samples):
            if compute_reward(specs, target, simulator.spec_space,
                              reward).goal_reached:
                hits += 1
        done += chunk
    return hits / n_samples
