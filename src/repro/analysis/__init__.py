"""Result reporting and analysis: ASCII tables/plots, statistics,
sensitivity analysis and the experiment registry."""

from repro.analysis.datasheet import Datasheet, DeviceRow, build_datasheet
from repro.analysis.experiments import EXPERIMENTS, Experiment, coverage_table, experiment
from repro.analysis.plot import (
    binned_density,
    heatmap,
    line_plot,
    scatter_plot,
)
from repro.analysis.report import (
    ascii_histogram,
    ascii_series,
    ascii_table,
    downsample_curve,
)
from repro.analysis.sensitivity import (
    SensitivityReport,
    SweepResult,
    spec_sensitivities,
    sweep_parameter,
)
from repro.analysis.stats import (
    ComparisonResult,
    SeedAggregate,
    SummaryStats,
    bootstrap_ci,
    compare_samples,
    geometric_mean_speedup,
    summarize,
    summary_headers,
    wilson_interval,
)

__all__ = [
    "EXPERIMENTS",
    "ComparisonResult",
    "Datasheet",
    "DeviceRow",
    "Experiment",
    "SeedAggregate",
    "SensitivityReport",
    "SummaryStats",
    "SweepResult",
    "ascii_histogram",
    "ascii_series",
    "ascii_table",
    "binned_density",
    "bootstrap_ci",
    "build_datasheet",
    "compare_samples",
    "coverage_table",
    "downsample_curve",
    "experiment",
    "geometric_mean_speedup",
    "heatmap",
    "line_plot",
    "scatter_plot",
    "spec_sensitivities",
    "summarize",
    "summary_headers",
    "sweep_parameter",
    "wilson_interval",
]
