"""Statistical helpers for benchmark reporting.

The paper reports point estimates (mean simulation counts, x/y success
fractions).  A reproduction comparing algorithms on a *different*
simulator needs uncertainty estimates to claim that a gap is real:

* :func:`bootstrap_ci` — nonparametric percentile bootstrap for any
  statistic of one sample (sample-efficiency means are heavy-tailed, so
  normal-theory intervals mislead);
* :func:`wilson_interval` — score interval for success *rates* (the
  generalization columns are binomial counts, often near 100 %, where the
  Wald interval collapses);
* :func:`summarize` — one-stop five-number-plus summary used by the bench
  result blocks;
* :func:`compare_samples` — Mann-Whitney U test for "algorithm A needs
  fewer simulations than B" claims;
* :class:`SeedAggregate` — accumulates one scalar per training seed and
  reports mean +/- CI (the paper trains "several times to ensure
  robust[ness] to variations in random seed").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclasses.dataclass(frozen=True)
class SummaryStats:
    """Five-number summary plus mean/std of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def row(self) -> list[float]:
        """Values in table-column order (matches :func:`summary_headers`)."""
        return [self.n, self.mean, self.std, self.minimum, self.q25,
                self.median, self.q75, self.maximum]


def summary_headers() -> list[str]:
    """Column headers matching :meth:`SummaryStats.row`."""
    return ["n", "mean", "std", "min", "q25", "median", "q75", "max"]


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over the finite entries of ``values``."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("summarize() needs at least one finite value")
    q25, median, q75 = np.percentile(arr, [25.0, 50.0, 75.0])
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q25=float(q25),
        median=float(median),
        q75=float(q75),
        maximum=float(arr.max()),
    )


def bootstrap_ci(values: Sequence[float],
                 statistic: Callable[[np.ndarray], float] = np.mean,
                 n_boot: int = 2000, confidence: float = 0.95,
                 seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic(values)``.

    Resamples with replacement ``n_boot`` times and returns the central
    ``confidence`` percentile interval of the statistic's bootstrap
    distribution.  Deterministic for a fixed ``seed``.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("bootstrap_ci() needs at least one finite value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if arr.size == 1:
        v = float(statistic(arr))
        return v, v
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    replicates = np.array([statistic(arr[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(replicates, [100.0 * alpha, 100.0 * (1.0 - alpha)])
    return float(lo), float(hi)


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0/n and n/n), which is exactly where the
    paper's generalization numbers live (500/500, 963/1000).
    """
    if trials <= 0:
        raise ValueError("wilson_interval() needs trials >= 1")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2.0 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1.0 - p) / trials
                                     + z * z / (4.0 * trials * trials))
    return max(0.0, centre - margin), min(1.0, centre + margin)


@dataclasses.dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample comparison."""

    statistic: float
    p_value: float
    median_a: float
    median_b: float

    @property
    def significant(self) -> bool:
        """True at the conventional 5 % level."""
        return self.p_value < 0.05


def compare_samples(a: Sequence[float], b: Sequence[float],
                    alternative: str = "less") -> ComparisonResult:
    """Mann-Whitney U test of sample ``a`` against sample ``b``.

    ``alternative="less"`` (default) tests whether ``a`` is stochastically
    smaller than ``b`` — e.g. "AutoCkt needs fewer simulations than the
    GA".  Non-finite entries are dropped.
    """
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    arr_a = arr_a[np.isfinite(arr_a)]
    arr_b = arr_b[np.isfinite(arr_b)]
    if arr_a.size == 0 or arr_b.size == 0:
        raise ValueError("compare_samples() needs non-empty finite samples")
    result = scipy_stats.mannwhitneyu(arr_a, arr_b, alternative=alternative)
    return ComparisonResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        median_a=float(np.median(arr_a)),
        median_b=float(np.median(arr_b)),
    )


class SeedAggregate:
    """Accumulate one scalar metric per random seed and summarise.

    The paper notes each training session "is conducted several times to
    ensure that AutoCkt is robust to variations in random seed"; benches
    use this to report mean +/- bootstrap CI over seeds.
    """

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._seeds: list[int] = []

    def add(self, seed: int, value: float) -> None:
        """Record ``value`` for ``seed`` (one entry per seed)."""
        if seed in self._seeds:
            raise ValueError(f"duplicate seed {seed} for metric {self.name!r}")
        self._seeds.append(seed)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def mean(self) -> float:
        """Mean of the metric over recorded seeds."""
        if not self._values:
            raise ValueError(f"metric {self.name!r} has no values")
        return float(np.mean(self._values))

    def interval(self, confidence: float = 0.95,
                 seed: int = 0) -> tuple[float, float]:
        """Bootstrap CI of the mean over seeds."""
        return bootstrap_ci(self._values, confidence=confidence, seed=seed)

    def describe(self) -> str:
        """One-line ``name: mean [lo, hi] over n seeds`` rendering."""
        if not self._values:
            return f"{self.name}: (no data)"
        if len(self._values) == 1:
            return f"{self.name}: {self._values[0]:.4g} (1 seed)"
        lo, hi = self.interval()
        return (f"{self.name}: {self.mean():.4g} "
                f"[{lo:.4g}, {hi:.4g}] over {len(self)} seeds")


def geometric_mean_speedup(fast: Sequence[float],
                           slow: Sequence[float]) -> float:
    """Geometric mean of per-case ``slow/fast`` ratios.

    The paper's headline "40x faster than a traditional genetic algorithm"
    is a ratio of mean simulation counts; the geometric mean over paired
    targets is the fairer aggregate and is what the benches report
    alongside the plain ratio.
    """
    f = np.asarray(fast, dtype=float)
    s = np.asarray(slow, dtype=float)
    if f.shape != s.shape or f.size == 0:
        raise ValueError("speedup needs matching non-empty samples")
    mask = np.isfinite(f) & np.isfinite(s) & (f > 0) & (s > 0)
    if not mask.any():
        raise ValueError("no valid pairs for speedup")
    return float(np.exp(np.mean(np.log(s[mask] / f[mask]))))
