"""Plot-free reporting: ASCII tables, series and histograms.

The benchmark harness regenerates every table and figure of the paper as
text — tables print the same rows the paper's tables have, and figures
print (and sparkline) the series a plotting script would consume.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str | None = None) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if value == 0.0 or 1e-3 <= abs(value) < 1e5:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def ascii_series(xs: Sequence[float], ys: Sequence[float], *, width: int = 60,
                 label_x: str = "x", label_y: str = "y",
                 title: str | None = None) -> str:
    """Render an (x, y) series as rows plus a unicode-free sparkline."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("series needs matching non-empty x/y")
    ys_arr = np.asarray(ys, dtype=float)
    lo, hi = float(np.min(ys_arr)), float(np.max(ys_arr))
    span = hi - lo if hi > lo else 1.0
    ticks = []
    for y in ys_arr[:width]:
        level = int((y - lo) / span * (len(_BLOCKS) - 1))
        ticks.append(_BLOCKS[level])
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{label_y} range [{lo:.4g}, {hi:.4g}], "
                 f"{label_x} range [{_fmt(xs[0])}, {_fmt(xs[-1])}]")
    lines.append("spark: " + "".join(ticks))
    return "\n".join(lines)


def downsample_curve(xs: Sequence[float], ys: Sequence[float],
                     n: int = 20) -> list[tuple[float, float]]:
    """Pick ~n evenly-spaced points of a curve for printing."""
    if len(xs) != len(ys):
        raise ValueError("curve needs matching x/y")
    if len(xs) <= n:
        return list(zip(xs, ys))
    idx = np.unique(np.linspace(0, len(xs) - 1, n).astype(int))
    return [(xs[i], ys[i]) for i in idx]


def ascii_histogram(values: Sequence[float], bins: int = 10, *,
                    width: int = 40, title: str | None = None) -> str:
    """Render a histogram with counts as bars."""
    values_arr = np.asarray(values, dtype=float)
    values_arr = values_arr[np.isfinite(values_arr)]
    if values_arr.size == 0:
        return (title + "\n" if title else "") + "(no finite values)"
    counts, edges = np.histogram(values_arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(math.ceil(width * c / peak)) if c else ""
        lines.append(f"[{lo:9.3g}, {hi:9.3g}) {c:5d} {bar}")
    return "\n".join(lines)
