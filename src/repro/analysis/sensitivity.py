"""Design-space sensitivity analysis.

The paper argues AutoCkt "intuitively understands the design space in the
same manner as a circuit designer ... tradeoffs between different target
specifications across the design space".  This module makes those
trade-offs inspectable directly: finite-difference sensitivities of every
measured spec with respect to every grid parameter, parameter sweeps along
one axis, and tornado-style rankings of which knob moves which spec.

All computations run through a :class:`~repro.topologies.base.CircuitSimulator`,
so they share the caching/counting infrastructure with the optimisers.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.report import ascii_table
from repro.errors import SpaceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass(frozen=True)
class SensitivityEntry:
    """Effect of one +/- grid-step change of one parameter on one spec."""

    parameter: str
    spec: str
    base_value: float
    low_value: float      # spec at parameter index - step
    high_value: float     # spec at parameter index + step
    #: Central-difference slope per grid step.
    slope_per_step: float
    #: Relative swing |high - low| / |base| (0 when base is 0).
    relative_swing: float


class SensitivityReport:
    """Sensitivities of all specs w.r.t. all parameters at one sizing."""

    def __init__(self, entries: list[SensitivityEntry],
                 parameters: Sequence[str], specs: Sequence[str],
                 indices: np.ndarray, simulations: int):
        self.entries = entries
        self.parameters = tuple(parameters)
        self.specs = tuple(specs)
        self.indices = np.asarray(indices)
        self.simulations = int(simulations)
        self._by_key = {(e.parameter, e.spec): e for e in entries}

    def __getitem__(self, key: tuple[str, str]) -> SensitivityEntry:
        """Entry for ``(parameter, spec)``."""
        return self._by_key[key]

    def matrix(self, relative: bool = True) -> np.ndarray:
        """(n_params, n_specs) array of slopes or relative swings."""
        out = np.zeros((len(self.parameters), len(self.specs)))
        for i, p in enumerate(self.parameters):
            for j, s in enumerate(self.specs):
                e = self._by_key[(p, s)]
                out[i, j] = e.relative_swing if relative else e.slope_per_step
        return out

    def tornado(self, spec: str) -> list[SensitivityEntry]:
        """Parameters ranked by their effect on ``spec`` (largest first)."""
        if spec not in self.specs:
            raise KeyError(spec)
        entries = [self._by_key[(p, spec)] for p in self.parameters]
        return sorted(entries, key=lambda e: e.relative_swing, reverse=True)

    def dominant_parameter(self, spec: str) -> str:
        """The single knob with the largest effect on ``spec``."""
        return self.tornado(spec)[0].parameter

    def render(self, relative: bool = True) -> str:
        """ASCII matrix: rows are parameters, columns are specs."""
        mat = self.matrix(relative=relative)
        rows = [[p] + [float(v) for v in mat[i]]
                for i, p in enumerate(self.parameters)]
        kind = "relative swing" if relative else "slope/step"
        return ascii_table(["parameter"] + list(self.specs), rows,
                           title=f"spec sensitivities ({kind}, "
                                 f"{self.simulations} simulations)")


def spec_sensitivities(simulator: "CircuitSimulator",
                       indices: np.ndarray | None = None,
                       step: int = 1) -> SensitivityReport:
    """Central-difference sensitivities at grid point ``indices``.

    For each parameter the grid index is moved ``+/- step`` (clipped at the
    grid edge, falling back to a one-sided difference there) and every
    spec re-measured.  Cost: ``2 * n_params + 1`` simulations.
    """
    space = simulator.parameter_space
    if indices is None:
        indices = space.center
    indices = space.clip(np.asarray(indices))
    if step < 1:
        raise SpaceError(f"sensitivity step must be >= 1, got {step}")

    base = simulator.evaluate(indices)
    spec_names = list(base.keys())
    sims = 1
    entries: list[SensitivityEntry] = []
    for i, param in enumerate(space):
        lo_idx = indices.copy()
        hi_idx = indices.copy()
        lo_idx[i] = max(0, indices[i] - step)
        hi_idx[i] = min(param.count - 1, indices[i] + step)
        span = int(hi_idx[i] - lo_idx[i])
        low = simulator.evaluate(lo_idx) if span else base
        high = simulator.evaluate(hi_idx) if span else base
        sims += 2 if span else 0
        for name in spec_names:
            base_v = float(base[name])
            lo_v, hi_v = float(low[name]), float(high[name])
            slope = (hi_v - lo_v) / span if span else 0.0
            swing = abs(hi_v - lo_v) / abs(base_v) if base_v else 0.0
            entries.append(SensitivityEntry(
                parameter=param.name, spec=name, base_value=base_v,
                low_value=lo_v, high_value=hi_v,
                slope_per_step=slope, relative_swing=swing))
    return SensitivityReport(entries, [p.name for p in space], spec_names,
                             indices, sims)


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Specs measured along one parameter axis, all else held fixed."""

    parameter: str
    indices: np.ndarray               # swept grid indices, shape (P,)
    values: np.ndarray                # physical parameter values, shape (P,)
    specs: dict[str, np.ndarray]      # each shape (P,)

    def spec_trace(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(parameter values, spec values) — ready for plotting."""
        return self.values, self.specs[name]

    def monotonic_fraction(self, name: str) -> float:
        """Fraction of sweep steps moving in the majority direction.

        1.0 means the spec responds monotonically to this knob — the kind
        of structure the RL agent exploits.
        """
        y = self.specs[name]
        if len(y) < 2:
            return 1.0
        diffs = np.diff(y)
        nonzero = diffs[diffs != 0.0]
        if nonzero.size == 0:
            return 1.0
        ups = int(np.sum(nonzero > 0))
        return max(ups, nonzero.size - ups) / nonzero.size


def sweep_parameter(simulator: "CircuitSimulator", parameter: str,
                    indices: np.ndarray | None = None,
                    points: int | None = None) -> SweepResult:
    """Measure every spec while sweeping one parameter across its grid.

    ``points`` limits the number of grid points visited (evenly spaced
    across the axis); by default every grid value is simulated.
    """
    space = simulator.parameter_space
    names = [p.name for p in space]
    if parameter not in names:
        raise SpaceError(f"unknown parameter {parameter!r}; "
                         f"choose from {names}")
    axis = names.index(parameter)
    count = space.params[axis].count
    if indices is None:
        indices = space.center
    indices = space.clip(np.asarray(indices))

    if points is None or points >= count:
        swept = np.arange(count)
    else:
        if points < 2:
            raise SpaceError("sweep needs at least 2 points")
        swept = np.unique(np.linspace(0, count - 1, points).astype(int))

    traces: dict[str, list[float]] = {}
    values = []
    for k in swept:
        point = indices.copy()
        point[axis] = k
        specs = simulator.evaluate(point)
        values.append(space.values(point)[parameter])
        for name, v in specs.items():
            traces.setdefault(name, []).append(float(v))
    return SweepResult(
        parameter=parameter,
        indices=swept,
        values=np.asarray(values, dtype=float),
        specs={k: np.asarray(v) for k, v in traces.items()},
    )
