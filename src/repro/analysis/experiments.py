"""Registry of the paper's experiments.

Maps every table and figure of the paper's evaluation to its description,
the paper's reported values, and the benchmark that regenerates it.  Used
by documentation tooling and sanity-checked by the test suite so the
bench inventory can't silently drift from the claimed coverage.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One table or figure of the paper."""

    key: str
    title: str
    paper_result: str
    bench: str
    modules: tuple[str, ...]


EXPERIMENTS: dict[str, Experiment] = {
    exp.key: exp for exp in [
        Experiment(
            "table1", "TIA sample efficiency & generalisation",
            "GA 376 sims; AutoCkt 15 sims; 487/500 targets reached",
            "benchmarks/bench_table1_tia.py",
            ("repro.topologies.tia", "repro.core.agent",
             "repro.baselines.genetic")),
        Experiment(
            "table2", "Two-stage op-amp sample efficiency & generalisation",
            "GA 1063; random agent 38/1000; AutoCkt 27 sims, 963/1000",
            "benchmarks/bench_table2_opamp.py",
            ("repro.topologies.two_stage", "repro.core",
             "repro.baselines")),
        Experiment(
            "table3", "Negative-gm OTA sample efficiency & generalisation",
            "GA 406; random agent 4/500; AutoCkt 10 sims, 500/500",
            "benchmarks/bench_table3_ngm.py",
            ("repro.topologies.ngm_ota", "repro.core", "repro.baselines")),
        Experiment(
            "table4", "PEX transfer learning",
            "BagNet 220 sims; AutoCkt schematic 10; AutoCkt PEX 23, "
            "40/40 LVS passed",
            "benchmarks/bench_table4_pex.py",
            ("repro.core.transfer", "repro.pex", "repro.baselines.bagnet")),
        Experiment(
            "fig5", "TIA training reward curve",
            "mean episode reward rises past 0",
            "benchmarks/bench_fig5_tia_reward.py",
            ("repro.rl.ppo", "repro.core.agent")),
        Experiment(
            "fig7", "Op-amp reward vs environment steps",
            "~1e4 steps to mean reward 0; 1.3 h wall clock on 8 cores",
            "benchmarks/bench_fig7_opamp_reward.py",
            ("repro.rl.ppo", "repro.core.agent")),
        Experiment(
            "fig8", "Reached/unreached op-amp target distribution",
            "unreached targets cluster at low bias-current bounds",
            "benchmarks/bench_fig8_opamp_coverage.py",
            ("repro.core.deploy",)),
        Experiment(
            "fig10", "Trajectory-length optimisation",
            "success saturates near H = 30 steps",
            "benchmarks/bench_fig10_trajectory_length.py",
            ("repro.core.deploy",)),
        Experiment(
            "fig11", "Negative-gm OTA training reward curve",
            "mean episode reward rises past 0",
            "benchmarks/bench_fig11_ngm_reward.py",
            ("repro.rl.ppo", "repro.core.agent")),
        Experiment(
            "fig12", "Negative-gm OTA reached-target distribution",
            "no unreached targets (500/500)",
            "benchmarks/bench_fig12_ngm_coverage.py",
            ("repro.core.deploy",)),
        Experiment(
            "fig14", "PEX trajectory + schematic-vs-PEX histogram",
            "convergence in ~11 steps; systematic % differences over 50 designs",
            "benchmarks/bench_fig14_pex_trajectory.py",
            ("repro.core.transfer", "repro.pex.extraction")),
        Experiment(
            "speed", "Simulation-cost claims",
            "25 ms schematic op-amp sim; PEX ~38x slower than schematic",
            "benchmarks/bench_simulator_speed.py",
            ("repro.sim", "repro.pex")),
        Experiment(
            "ablation_targets", "Sparse-subsample size sweep",
            "50 targets chosen by hyperparameter sweep",
            "benchmarks/bench_ablation_targets.py",
            ("repro.core.sampler",)),
        Experiment(
            "ablation_reward", "Reward-shaping comparison",
            "dense Eq. (1) shaping (implied by design)",
            "benchmarks/bench_ablation_reward.py",
            ("repro.core.reward",)),
        Experiment(
            "ablation_pm_range", "Phase-margin range vs transfer",
            "training on PM range [60, 75] transfers better than fixed 60",
            "benchmarks/bench_ablation_pm_range.py",
            ("repro.core.transfer", "repro.topologies.ngm_ota")),
        Experiment(
            "ablation_baselines", "Per-target optimiser zoo",
            "GA is representative: SA/CEM/random search also pay "
            "per-target restart costs (extension beyond the paper)",
            "benchmarks/bench_ablation_baselines.py",
            ("repro.baselines.annealing", "repro.baselines.cem",
             "repro.baselines.random_search")),
        Experiment(
            "parallel_scaling", "Parallel-environment wall clock",
            "Ray parallelism: 1.3 h on 8 cores for the op-amp (§III-B)",
            "benchmarks/bench_parallel_scaling.py",
            ("repro.rl.parallel",)),
        Experiment(
            "async_rollouts", "Async vs lockstep rollouts at chain scale",
            "Beyond the paper: the double-buffered rollout pipeline "
            "(REPRO_ASYNC) overlaps policy inference with the shard "
            "workers' batched simulation; in the external-simulator-"
            "latency regime it hides most of the agent's think time",
            "benchmarks/bench_async_rollouts.py",
            ("repro.rl.async_env", "repro.rl.ppo", "repro.sim.parallel",
             "repro.topologies.ota_chain")),
        Experiment(
            "measurement_pipeline",
            "Stacked vs per-design measurement (declarative pipeline)",
            "Beyond the paper: one declarative spec graph per topology "
            "serves the scalar and stacked paths alike; the OTA chain, "
            "which used to fall back to a per-design measurement loop, "
            "measures whole batches through per-design sparse sweep "
            "factorisations",
            "benchmarks/bench_measurement.py",
            ("repro.measure.pipeline", "repro.topologies.base",
             "repro.topologies.ota_chain")),
        Experiment(
            "fault_recovery", "Self-healing evaluation under injected faults",
            "Beyond the paper: the supervised shard pool (REPRO_TIMEOUT/"
            "REPRO_RETRIES) absorbs worker kills, hangs and poison "
            "designs — batches complete bitwise-identically via respawn "
            "and retry; this bench measures the recovery latency and "
            "throughput cost under deterministic REPRO_FAULTS profiles",
            "benchmarks/bench_fault_recovery.py",
            ("repro.sim.parallel", "repro.sim.faults")),
        Experiment(
            "remote_transport", "Remote shard workers over sockets",
            "Beyond the paper: REPRO_WORKERS puts the same supervised "
            "shard workers behind TCP (repro worker / repro serve) with "
            "results bitwise-identical to the local pool; this bench "
            "measures the loopback transport overhead versus in-process "
            "and shared-memory evaluation and the cost of recovering a "
            "dropped connection mid-batch",
            "benchmarks/bench_remote_transport.py",
            ("repro.sim.remote", "repro.sim.parallel",
             "repro.topologies.base")),
        Experiment(
            "result_store", "Content-addressed result store & warm starts",
            "Beyond the paper: the persistent evaluation store "
            "(REPRO_CACHE) replays exact hits bitwise without touching "
            "the engine and seeds Newton from the nearest stored "
            "operating point on misses; this bench measures the "
            "warm-replay throughput multiple and the iteration savings "
            "of store-warm seeds over canonical cold starts",
            "benchmarks/bench_result_store.py",
            ("repro.sim.store", "repro.sim.dc", "repro.topologies.base")),
        Experiment(
            "sparse_engine", "Sparse vs dense engine on large netlists",
            "Beyond the paper: the OTA repeater chain scenario family "
            "(>=200 MNA unknowns) runs >=3x faster on the SuperLU "
            "backend, enabling post-layout mesh and interconnect "
            "workloads the dense engine cannot scale to",
            "benchmarks/bench_sparse_engine.py",
            ("repro.sim.sparse", "repro.sim.engine",
             "repro.topologies.ota_chain")),
        Experiment(
            "krylov_engine", "Iterative vs sparse-direct engine at mesh "
            "scale",
            "Beyond the paper: the power-grid OTA scenario family "
            "(5k-50k MNA unknowns) runs its warm AC sweeps and DC "
            "Newton re-solves on ILU-preconditioned GMRES, bracketing "
            "the sparse-vs-iterative crossover that sets the auto "
            "selector's second threshold",
            "benchmarks/bench_krylov_engine.py",
            ("repro.sim.krylov", "repro.sim.engine",
             "repro.topologies.power_grid")),
    ]
}


def experiment(key: str) -> Experiment:
    """Look up one experiment; raises KeyError with the valid keys."""
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise KeyError(f"unknown experiment {key!r}; valid: "
                       f"{sorted(EXPERIMENTS)}") from None


def coverage_table() -> str:
    """Markdown table of every experiment (used to build EXPERIMENTS.md)."""
    lines = ["| key | experiment | paper result | bench |",
             "|---|---|---|---|"]
    for exp in EXPERIMENTS.values():
        lines.append(f"| {exp.key} | {exp.title} | {exp.paper_result} | "
                     f"`{exp.bench}` |")
    return "\n".join(lines)
