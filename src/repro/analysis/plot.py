"""ASCII plotting: gridded line/scatter plots and heatmaps.

:mod:`repro.analysis.report` renders tables and one-line sparklines; this
module adds full two-dimensional character canvases for the paper's
figures — training curves (Figs. 5/7/11), reached/unreached scatter
distributions (Figs. 8/12) and trajectory plots (Fig. 14) — so the bench
output is readable without a plotting stack.

All functions return plain strings.  Axes are annotated with min/max and
tick values; log axes are supported for the frequency-like quantities.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence

import numpy as np

#: Marker cycle for multi-series plots (first series gets '*', etc.).
MARKERS = "*o+x#@%&"


@dataclasses.dataclass(frozen=True)
class Axis:
    """One plot axis: data range, optional log scaling, label."""

    lo: float
    hi: float
    log: bool = False
    label: str = ""

    def __post_init__(self):
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise ValueError(f"axis {self.label!r}: bounds must be finite")
        if self.lo >= self.hi:
            raise ValueError(f"axis {self.label!r}: lo must be < hi")
        if self.log and self.lo <= 0.0:
            raise ValueError(f"axis {self.label!r}: log axis needs lo > 0")

    def fraction(self, value: float) -> float:
        """Map ``value`` to [0, 1] along the axis (clipped)."""
        lo, hi, v = self.lo, self.hi, value
        if self.log:
            if v <= 0.0:
                return 0.0
            lo, hi, v = math.log10(lo), math.log10(hi), math.log10(v)
        return min(1.0, max(0.0, (v - lo) / (hi - lo)))

    def ticks(self, n: int = 5) -> list[float]:
        """``n`` tick values spanning the axis (log-spaced on log axes)."""
        if self.log:
            return list(np.logspace(math.log10(self.lo),
                                    math.log10(self.hi), n))
        return list(np.linspace(self.lo, self.hi, n))


def _axis_from_data(values: np.ndarray, log: bool, label: str) -> Axis:
    finite = values[np.isfinite(values)]
    if log:
        finite = finite[finite > 0.0]
    if finite.size == 0:
        raise ValueError(f"no plottable data for axis {label!r}")
    lo, hi = float(finite.min()), float(finite.max())
    if lo == hi:  # degenerate: widen symmetrically so the point is centred
        pad = abs(lo) * 0.1 or 1.0
        if log:
            lo, hi = lo / 2.0, hi * 2.0
        else:
            lo, hi = lo - pad, hi + pad
    return Axis(lo=lo, hi=hi, log=log, label=label)


class Canvas:
    """A character grid with data-coordinate plotting primitives."""

    def __init__(self, x_axis: Axis, y_axis: Axis, width: int = 64,
                 height: int = 18):
        if width < 8 or height < 4:
            raise ValueError("canvas needs width >= 8 and height >= 4")
        self.x_axis = x_axis
        self.y_axis = y_axis
        self.width = width
        self.height = height
        self._grid = [[" "] * width for _ in range(height)]

    def _cell(self, x: float, y: float) -> tuple[int, int] | None:
        if not (math.isfinite(x) and math.isfinite(y)):
            return None
        col = int(round(self.x_axis.fraction(x) * (self.width - 1)))
        row = int(round((1.0 - self.y_axis.fraction(y)) * (self.height - 1)))
        return row, col

    def point(self, x: float, y: float, marker: str) -> None:
        """Mark one data point (silently skipped when not finite)."""
        cell = self._cell(x, y)
        if cell is not None:
            row, col = cell
            self._grid[row][col] = marker[0]

    def polyline(self, xs: Sequence[float], ys: Sequence[float],
                 marker: str) -> None:
        """Mark a series, linearly interpolating between adjacent samples
        so sparse series still draw a connected trace."""
        pts = [self._cell(x, y) for x, y in zip(xs, ys)]
        pts = [p for p in pts if p is not None]
        for (r0, c0), (r1, c1) in zip(pts, pts[1:]):
            steps = max(abs(r1 - r0), abs(c1 - c0), 1)
            for s in range(steps + 1):
                r = r0 + (r1 - r0) * s // steps
                c = c0 + (c1 - c0) * s // steps
                self._grid[r][c] = marker[0]

    def hline(self, y: float, char: str = "-") -> None:
        """Horizontal rule at data ``y`` (e.g. the reward-0 line)."""
        cell = self._cell(self.x_axis.lo, y)
        if cell is None:
            return
        row, _ = cell
        for col in range(self.width):
            if self._grid[row][col] == " ":
                self._grid[row][col] = char[0]

    def render(self, title: str | None = None,
               legend: Mapping[str, str] | None = None) -> str:
        """Assemble the canvas with axes, tick labels, title and legend."""
        lines: list[str] = []
        if title:
            lines.append(title)
        y_lo, y_hi = _fmt(self.y_axis.lo), _fmt(self.y_axis.hi)
        label_w = max(len(y_lo), len(y_hi))
        for i, row in enumerate(self._grid):
            if i == 0:
                prefix = y_hi.rjust(label_w)
            elif i == self.height - 1:
                prefix = y_lo.rjust(label_w)
            else:
                prefix = " " * label_w
            lines.append(f"{prefix} |{''.join(row)}|")
        lines.append(" " * label_w + " +" + "-" * self.width + "+")
        x_lo, x_hi = _fmt(self.x_axis.lo), _fmt(self.x_axis.hi)
        gap = self.width - len(x_lo) - len(x_hi)
        lines.append(" " * (label_w + 2) + x_lo + " " * max(1, gap) + x_hi)
        foot = []
        if self.x_axis.label:
            foot.append(f"x: {self.x_axis.label}"
                        + (" (log)" if self.x_axis.log else ""))
        if self.y_axis.label:
            foot.append(f"y: {self.y_axis.label}"
                        + (" (log)" if self.y_axis.log else ""))
        if foot:
            lines.append("  ".join(foot))
        if legend:
            lines.append("legend: " + "  ".join(f"{m}={name}"
                                                for name, m in legend.items()))
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == 0.0 or 1e-3 <= abs(value) < 1e5:
        return f"{value:.4g}"
    return f"{value:.2e}"


Series = Mapping[str, tuple[Sequence[float], Sequence[float]]]


def _collect_axes(series: Series, log_x: bool, log_y: bool,
                  x_label: str, y_label: str) -> tuple[Axis, Axis]:
    if not series:
        raise ValueError("plot needs at least one series")
    all_x = np.concatenate([np.asarray(xs, dtype=float)
                            for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float)
                            for _, ys in series.values()])
    return (_axis_from_data(all_x, log_x, x_label),
            _axis_from_data(all_y, log_y, y_label))


def line_plot(series: Series, *, width: int = 64, height: int = 18,
              log_x: bool = False, log_y: bool = False,
              x_label: str = "x", y_label: str = "y",
              title: str | None = None,
              hlines: Sequence[float] = ()) -> str:
    """Plot one or more (xs, ys) series as connected traces.

    ``series`` maps a legend label to its data.  ``hlines`` draws
    horizontal reference rules (the reward figures use one at 0).
    """
    x_axis, y_axis = _collect_axes(series, log_x, log_y, x_label, y_label)
    canvas = Canvas(x_axis, y_axis, width=width, height=height)
    for y in hlines:
        canvas.hline(y)
    legend: dict[str, str] = {}
    for i, (label, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[i % len(MARKERS)]
        legend[label] = marker
        canvas.polyline(np.asarray(xs, dtype=float),
                        np.asarray(ys, dtype=float), marker)
    return canvas.render(title=title,
                         legend=legend if len(series) > 1 else None)


def scatter_plot(series: Series, *, width: int = 64, height: int = 18,
                 log_x: bool = False, log_y: bool = False,
                 x_label: str = "x", y_label: str = "y",
                 title: str | None = None) -> str:
    """Plot point clouds — the Figs. 8/12 reached/unreached views.

    Later series draw over earlier ones, so list the small "unreached"
    cloud last to keep it visible on top of the bulk.
    """
    x_axis, y_axis = _collect_axes(series, log_x, log_y, x_label, y_label)
    canvas = Canvas(x_axis, y_axis, width=width, height=height)
    legend: dict[str, str] = {}
    for i, (label, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[i % len(MARKERS)]
        legend[label] = marker
        for x, y in zip(np.asarray(xs, dtype=float),
                        np.asarray(ys, dtype=float)):
            canvas.point(x, y, marker)
    return canvas.render(title=title, legend=legend)


#: Density shades from empty to full for :func:`heatmap` cells.
_SHADES = " .:-=+*#%@"


def heatmap(grid: np.ndarray, *, x_label: str = "x", y_label: str = "y",
            title: str | None = None,
            x_range: tuple[float, float] | None = None,
            y_range: tuple[float, float] | None = None) -> str:
    """Render a 2-D array as a shaded density map.

    ``grid[i, j]`` maps to row ``i`` (bottom row is ``i = 0``) and column
    ``j``.  Cell shades are linearly binned between the grid's min and max.
    """
    arr = np.asarray(grid, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError("heatmap needs a non-empty 2-D array")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValueError("heatmap needs at least one finite cell")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines: list[str] = []
    if title:
        lines.append(title)
    for i in range(arr.shape[0] - 1, -1, -1):
        row_chars = []
        for value in arr[i]:
            if not math.isfinite(value):
                row_chars.append("?")
                continue
            level = int((value - lo) / span * (len(_SHADES) - 1))
            row_chars.append(_SHADES[level])
        lines.append("|" + "".join(row_chars) + "|")
    lines.append("+" + "-" * arr.shape[1] + "+")
    foot = []
    if x_range:
        foot.append(f"x: {x_label} [{_fmt(x_range[0])}, {_fmt(x_range[1])}]")
    else:
        foot.append(f"x: {x_label}")
    if y_range:
        foot.append(f"y: {y_label} [{_fmt(y_range[0])}, {_fmt(y_range[1])}]")
    else:
        foot.append(f"y: {y_label}")
    foot.append(f"shade: [{_fmt(lo)}, {_fmt(hi)}]")
    lines.append("  ".join(foot))
    return "\n".join(lines)


def binned_density(xs: Sequence[float], ys: Sequence[float], *,
                   bins: int = 24,
                   log_x: bool = False, log_y: bool = False) -> np.ndarray:
    """2-D histogram of a point cloud, oriented for :func:`heatmap`.

    Returns a ``(bins, bins)`` count array with row 0 at the bottom of the
    y range, ready to pass to :func:`heatmap`.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size == 0:
        raise ValueError("binned_density needs matching non-empty x/y")
    if log_x:
        x = np.log10(np.maximum(x, 1e-30))
    if log_y:
        y = np.log10(np.maximum(y, 1e-30))
    counts, _, _ = np.histogram2d(y, x, bins=bins)
    return counts
