"""Design datasheet generation.

One sizing in, one human-readable report out: the measured specs, the
bias point of every transistor (region, current, gm/ID), pole locations
and stability, estimated layout area, and supply power.  This is the
artifact a designer reads after the agent converges — the deployment
examples print it for their winning designs — and it doubles as a
cross-subsystem integration point (simulator, measurement, pole analysis
and pseudo-layout all feed one object).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.report import ascii_table
from repro.errors import AnalysisError, ConvergenceError
from repro.sim.dc import solve_dc
from repro.sim.poles import PoleSet, circuit_poles
from repro.sim.system import MnaSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import Topology


@dataclasses.dataclass(frozen=True)
class DeviceRow:
    """Bias summary of one MOSFET."""

    name: str
    region: str
    ids: float       # [A]
    gm: float        # [S]
    gm_over_id: float
    vov: float       # effective overdrive [V]
    saturation_margin: float  # vds - vov (headroom) [V]


@dataclasses.dataclass
class Datasheet:
    """Everything a designer reads off one sized design."""

    topology: str
    technology: str
    values: dict[str, float]          # physical sizing
    specs: dict[str, float]           # measured performance
    devices: list[DeviceRow]
    poles: PoleSet
    supply_power: float               # [W]
    layout_area: float                # [m^2]

    @property
    def stable(self) -> bool:
        """Small-signal stability verdict from the pole set."""
        return self.poles.stable

    def worst_device(self) -> DeviceRow:
        """The transistor with the least saturation headroom — the one a
        designer checks first when a corner or mismatch run fails."""
        if not self.devices:
            raise AnalysisError("design has no MOSFETs")
        return min(self.devices, key=lambda d: d.saturation_margin)

    def render(self) -> str:
        """The full datasheet as fixed-width text."""
        lines = [f"=== {self.topology} ({self.technology}) ==="]

        lines.append(ascii_table(
            ["parameter", "value"],
            [[k, _si(v)] for k, v in self.values.items()],
            title="sizing"))
        lines.append("")
        lines.append(ascii_table(
            ["spec", "measured"],
            [[k, _si(v)] for k, v in self.specs.items()],
            title="performance"))
        lines.append("")
        lines.append(ascii_table(
            ["device", "region", "ids [A]", "gm [S]", "gm/ID", "vov [V]",
             "sat. margin [V]"],
            [[d.name, d.region, _si(d.ids), _si(d.gm),
              f"{d.gm_over_id:.1f}", f"{d.vov:.3f}",
              f"{d.saturation_margin:+.3f}"] for d in self.devices],
            title="bias point"))
        lines.append("")
        verdict = "stable" if self.stable else "UNSTABLE"
        if len(self.poles):
            lines.append(
                f"poles: {len(self.poles)} finite, {verdict}, dominant "
                f"{self.poles.dominant_frequency_hz():.3e} Hz, max Q "
                f"{self.poles.max_q():.2f}")
        else:
            lines.append(f"poles: none finite ({verdict})")
        lines.append(f"supply power: {_si(self.supply_power)}W   "
                     f"layout area: {self.layout_area * 1e12:.1f} um^2")
        if self.devices:
            worst = self.worst_device()
            lines.append(f"tightest device: {worst.name} "
                         f"({worst.saturation_margin:+.3f} V of headroom)")
        return "\n".join(lines)


def _si(value: float) -> str:
    """Engineering-notation rendering with an SI prefix."""
    if value == 0.0:
        return "0"
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
                (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
                (1e-15, "f")]
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value / scale:.3g}{prefix}"
    return f"{value:.3g}"


def build_datasheet(topology: "Topology",
                    indices: np.ndarray | None = None,
                    values: dict[str, float] | None = None) -> Datasheet:
    """Simulate one sizing of ``topology`` and assemble its datasheet.

    The sizing is given as grid ``indices`` (default: the grid centre) or
    as explicit physical ``values``.
    """
    from repro.pex.layout import generate_layout

    if values is None:
        space = topology.parameter_space
        if indices is None:
            indices = space.center
        values = space.values(space.clip(np.asarray(indices)))
    netlist = topology.build(values)
    system = MnaSystem(netlist, temperature=topology.temperature)
    try:
        op = solve_dc(system)
    except ConvergenceError as exc:
        raise AnalysisError(
            f"datasheet: {topology.name} does not bias up at this sizing "
            f"({exc})") from exc
    specs = topology.measure(system, op)

    devices = []
    for name, state in sorted(op.mosfet_states.items()):
        ids = abs(state.ids)
        devices.append(DeviceRow(
            name=name,
            region=state.region,
            ids=ids,
            gm=state.gm,
            gm_over_id=state.gm / ids if ids > 0.0 else 0.0,
            vov=state.vov_eff,
            saturation_margin=abs(state.vds) - state.vov_eff,
        ))

    vdd_power = 0.0
    for element in netlist.elements:
        from repro.circuits.elements import VoltageSource

        if isinstance(element, VoltageSource) and element.dc > 0.0:
            vdd_power += abs(op.branch_current(element.name)) * element.dc

    return Datasheet(
        topology=topology.name,
        technology=topology.technology.name,
        values=dict(values),
        specs=specs,
        devices=devices,
        poles=circuit_poles(system, op),
        supply_power=vdd_power,
        layout_area=generate_layout(netlist).area,
    )
