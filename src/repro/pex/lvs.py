"""Layout-versus-schematic (LVS) comparison.

Real LVS reduces the extracted layout netlist to devices and connectivity,
then checks it is isomorphic to the schematic.  We do exactly that:

1. strip parasitic elements (the extractor prefixes them), *collapsing*
   the nodes joined by parasitic access resistors back together;
2. build a bipartite device/net graph for both netlists, labelling device
   vertices with (type, polarity, electrical size) and edges with the
   terminal role (drain/gate/source/bulk, or p/n);
3. run VF2 graph isomorphism (networkx) with those labels as match
   predicates.

A pass means the layout implements the schematic's devices and
connectivity exactly — the verification the paper counts ("40 LVS passed
designs").
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.errors import LvsError

#: Terminal role names per element class (edge labels in the LVS graph).
_TERMINALS: dict[type, tuple[str, ...]] = {
    Mosfet: ("d", "g", "s", "b"),
    Resistor: ("p", "n"),
    Capacitor: ("p", "n"),
    Inductor: ("p", "n"),
    VoltageSource: ("p", "n"),
    CurrentSource: ("p", "n"),
    Vccs: ("p", "n", "cp", "cn"),
    Vcvs: ("p", "n", "cp", "cn"),
}

#: Relative tolerance when comparing electrical sizes.
_SIZE_RTOL = 1e-9


def _device_label(element: Element) -> tuple:
    """Hashable vertex label: device type + electrical size."""
    if isinstance(element, Mosfet):
        return ("mosfet", element.polarity, round(element.w, 15),
                round(element.l, 15), round(element.m, 9))
    if isinstance(element, Resistor):
        return ("resistor", round(element.resistance, 6))
    if isinstance(element, Capacitor):
        return ("capacitor", round(element.capacitance, 21))
    if isinstance(element, Inductor):
        return ("inductor", round(element.inductance, 15))
    if isinstance(element, VoltageSource):
        return ("vsource", round(element.dc, 12))
    if isinstance(element, CurrentSource):
        return ("isource", round(element.dc, 12))
    if isinstance(element, Vccs):
        return ("vccs", round(element.gm, 12))
    if isinstance(element, Vcvs):
        return ("vcvs", round(element.gain, 12))
    raise LvsError(f"unsupported element type {type(element).__name__}")


def reduce_extracted(netlist: Netlist, parasitic_prefix: str) -> Netlist:
    """Strip parasitics: drop PEX capacitors, collapse PEX resistors.

    Collapsing uses union-find over the nodes the parasitic resistors
    connect, mapping every collapsed group to its schematic-named node
    (parasitic internal nodes carry the prefix, so the survivor is the
    original name).
    """
    parent: dict[str, str] = {}

    def find(node: str) -> str:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        # Prefer the schematic-named node as the representative.
        if ra.startswith(parasitic_prefix) and not rb.startswith(parasitic_prefix):
            ra, rb = rb, ra
        parent[rb] = ra

    parasitic_shorts = []
    for element in netlist:
        if element.name.startswith(parasitic_prefix) and isinstance(element, Resistor):
            parasitic_shorts.append(element)
    for short in parasitic_shorts:
        union(short.p, short.n)

    reduced = Netlist(f"{netlist.title}_lvs")
    for element in netlist:
        if element.name.startswith(parasitic_prefix):
            continue
        clone = _reclone(element, [find(n) for n in element.nodes])
        reduced.add(clone)
    return reduced


def _reclone(element: Element, nodes: list[str]) -> Element:
    """Shallow-copy an element onto new node names."""
    import copy

    clone = copy.copy(element)
    clone.nodes = tuple(nodes)
    return clone


def netlist_graph(netlist: Netlist) -> nx.Graph:
    """Bipartite device/net graph with LVS labels."""
    graph = nx.Graph()
    for element in netlist:
        terminals = _TERMINALS.get(type(element))
        if terminals is None:
            raise LvsError(f"unsupported element type {type(element).__name__}")
        if len(terminals) != len(element.nodes):
            raise LvsError(f"element {element.name} arity mismatch")
        dev = ("dev", element.name)
        graph.add_node(dev, kind="device", label=_device_label(element))
        for role, net in zip(terminals, element.nodes):
            net_vertex = ("net", net)
            graph.add_node(net_vertex, kind="net", label=("net",))
            # Parallel terminals on the same net (e.g. a diode-connected
            # MOSFET's gate and drain) fold their roles into one edge label.
            if graph.has_edge(dev, net_vertex):
                roles = graph.edges[dev, net_vertex]["roles"] + (role,)
                graph.edges[dev, net_vertex]["roles"] = tuple(sorted(roles))
            else:
                graph.add_edge(dev, net_vertex, roles=(role,))
    return graph


def lvs_compare(schematic: Netlist, extracted: Netlist,
                parasitic_prefix: str = "PEX_") -> bool:
    """True when the extracted netlist implements the schematic exactly."""
    reduced = reduce_extracted(extracted, parasitic_prefix)
    g_sch = netlist_graph(schematic)
    g_lay = netlist_graph(reduced)
    if g_sch.number_of_nodes() != g_lay.number_of_nodes():
        return False
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        g_sch, g_lay,
        node_match=lambda a, b: a["kind"] == b["kind"] and a["label"] == b["label"],
        edge_match=lambda a, b: a["roles"] == b["roles"])
    return matcher.is_isomorphic()
