"""PVT corners for post-layout signoff.

The paper "consider[s] different PVT variations, taking the worst
performing metric as the specification".  A :class:`CornerSpec` bundles a
process corner, a supply-voltage scale and a temperature;
:func:`signoff_corners` returns the standard worst-case trio used by the
PEX flow (typical, slow/hot/low-V, fast/cold/high-V).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.circuits.technology import Corner
from repro.topologies.base import Topology
from repro.units import ROOM_TEMPERATURE


@dataclasses.dataclass(frozen=True)
class CornerSpec:
    """One PVT point."""

    process: Corner
    vdd_scale: float
    temperature: float
    name: str

    def apply(self, topology_factory: Callable[[], Topology]) -> Topology:
        """Instantiate the topology at this corner.

        The topology is built with the corner's process/temperature and its
        technology's supply voltage scaled by ``vdd_scale``.  When the
        factory is the :class:`Topology` subclass itself (the common
        case) — or any factory advertising ``supports_corner_kwargs``,
        such as a compiled zoo scenario — the corner instance is built
        directly from the factory's default technology card in one
        construction, instead of building a throwaway nominal instance
        first (which, for a zoo scenario, would also strip its
        declaration overrides in the rebuild).
        """
        if ((isinstance(topology_factory, type)
             and issubclass(topology_factory, Topology))
                or getattr(topology_factory, "supports_corner_kwargs",
                           False)):
            tech = topology_factory.default_technology()
            scaled_tech = dataclasses.replace(
                tech, vdd=tech.vdd * self.vdd_scale)
            return topology_factory(technology=scaled_tech,
                                    corner=self.process,
                                    temperature=self.temperature)
        topology = topology_factory()
        scaled_tech = dataclasses.replace(
            topology.technology, vdd=topology.technology.vdd * self.vdd_scale)
        rebuilt = type(topology)(technology=scaled_tech, corner=self.process,
                                 temperature=self.temperature)
        return rebuilt


def signoff_corners() -> list[CornerSpec]:
    """Typical + the two classic worst-case corners.

    * TT, nominal VDD, 27 C — the reference point;
    * SS, -10 % VDD, 125 C — slow devices, low headroom, hot (worst gain
      and bandwidth);
    * FF, +10 % VDD, -40 C — fast devices, high supply, cold (worst power
      and stability).
    """
    return [
        CornerSpec(Corner.TT, 1.0, ROOM_TEMPERATURE, "tt_nom_27c"),
        CornerSpec(Corner.SS, 0.9, 398.15, "ss_low_125c"),
        CornerSpec(Corner.FF, 1.1, 233.15, "ff_high_m40c"),
    ]


def typical_only() -> list[CornerSpec]:
    """Just the TT corner (for fast PEX-without-PVT experiments)."""
    return [CornerSpec(Corner.TT, 1.0, ROOM_TEMPERATURE, "tt_nom_27c")]
