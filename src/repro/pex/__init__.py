"""Layout, parasitic extraction, LVS and PVT corners.

This package stands in for the Berkeley Analog Generator (BAG) flow of
paper §III-D: from a sized schematic it generates a deterministic
pseudo-layout (device geometry and wiring-length estimates), extracts the
parasitic resistances and capacitances that layout adds, verifies the
extracted netlist against the schematic with a graph-isomorphism LVS
check, and simulates across process/voltage/temperature corners taking
the worst-case value of every spec — "we also consider different PVT
variations, taking the worst performing metric as the specification".

The essential property for the transfer-learning experiment is that PEX
results are a *systematic, design-dependent* perturbation of schematic
results (paper Fig. 14 bottom-right histogram), not random noise; wiring
parasitics here grow with device area and fanout exactly as a real floor
plan's would.

Beyond the paper's flow, :mod:`repro.pex.montecarlo` adds local-mismatch
Monte Carlo (Pelgrom law) with binomial yield estimation — the robustness
axis the paper leaves to future work.
"""

from repro.pex.corners import CornerSpec, signoff_corners, typical_only
from repro.pex.extraction import ExtractionRules, ParasiticExtractor, PexSimulator
from repro.pex.layout import DeviceFootprint, PseudoLayout, generate_layout
from repro.pex.lvs import lvs_compare, netlist_graph, reduce_extracted
from repro.pex.montecarlo import (
    MismatchModel,
    MonteCarloAnalysis,
    MonteCarloResult,
    YieldEstimate,
    apply_mismatch,
    estimate_yield,
)

__all__ = [
    "CornerSpec",
    "DeviceFootprint",
    "ExtractionRules",
    "MismatchModel",
    "MonteCarloAnalysis",
    "MonteCarloResult",
    "ParasiticExtractor",
    "PexSimulator",
    "PseudoLayout",
    "YieldEstimate",
    "apply_mismatch",
    "estimate_yield",
    "generate_layout",
    "lvs_compare",
    "netlist_graph",
    "reduce_extracted",
    "signoff_corners",
    "typical_only",
]
