"""Parasitic extraction and the PEX+PVT simulator wrapper.

:class:`ParasiticExtractor` annotates a sized netlist with the parasitics
its pseudo-layout implies:

* **wiring capacitance** — per-net ground capacitance proportional to the
  net's half-perimeter wirelength, plus a per-terminal via/contact cap;
* **access resistance** — series resistance into every MOSFET drain and
  source (contact + LDD), inversely proportional to device width, realised
  by splitting the terminal node.

:class:`PexSimulator` is the BAG stand-in the transfer experiment deploys
through: it builds the schematic, extracts it, solves it across PVT
corners, takes the worst-case value of every spec, and offers an
:meth:`PexSimulator.lvs_check` that verifies the extracted netlist's
device-level connectivity against the schematic (paper: "AutoCkt is able
to obtain 40 LVS passed designs").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.elements import Capacitor, Resistor
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import GROUND, Netlist
from repro.core.specs import SpecKind
from repro.errors import ConvergenceError, MeasurementError
from repro.pex.corners import CornerSpec, signoff_corners
from repro.pex.layout import PseudoLayout, generate_layout
from repro.pex.lvs import lvs_compare
from repro.sim.cache import SimulationCache, SimulationCounter
from repro.sim.dc import solve_dc
from repro.sim.stamp import StampPlan
from repro.topologies.base import CircuitSimulator, Topology
from repro.units import MICRO

#: Prefix of every element the extractor adds (LVS strips these).
PEX_PREFIX = "PEX_"


@dataclasses.dataclass(frozen=True)
class ExtractionRules:
    """Technology-style extraction coefficients."""

    #: Wiring capacitance per metre of estimated wirelength [F/m].
    #: 1 fF/um — HPWL underestimates true routed length, so the coefficient
    #: folds in a routing-overhead factor, as fast extractors do.
    c_wire_per_m: float = 1.0e-9
    #: Extra capacitance per device terminal on a net [F] (via + contact).
    c_terminal: float = 0.5e-15
    #: Access resistance coefficient [ohm * m]: R = rho / (W * m);
    #: 40 ohm for a 1 um wide device (contact + LDD).
    r_access_ohm_m: float = 40.0 * MICRO
    #: Floor for access resistance [ohm].
    r_access_min: float = 0.5


class ParasiticExtractor:
    """Annotates netlists with layout parasitics."""

    def __init__(self, rules: ExtractionRules | None = None):
        self.rules = rules or ExtractionRules()

    def extract(self, netlist: Netlist,
                layout: PseudoLayout | None = None) -> Netlist:
        """Return a new netlist: the input plus parasitic elements.

        Node names of the schematic are preserved (measurements still find
        their probe nodes); MOSFET drain/source terminals are moved onto
        new internal nodes behind access resistors.
        """
        layout = layout or generate_layout(netlist)
        rules = self.rules
        extracted = Netlist(f"{netlist.title}_pex")

        for element in netlist:
            if isinstance(element, Mosfet):
                d_int = f"{PEX_PREFIX}{element.name}_d"
                s_int = f"{PEX_PREFIX}{element.name}_s"
                r_acc = max(rules.r_access_ohm_m / (element.w * element.m),
                            rules.r_access_min)
                extracted.add(Resistor(f"{PEX_PREFIX}R_{element.name}_d",
                                       element.d, d_int, r_acc))
                extracted.add(Resistor(f"{PEX_PREFIX}R_{element.name}_s",
                                       element.s, s_int, r_acc))
                extracted.add(Mosfet(element.name, d_int, element.g, s_int,
                                     element.b, polarity=element.polarity,
                                     params=element.params, w=element.w,
                                     l=element.l, m=element.m))
            else:
                extracted.add(element)

        for net, hpwl in layout.net_hpwl.items():
            if net == GROUND:
                continue
            c_net = (rules.c_wire_per_m * hpwl
                     + rules.c_terminal * layout.net_terminals.get(net, 0))
            if c_net > 0.0:
                extracted.add(Capacitor(f"{PEX_PREFIX}C_{net}", net, GROUND,
                                        c_net))
        return extracted


class PexSimulator(CircuitSimulator):
    """Post-layout, PVT-corner-swept simulator for one topology.

    Parameters
    ----------
    topology_factory:
        Zero-argument callable building the topology; one instance is
        created per PVT corner (each carries the corner's device cards).
    corners:
        PVT corners to sweep; every spec reports its worst-case value
        across them (paper §III-D).
    """

    def __init__(self, topology_factory, corners: list[CornerSpec] | None = None,
                 rules: ExtractionRules | None = None, cache: bool = True):
        self.corners = corners if corners is not None else signoff_corners()
        if not self.corners:
            raise MeasurementError("PexSimulator needs at least one corner")
        self.extractor = ParasiticExtractor(rules)
        self._topologies: list[Topology] = [
            corner.apply(topology_factory) for corner in self.corners]
        # One structure cache per corner: extracted netlists keep their
        # structure across sizings (the extractor adds the same parasitic
        # elements for every sizing of a topology), so each corner's MNA
        # system is built once and restamped per evaluation.  StampPlan
        # falls back to a rebuild if a sizing ever changes the extracted
        # structure.
        self._plans: list[StampPlan] = [
            StampPlan(self._corner_builder(topology),
                      temperature=topology.temperature)
            for topology in self._topologies]
        reference = self._topologies[0]
        self.parameter_space = reference.parameter_space
        self.spec_space = reference.spec_space
        self.counter = SimulationCounter()
        self._cache = SimulationCache(50_000) if cache else None
        self._warm: dict[int, np.ndarray] = {}

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        indices = self.parameter_space.clip(indices)
        key = self.parameter_space.as_key(indices)
        if self._cache is not None:
            if key in self._cache:
                self.counter.cached += 1
            else:
                self.counter.fresh += 1
            return dict(self._cache.get_or_compute(
                key, lambda: self._evaluate_fresh(indices)))
        self.counter.fresh += 1
        return self._evaluate_fresh(indices)

    def _evaluate_fresh(self, indices: np.ndarray) -> dict[str, float]:
        values = self.parameter_space.values(indices)
        worst: dict[str, float] = {}
        for c_idx, topology in enumerate(self._topologies):
            specs = self._simulate_corner(c_idx, topology, values)
            for spec in self.spec_space:
                v = specs[spec.name]
                if spec.name not in worst:
                    worst[spec.name] = v
                elif spec.kind is SpecKind.LOWER_BOUND:
                    worst[spec.name] = min(worst[spec.name], v)
                elif spec.kind is SpecKind.RANGE:
                    worst[spec.name] = min(worst[spec.name], v)
                else:  # UPPER_BOUND / MINIMIZE: bigger is worse
                    worst[spec.name] = max(worst[spec.name], v)
        return worst

    def _corner_builder(self, topology: Topology):
        """``values -> extracted netlist`` builder for one corner's plan."""
        def build(values: dict[str, float]):
            return self.extractor.extract(topology.build(values))
        return build

    def _simulate_corner(self, c_idx: int, topology: Topology,
                         values: dict[str, float]) -> dict[str, float]:
        system = self._plans[c_idx].restamp(values)
        op = None
        warm = self._warm.get(c_idx)
        if warm is not None and warm.shape == (system.size,):
            try:
                op = solve_dc(system, x0=warm)
            except ConvergenceError:
                op = None
        if op is None:
            try:
                op = solve_dc(system)
            except ConvergenceError:
                self._warm.pop(c_idx, None)
                return topology.failure_measurement()
        self._warm[c_idx] = op.x.copy()
        try:
            return topology.measure(system, op)
        except MeasurementError:
            return topology.failure_measurement()

    # -- verification -------------------------------------------------------------
    def lvs_check(self, indices: np.ndarray) -> bool:
        """Layout-versus-schematic check of the extracted design."""
        values = self.parameter_space.values(self.parameter_space.clip(indices))
        topology = self._topologies[0]
        schematic = topology.build(values)
        extracted = self.extractor.extract(schematic)
        return lvs_compare(schematic, extracted, parasitic_prefix=PEX_PREFIX)

    def layout_for(self, indices: np.ndarray) -> PseudoLayout:
        """The pseudo-layout of a sizing (for reporting/examples)."""
        values = self.parameter_space.values(self.parameter_space.clip(indices))
        return generate_layout(self._topologies[0].build(values))
