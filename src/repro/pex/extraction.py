"""Parasitic extraction and the PEX+PVT simulator wrapper.

:class:`ParasiticExtractor` annotates a sized netlist with the parasitics
its pseudo-layout implies:

* **wiring capacitance** — per-net ground capacitance proportional to the
  net's half-perimeter wirelength, plus a per-terminal via/contact cap;
* **access resistance** — series resistance into every MOSFET drain and
  source (contact + LDD), inversely proportional to device width, realised
  by splitting the terminal node;
* **mesh mode** (``ExtractionRules.mesh_segments > 0``) — each net's
  wiring parasitics become a distributed series-R / shunt-C stub of that
  many segments instead of one lumped capacitor.  The extracted netlist
  grows by ``2 * segments`` elements per net, which pushes post-layout
  systems past the sparse-engine threshold (:mod:`repro.sim.engine`) —
  the high-fidelity large-netlist PEX scenario.

:class:`PexSimulator` is the BAG stand-in the transfer experiment deploys
through: it builds the schematic, extracts it, solves it across PVT
corners, takes the worst-case value of every spec, and offers an
:meth:`PexSimulator.lvs_check` that verifies the extracted netlist's
device-level connectivity against the schematic (paper: "AutoCkt is able
to obtain 40 LVS passed designs").

Stacked corner evaluation
-------------------------
A full PVT signoff of B designs is one ``(B*K, n, n)`` problem: every
corner of every design is a same-structure MNA snapshot (the extractor
adds identical parasitic elements for every sizing, and corners only
change device cards, VDD and temperature — values, not structure).
:meth:`PexSimulator.evaluate` and :meth:`PexSimulator.evaluate_batch`
therefore fill one corner-major :class:`~repro.sim.batch.SystemStack`
from the per-corner :class:`~repro.sim.stamp.StampPlan` caches, find all
operating points in a single batched damped-Newton call, measure the
whole stack through the topology's stacked measurement path, and reduce
each spec worst-case over the corner axis — replacing the historical
corner-by-corner loop (kept as :meth:`PexSimulator.evaluate_percorner`
for equivalence testing and benchmarking).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.elements import Capacitor, Resistor
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import GROUND, Netlist
from repro.core.specs import SpecKind
from repro.errors import ConvergenceError, MeasurementError
from repro.pex.corners import CornerSpec, signoff_corners
from repro.pex.layout import PseudoLayout, generate_layout
from repro.pex.lvs import lvs_compare
from repro.sim.batch import SystemStack, solve_dc_batch
from repro.sim.cache import SimulationCache, SimulationCounter, sizing_key
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.stamp import StampPlan
from repro.sim.store import SCHEMA_VERSION, get_store, scope_digest
from repro.topologies.base import CircuitSimulator, Topology
from repro.units import MICRO

#: Prefix of every element the extractor adds (LVS strips these).
PEX_PREFIX = "PEX_"


def mesh_segment_values(r_net: float, c_net: float,
                        segments: int) -> tuple[float, float]:
    """Per-segment ``(R, C)`` of a net's distributed mesh stub.

    The single source of the split formula: both the cold extraction
    (:meth:`ParasiticExtractor._add_mesh`) and the in-place updater fast
    path must produce identical element values, or a warm restamp would
    silently drift from a fresh build.
    """
    return max(r_net / segments, 1e-3), c_net / segments


@dataclasses.dataclass(frozen=True)
class ExtractionRules:
    """Technology-style extraction coefficients."""

    #: Wiring capacitance per metre of estimated wirelength [F/m].
    #: 1 fF/um — HPWL underestimates true routed length, so the coefficient
    #: folds in a routing-overhead factor, as fast extractors do.
    c_wire_per_m: float = 1.0e-9
    #: Extra capacitance per device terminal on a net [F] (via + contact).
    c_terminal: float = 0.5e-15
    #: Access resistance coefficient [ohm * m]: R = rho / (W * m);
    #: 40 ohm for a 1 um wide device (contact + LDD).
    r_access_ohm_m: float = 40.0 * MICRO
    #: Floor for access resistance [ohm].
    r_access_min: float = 0.5
    #: Wire sheet resistance per metre of estimated wirelength [ohm/m]
    #: (0.1 ohm/um of mid-level metal); only used by the mesh mode.
    r_wire_per_m: float = 0.1 / MICRO
    #: High-fidelity mesh mode: when > 0, each net's wiring parasitics
    #: are extracted as this many series-R / shunt-C segments (a
    #: distributed RC stub off the net) instead of one lumped ground
    #: capacitor.  Per-segment parasitics multiply the extracted netlist
    #: size, which is exactly the post-layout regime the sparse engine
    #: (:mod:`repro.sim.sparse`) is for.
    mesh_segments: int = 0


class ParasiticExtractor:
    """Annotates netlists with layout parasitics."""

    def __init__(self, rules: ExtractionRules | None = None):
        self.rules = rules or ExtractionRules()

    def extract(self, netlist: Netlist,
                layout: PseudoLayout | None = None) -> Netlist:
        """Return a new netlist: the input plus parasitic elements.

        Node names of the schematic are preserved (measurements still find
        their probe nodes); MOSFET drain/source terminals are moved onto
        new internal nodes behind access resistors.
        """
        layout = layout or generate_layout(netlist)
        rules = self.rules
        extracted = Netlist(f"{netlist.title}_pex")

        for element in netlist:
            if isinstance(element, Mosfet):
                d_int = f"{PEX_PREFIX}{element.name}_d"
                s_int = f"{PEX_PREFIX}{element.name}_s"
                r_acc = max(rules.r_access_ohm_m / (element.w * element.m),
                            rules.r_access_min)
                extracted.add(Resistor(f"{PEX_PREFIX}R_{element.name}_d",
                                       element.d, d_int, r_acc))
                extracted.add(Resistor(f"{PEX_PREFIX}R_{element.name}_s",
                                       element.s, s_int, r_acc))
                extracted.add(Mosfet(element.name, d_int, element.g, s_int,
                                     element.b, polarity=element.polarity,
                                     params=element.params, w=element.w,
                                     l=element.l, m=element.m))
            else:
                extracted.add(element)

        for net, hpwl in layout.net_hpwl.items():
            if net == GROUND:
                continue
            c_net = (rules.c_wire_per_m * hpwl
                     + rules.c_terminal * layout.net_terminals.get(net, 0))
            if c_net <= 0.0:
                continue
            if rules.mesh_segments > 0:
                self._add_mesh(extracted, net, c_net,
                               rules.r_wire_per_m * hpwl)
            else:
                extracted.add(Capacitor(f"{PEX_PREFIX}C_{net}", net, GROUND,
                                        c_net))
        return extracted

    def _add_mesh(self, extracted: Netlist, net: str, c_net: float,
                  r_net: float) -> None:
        """Distributed RC stub for one net (mesh mode).

        The net's total wiring capacitance ``c_net`` and resistance
        ``r_net`` are split over ``mesh_segments`` series-R / shunt-C
        sections hanging off the net: DC connectivity is untouched (the
        stub carries no DC current, and LVS collapses it away), but the
        AC/transient load is a diffusive RC line instead of a single
        pole — per-segment parasitics, as a field-solver-grade extractor
        would report.
        """
        m = self.rules.mesh_segments
        r_seg, c_seg = mesh_segment_values(r_net, c_net, m)
        prev = net
        for k in range(1, m + 1):
            node = f"{PEX_PREFIX}w_{net}__{k}"
            extracted.add(Resistor(f"{PEX_PREFIX}RW_{net}__{k}", prev, node,
                                   r_seg))
            extracted.add(Capacitor(f"{PEX_PREFIX}C_{net}__{k}", node, GROUND,
                                    c_seg))
            prev = node


class PexSimulator(CircuitSimulator):
    """Post-layout, PVT-corner-swept simulator for one topology.

    Parameters
    ----------
    topology_factory:
        Zero-argument callable building the topology; one instance is
        created per PVT corner (each carries the corner's device cards).
    corners:
        PVT corners to sweep; every spec reports its worst-case value
        across them (paper §III-D).
    """

    def __init__(self, topology_factory, corners: list[CornerSpec] | None = None,
                 rules: ExtractionRules | None = None, cache: bool = True):
        self.corners = corners if corners is not None else signoff_corners()
        if not self.corners:
            raise MeasurementError("PexSimulator needs at least one corner")
        self._topology_factory = topology_factory
        self._rules = rules
        self.extractor = ParasiticExtractor(rules)
        self._topologies: list[Topology] = [
            corner.apply(topology_factory) for corner in self.corners]
        # One structure cache per corner: extracted netlists keep their
        # structure across sizings (the extractor adds the same parasitic
        # elements for every sizing of a topology), so each corner's MNA
        # system is built once and restamped per evaluation — through the
        # in-place updater fast path (schematic values via the topology's
        # own update_netlist, parasitic values recomputed directly) when
        # the topology supports it.  StampPlan falls back to a rebuild if
        # a sizing ever changes the extracted structure.
        self._plans: list[StampPlan] = [
            StampPlan(self._corner_builder(topology),
                      temperature=topology.temperature,
                      updater=self._corner_updater(topology))
            for topology in self._topologies]
        self._sch_netlist: Netlist | None = None
        self._cnet_cache: dict[tuple, dict[str, tuple[float, float]]] = {}
        reference = self._topologies[0]
        self.parameter_space = reference.parameter_space
        self.spec_space = reference.spec_space
        self.counter = SimulationCounter()
        self._cache = SimulationCache(50_000) if cache else None
        self._warm: dict[int, np.ndarray] = {}
        self._corner_ref: dict[int, np.ndarray | None] = {}
        self._scope: str | None = None
        self._warm_slices: list[int] = []
        self._last_warm_rows: list[int] = []

    # -- persistent store -----------------------------------------------------
    def _store_scope(self) -> str:
        """Content digest namespacing this signoff configuration in the
        persistent store: schema version, topology identity, extraction
        rules, the full corner list, parameter grids, spec names, the
        extracted netlist's structure signature and the resolved engine
        backend.  Worst-case-reduced spec rows live under this scope;
        per-corner operating points under :meth:`_corner_scope`."""
        if self._scope is None:
            t = self._topologies[0]
            center = self.parameter_space.values(self.parameter_space.center)
            system = self._plans[0].restamp(center)
            self._scope = scope_digest((
                SCHEMA_VERSION, "pex", type(t).__name__, t.name,
                repr(t.technology), repr(self.extractor.rules),
                repr(tuple(self.corners)),
                repr(self.parameter_space.params),
                ",".join(self.spec_space.names),
                system.engine,
                repr(system.netlist.structure_signature())))
        return self._scope

    def _krylov_systems(self) -> list:
        """Every corner plan's cached system (iterative solve counters
        drain from all of them at publish time)."""
        return [plan.system for plan in self._plans
                if plan.system is not None]

    def _corner_scope(self, k: int) -> str:
        """Warm-start namespace of corner ``k`` (operating points of
        different corners must never seed each other)."""
        return f"{self._store_scope()}:corner={k}"

    def _consume_warm_rows(self) -> list[int]:
        """Designs of the last fresh batch with any store-seeded corner
        slice (cleared on read)."""
        rows = self._last_warm_rows
        self._last_warm_rows = []
        return rows

    def reset_warm_start(self) -> None:
        """Drop the per-trajectory (per-corner) warm-start state; the
        canonical corner references and the content-addressed store
        seeds survive — they carry no trajectory history."""
        self._warm.clear()

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        """Worst-case specs of one sizing across all corners (memoised
        when caching is on, replayed from the persistent ``REPRO_CACHE``
        store when any run of this signoff configuration has evaluated
        the sizing before)."""
        indices = self.parameter_space.clip(indices)
        key = sizing_key(indices)
        if self._cache is not None and key in self._cache:
            self.counter.cached += 1
            return dict(self._cache.get_or_compute(key, dict))
        store = get_store()
        if store is not None:
            row = store.get_result(self._store_scope(), key)
            if row is not None:
                self.counter.cached += 1
                spec = self._row_to_spec(row)
                if self._cache is not None:
                    self._cache.get_or_compute(key, lambda: dict(spec))
                return dict(spec)
        self.counter.fresh += 1
        result = self._evaluate_fresh(indices)
        if self._consume_warm_rows():
            self.counter.warm_started += 1
        if store is not None:
            store.put_result(self._store_scope(), key,
                             self._spec_to_row(result))
        if self._cache is not None:
            result = self._cache.get_or_compute(key, lambda: result)
        return dict(result)

    def evaluate_batch(self, indices_2d: np.ndarray) -> list[dict[str, float]]:
        """Evaluate B sizings across all corners in one stacked solve,
        sharded across worker processes when ``REPRO_SHARDS`` asks for
        them."""
        return self._evaluate_batch_cached(
            indices_2d, self._fresh_batch, self._cache)

    def _inprocess_batch(self, values_list: list[dict[str, float]]
                         ) -> list[dict[str, float]]:
        """Batched engine entry for distinct cache misses (corner stack)."""
        return self._evaluate_fresh_batch(values_list)

    def shard_factory(self):
        """Picklable replica recipe for shard workers, or None.

        Topology classes and corner-kwargs factories (compiled zoo
        scenarios declare ``supports_corner_kwargs`` and pickle whole —
        the same duck check as :meth:`CornerSpec.apply`) shard; ad-hoc
        closures are not spawn-safe and keep the in-process path.
        """
        factory = self._topology_factory
        if not (isinstance(factory, type)
                or getattr(factory, "supports_corner_kwargs", False)):
            return None  # closure factories are not spawn-safe
        return _PexShardFactory(factory, list(self.corners), self._rules)

    def _evaluate_fresh(self, indices: np.ndarray) -> dict[str, float]:
        values = self.parameter_space.values(indices)
        return self._evaluate_fresh_batch([values])[0]

    def _evaluate_fresh_batch(self, values_list: list[dict[str, float]]
                              ) -> list[dict[str, float]]:
        """Corner-stacked evaluation of B sizings (see module docstring).

        All ``B * K`` (design, corner) systems solve in one batched
        damped-Newton call, warm-started from each corner's canonical
        grid-centre operating point; the reference topology's stacked
        measurement runs over the whole stack (its spec extraction only
        consumes stacked matrices, solutions and per-slice metadata, so
        one call serves every corner), and the per-design result is the
        worst spec value across that design's corner slices.
        """
        B, K = len(values_list), len(self.corners)
        stack: SystemStack | None = None
        for k, plan in enumerate(self._plans):
            stack = plan.stack(values_list, into=stack, offset=k * B,
                               n_slices=B * K, n_corners=K)
        result = solve_dc_batch(
            stack, x0=self._corner_warm_start(stack, B, values_list))
        if self._warm_slices and not result.converged.all():
            self._warm_slice_fallback(values_list, result, B)
        self._record_corner_seeds(values_list, result, B)
        specs = self._topologies[0].measure_batch(stack, result)
        if specs is None:
            specs = self._measure_slices(values_list, result)
        return self._reduce_worst_case(specs, B, K)

    def _corner_warm_start(self, stack: SystemStack, B: int,
                           values_list: list[dict[str, float]] | None = None
                           ) -> np.ndarray | None:
        """Stacked Newton seed: each corner's canonical centre operating
        point (solved cold once, cached), tiled over that corner's block.
        Falls back to cold zeros for corners whose centre fails.

        When ``values_list`` is given and the persistent store is wired
        in, each (design, corner) slice's seed is upgraded to the
        nearest previously-converged operating point recorded under that
        corner's scope; the upgraded slices are kept in
        ``_warm_slices`` for the convergence fallback, and the affected
        designs published through :meth:`_consume_warm_rows`."""
        seeds = np.zeros((stack.n_designs, stack.size))
        center = self.parameter_space.values(self.parameter_space.center)
        for k, plan in enumerate(self._plans):
            if (k not in self._corner_ref
                    or (self._corner_ref[k] is not None
                        and self._corner_ref[k].shape != (stack.size,))):
                # One cold solve per corner; a failure is memoised too
                # (None), so a non-convergent centre is not retried on
                # every batch.
                try:
                    self._corner_ref[k] = solve_dc(plan.restamp(center)).x.copy()
                except ConvergenceError:
                    self._corner_ref[k] = None
            ref = self._corner_ref[k]
            if ref is not None:
                seeds[k * B:(k + 1) * B] = ref
        self._warm_slices = []
        self._last_warm_rows = []
        store = get_store()
        if values_list is None or store is None:
            return seeds
        warm_designs: set[int] = set()
        keys = [sizing_key(self.parameter_space.indices_of(values))
                for values in values_list]
        for k in range(len(self._plans)):
            scope = self._corner_scope(k)
            for i, key in enumerate(keys):
                near = store.nearest_seed(scope, key, stack.size)
                if near is None:
                    continue
                s = k * B + i
                seeds[s] = near[0]
                self._warm_slices.append(s)
                warm_designs.add(i)
        self._last_warm_rows = sorted(warm_designs)
        return seeds

    def _warm_slice_fallback(self, values_list, result, B: int) -> None:
        """Re-solve failed store-seeded slices from the canonical seed.

        Mirrors :meth:`repro.topologies.base.Topology._warm_fallback`
        corner-wise: a slice the canonical batch would have converged
        must not fail just because its store seed was a poor guess."""
        for s in self._warm_slices:
            if result.converged[s]:
                continue
            k, i = divmod(s, B)
            system = self._plans[k].restamp(values_list[i])
            ref = self._corner_ref.get(k)
            seed = ref if (ref is not None
                           and ref.shape == (system.size,)) else None
            try:
                op = solve_dc(system, x0=seed)
            except ConvergenceError:
                continue
            result.x[s] = op.x
            result.converged[s] = True
            result.iterations[s] = op.iterations
            result.residual_norm[s] = op.residual_norm

    def _record_corner_seeds(self, values_list, result, B: int) -> None:
        """Record every converged slice's operating point under its
        corner's warm-start scope."""
        store = get_store()
        if store is None:
            return
        keys = [sizing_key(self.parameter_space.indices_of(values))
                for values in values_list]
        for k in range(len(self._plans)):
            scope = self._corner_scope(k)
            for i, key in enumerate(keys):
                s = k * B + i
                if result.converged[s]:
                    store.record_seed(scope, key, result.x[s])

    def _measure_slices(self, values_list, result) -> list[dict[str, float]]:
        """Scalar per-slice measurement fallback (topologies without a
        stacked measurement path)."""
        B = len(values_list)
        specs: list[dict[str, float]] = []
        for k, (plan, topology) in enumerate(zip(self._plans,
                                                 self._topologies)):
            for i, values in enumerate(values_list):
                s = k * B + i
                system = plan.restamp(values)
                try:
                    if result.converged[s]:
                        op = OperatingPoint(system, result.x[s].copy(),
                                            int(result.iterations[s]),
                                            float(result.residual_norm[s]))
                    else:
                        op = solve_dc(system)
                    specs.append(topology.measure(system, op))
                except (ConvergenceError, MeasurementError):
                    specs.append(topology.failure_measurement())
        return specs

    def _reduce_worst_case(self, specs: list[dict[str, float]], B: int,
                           K: int) -> list[dict[str, float]]:
        """Worst spec value across each design's corner slices."""
        worst_list: list[dict[str, float]] = []
        for i in range(B):
            worst: dict[str, float] = {}
            for k in range(K):
                corner_specs = specs[k * B + i]
                for spec in self.spec_space:
                    v = corner_specs[spec.name]
                    if spec.name not in worst:
                        worst[spec.name] = v
                    elif spec.kind is SpecKind.LOWER_BOUND:
                        worst[spec.name] = min(worst[spec.name], v)
                    elif spec.kind is SpecKind.RANGE:
                        worst[spec.name] = min(worst[spec.name], v)
                    else:  # UPPER_BOUND / MINIMIZE: bigger is worse
                        worst[spec.name] = max(worst[spec.name], v)
            worst_list.append(worst)
        return worst_list

    def evaluate_percorner(self, indices: np.ndarray) -> dict[str, float]:
        """Historical corner-by-corner loop (no stacking, no cache).

        Kept as the equivalence/benchmark baseline for the stacked path:
        one warm-started scalar solve and one scalar measurement per
        corner.
        """
        values = self.parameter_space.values(self.parameter_space.clip(indices))
        specs = [self._simulate_corner(c, topology, values)
                 for c, topology in enumerate(self._topologies)]
        return self._reduce_worst_case(specs, 1, len(self.corners))[0]

    def _corner_builder(self, topology: Topology):
        """``values -> extracted netlist`` builder for one corner's plan."""
        def build(values: dict[str, float]):
            return self.extractor.extract(topology.build(values))
        return build

    def _corner_updater(self, topology: Topology):
        """In-place resize of a previously-extracted netlist (fast path).

        The schematic elements are updated through the topology's own
        :meth:`~repro.topologies.base.Topology.update_netlist` (element
        names survive extraction, so the mapping applies directly to the
        extracted netlist), and the parasitic values are recomputed with
        the extractor's formulas: access resistance from the resized
        device widths, wiring capacitance from the (corner-independent,
        per-sizing cached) pseudo-layout of the schematic.  Any structural
        surprise returns False, which makes the plan fall back to a full
        build + extract.
        """
        rules = self.extractor.rules

        def update(extracted: Netlist, values: dict[str, float]) -> bool:
            if not topology.update_netlist(extracted, values):
                return False
            cap_prefix = f"{PEX_PREFIX}C_"
            mesh = rules.mesh_segments
            n_caps = 0
            try:
                for element in extracted:
                    if isinstance(element, Mosfet):
                        r_acc = max(
                            rules.r_access_ohm_m / (element.w * element.m),
                            rules.r_access_min)
                        name = element.name
                        extracted[f"{PEX_PREFIX}R_{name}_d"].resistance = r_acc
                        extracted[f"{PEX_PREFIX}R_{name}_s"].resistance = r_acc
                    elif element.name.startswith(cap_prefix):
                        n_caps += 1
                pars = self._wire_parasitics(values)
                if len(pars) * max(mesh, 1) != n_caps:
                    # A wire cap appeared or vanished: structure changed.
                    return False
                for net, (c_net, r_net) in pars.items():
                    if mesh > 0:
                        r_seg, c_seg = mesh_segment_values(r_net, c_net, mesh)
                        for k in range(1, mesh + 1):
                            extracted[
                                f"{PEX_PREFIX}RW_{net}__{k}"].resistance = r_seg
                            extracted[
                                f"{cap_prefix}{net}__{k}"].capacitance = c_seg
                    else:
                        extracted[f"{cap_prefix}{net}"].capacitance = c_net
            except KeyError:
                return False
            return True

        return update

    def _wire_parasitics(self, values: dict[str, float]
                         ) -> dict[str, tuple[float, float]]:
        """Per-net ``(wiring capacitance, wiring resistance)`` of a sizing.

        The pseudo-layout only depends on the sizing — never on the PVT
        corner — so one computation (memoised per sizing) serves all
        corner plans of an evaluation.
        """
        key = tuple(sorted(values.items()))
        hit = self._cnet_cache.get(key)
        if hit is not None:
            return hit
        reference = self._topologies[0]
        if (self._sch_netlist is None
                or not reference.update_netlist(self._sch_netlist, values)):
            self._sch_netlist = reference.build(values)
        layout = generate_layout(self._sch_netlist)
        rules = self.extractor.rules
        nets: dict[str, tuple[float, float]] = {}
        for net, hpwl in layout.net_hpwl.items():
            if net == GROUND:
                continue
            c_net = (rules.c_wire_per_m * hpwl
                     + rules.c_terminal * layout.net_terminals.get(net, 0))
            if c_net > 0.0:
                nets[net] = (c_net, rules.r_wire_per_m * hpwl)
        if len(self._cnet_cache) > 4096:
            self._cnet_cache.clear()
        self._cnet_cache[key] = nets
        return nets

    def _simulate_corner(self, c_idx: int, topology: Topology,
                         values: dict[str, float]) -> dict[str, float]:
        system = self._plans[c_idx].restamp(values)
        op = None
        warm = self._warm.get(c_idx)
        if warm is not None and warm.shape == (system.size,):
            try:
                op = solve_dc(system, x0=warm)
            except ConvergenceError:
                op = None
        if op is None:
            try:
                op = solve_dc(system)
            except ConvergenceError:
                self._warm.pop(c_idx, None)
                return topology.failure_measurement()
        self._warm[c_idx] = op.x.copy()
        try:
            return topology.measure(system, op)
        except MeasurementError:
            return topology.failure_measurement()

    # -- verification -------------------------------------------------------------
    def lvs_check(self, indices: np.ndarray) -> bool:
        """Layout-versus-schematic check of the extracted design."""
        values = self.parameter_space.values(self.parameter_space.clip(indices))
        topology = self._topologies[0]
        schematic = topology.build(values)
        extracted = self.extractor.extract(schematic)
        return lvs_compare(schematic, extracted, parasitic_prefix=PEX_PREFIX)

    def layout_for(self, indices: np.ndarray) -> PseudoLayout:
        """The pseudo-layout of a sizing (for reporting/examples)."""
        values = self.parameter_space.values(self.parameter_space.clip(indices))
        return generate_layout(self._topologies[0].build(values))


@dataclasses.dataclass
class _PexShardFactory:
    """Picklable recipe rebuilding a :class:`PexSimulator` replica in a
    shard worker (caches off: the parent dedupes before sharding).

    ``topology_factory`` is a :class:`Topology` subclass or a picklable
    corner-kwargs factory (e.g. a compiled zoo scenario)."""

    topology_factory: object
    corners: list[CornerSpec]
    rules: ExtractionRules | None

    def __call__(self) -> PexSimulator:
        return PexSimulator(self.topology_factory, corners=self.corners,
                            rules=self.rules, cache=False)
