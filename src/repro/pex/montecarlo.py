"""Monte-Carlo device mismatch and yield analysis.

PVT corners (:mod:`repro.pex.corners`) capture *global* process spread —
every device on the die shifts together.  Real silicon adds *local*
mismatch: each transistor's threshold and gain factor deviate
independently, with standard deviation shrinking as the square root of
gate area (the Pelgrom law):

    sigma(dVth)       = A_vt   / sqrt(W * L * m)
    sigma(dbeta/beta) = A_beta / sqrt(W * L * m)

This module samples mismatched instances of a sized circuit, re-simulates
each, and summarises the spec distributions — including the *yield*
against a target specification, which is what a designer actually signs
off.  It is the natural extension of the paper's PEX/PVT flow (its
"future work" axis of robustness) and exercises exactly the same
build/solve/measure path as the schematic simulator.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.core.reward import RewardSpec, compute_reward
from repro.errors import ConvergenceError, MeasurementError, TopologyError
from repro.sim.batch import SystemStack, solve_dc_batch
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.stamp import StampPlan
from repro.sim.system import MnaSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import Topology


@dataclasses.dataclass(frozen=True)
class MismatchModel:
    """Pelgrom-law mismatch coefficients.

    Defaults are 45 nm-class: ``a_vth`` = 3.5 mV*um and ``a_beta`` = 1 %*um
    (per sqrt-area in um).  Both are expressed in SI (V*m and m) so they
    divide device areas in m^2 directly.
    """

    a_vth: float = 3.5e-9    # V * m  (3.5 mV * um)
    a_beta: float = 1.0e-8   # m      (1 % * um)

    def __post_init__(self):
        if self.a_vth < 0.0 or self.a_beta < 0.0:
            raise TopologyError("mismatch coefficients must be >= 0")

    def sigma_vth(self, w: float, l: float, m: float = 1.0) -> float:
        """Threshold mismatch sigma [V] for a device of area W*L*m."""
        return self.a_vth / math.sqrt(w * l * m)

    def sigma_beta(self, w: float, l: float, m: float = 1.0) -> float:
        """Relative gain-factor mismatch sigma for a device of area W*L*m."""
        return self.a_beta / math.sqrt(w * l * m)


def apply_mismatch(netlist: Netlist, model: MismatchModel,
                   rng: np.random.Generator) -> int:
    """Perturb every MOSFET in ``netlist`` with an independent mismatch draw.

    Returns the number of devices perturbed.  The perturbation replaces
    each device's technology card with a copy whose ``vth0`` is shifted
    and ``kp`` scaled, so downstream DC/AC/noise analyses see a coherent
    device.
    """
    n = 0
    for element in netlist.elements:
        if not isinstance(element, Mosfet):
            continue
        sigma_v = model.sigma_vth(element.w, element.l, element.m)
        sigma_b = model.sigma_beta(element.w, element.l, element.m)
        dvth = rng.normal(0.0, sigma_v) if sigma_v > 0.0 else 0.0
        dbeta = rng.normal(0.0, sigma_b) if sigma_b > 0.0 else 0.0
        params = element.params
        element.params = dataclasses.replace(
            params,
            vth0=params.vth0 + dvth,
            kp=params.kp * max(1.0 + dbeta, 0.05),
        )
        n += 1
    return n


@dataclasses.dataclass
class MonteCarloResult:
    """Spec distributions over mismatch trials of one sizing."""

    values: dict[str, float]                 # the sized design (SI values)
    specs: dict[str, np.ndarray]             # per-spec sample arrays
    n_trials: int
    n_failed: int                            # non-convergent trials

    def mean(self, name: str) -> float:
        """Sample mean of one spec over the trials."""
        return float(np.mean(self.specs[name]))

    def std(self, name: str) -> float:
        """Sample standard deviation of one spec over the trials."""
        arr = self.specs[name]
        return float(np.std(arr, ddof=1)) if len(arr) > 1 else 0.0

    def quantile(self, name: str, q: float) -> float:
        """Sample quantile of one spec over the trials."""
        return float(np.quantile(self.specs[name], q))

    def sigma_fraction(self, name: str) -> float:
        """Relative spread sigma/|mean| (0 when the mean is 0)."""
        mu = self.mean(name)
        return self.std(name) / abs(mu) if mu else 0.0


class MonteCarloAnalysis:
    """Mismatch Monte Carlo over one topology.

    Parameters
    ----------
    topology:
        The circuit; trials rebuild its testbench from scratch so no
        warm-start state leaks between draws.
    model:
        Pelgrom coefficients.
    """

    def __init__(self, topology: "Topology",
                 model: MismatchModel | None = None):
        self.topology = topology
        self.model = model or MismatchModel()

    def run_trial(self, values: dict[str, float],
                  rng: np.random.Generator) -> dict[str, float] | None:
        """One mismatch draw: build, perturb, solve, measure.

        Returns None when the perturbed circuit fails to converge or
        measure (counted separately by :meth:`run`).
        """
        netlist = self.topology.build(values)
        apply_mismatch(netlist, self.model, rng)
        system = MnaSystem(netlist, temperature=self.topology.temperature)
        try:
            op = solve_dc(system)
            return self.topology.measure(system, op)
        except (ConvergenceError, MeasurementError):
            return None

    #: Mismatch trials solved per stacked batch.
    BATCH_TRIALS = 32

    def _run_batched(self, values: dict[str, float], rng: np.random.Generator,
                     n_trials: int):
        """Yield lists of per-trial spec dicts (None = failed trial).

        Trials share the netlist structure (mismatch only perturbs device
        cards), so each chunk of perturbed netlists restamps into one
        :class:`~repro.sim.batch.SystemStack` and solves with a single
        batched Newton — the same sample-stacked slices the corner-stacked
        PEX sweep uses.  When the topology has a stacked measurement path
        (``measure_batch``), converged trials are measured in one stacked
        call too; trials whose batched solve fails — or whose stacked
        measurement reports the pessimistic failure value — are retried
        with the scalar solver (full gmin/source machinery) before being
        declared failed.
        """
        plan = StampPlan(self.topology.build,
                         temperature=self.topology.temperature)
        done = 0
        failure = self.topology.failure_measurement()
        while done < n_trials:
            chunk = min(self.BATCH_TRIALS, n_trials - done)
            netlists = []
            for _ in range(chunk):
                netlist = self.topology.build(values)
                apply_mismatch(netlist, self.model, rng)
                netlists.append(netlist)
            stack = None
            for i, netlist in enumerate(netlists):
                system = plan.restamp_netlist(netlist)
                if stack is None:
                    stack = SystemStack(system, chunk)
                stack.set_design(i, system, values=values)
            result = solve_dc_batch(stack)
            stacked = self.topology.measure_batch(stack, result)
            batch: list[dict[str, float] | None] = []
            for i, netlist in enumerate(netlists):
                if (stacked is not None and result.converged[i]
                        and stacked[i] != failure):
                    batch.append(stacked[i])
                    continue
                system = plan.restamp_netlist(netlist)
                try:
                    if result.converged[i] and stacked is None:
                        op = OperatingPoint(system, result.x[i].copy(),
                                            int(result.iterations[i]),
                                            float(result.residual_norm[i]))
                    else:
                        op = solve_dc(system)
                    batch.append(self.topology.measure(system, op))
                except (ConvergenceError, MeasurementError):
                    batch.append(None)
            yield batch
            done += chunk

    def run(self, indices: np.ndarray | None = None,
            values: dict[str, float] | None = None,
            n_trials: int = 100, seed: int = 0) -> MonteCarloResult:
        """Run ``n_trials`` mismatch draws of one sizing.

        Trials are solved in stacked batches (see :meth:`_run_batched`);
        the sizing is given either as grid ``indices`` or as physical
        ``values`` (exactly one of the two).
        """
        if (indices is None) == (values is None):
            raise TopologyError("give exactly one of indices/values")
        if n_trials < 2:
            raise TopologyError("Monte Carlo needs n_trials >= 2")
        if values is None:
            space = self.topology.parameter_space
            values = space.values(space.clip(np.asarray(indices)))
        rng = np.random.default_rng(seed)
        traces: dict[str, list[float]] = {}
        failed = 0
        for batch in self._run_batched(values, rng, n_trials):
            for specs in batch:
                if specs is None:
                    failed += 1
                    continue
                for name, value in specs.items():
                    traces.setdefault(name, []).append(float(value))
        if not traces:
            raise ConvergenceError(
                f"all {n_trials} Monte-Carlo trials failed to converge")
        return MonteCarloResult(
            values=dict(values),
            specs={k: np.asarray(v) for k, v in traces.items()},
            n_trials=n_trials,
            n_failed=failed,
        )


@dataclasses.dataclass(frozen=True)
class YieldEstimate:
    """Binomial yield of a sizing against a target specification."""

    passed: int
    trials: int
    ci_low: float
    ci_high: float

    @property
    def rate(self) -> float:
        return self.passed / self.trials


def estimate_yield(result: MonteCarloResult, target: dict[str, float],
                   spec_space, reward: RewardSpec | None = None,
                   confidence: float = 0.95) -> YieldEstimate:
    """Fraction of Monte-Carlo trials meeting ``target`` (with Wilson CI).

    Failed (non-convergent) trials count as fails — silicon that does not
    bias up does not ship.
    """
    reward = reward or RewardSpec()
    names = list(result.specs.keys())
    n_ok = len(result.specs[names[0]])
    passed = 0
    for i in range(n_ok):
        observed = {name: float(result.specs[name][i]) for name in names}
        if compute_reward(observed, target, spec_space, reward).goal_reached:
            passed += 1
    trials = n_ok + result.n_failed
    lo, hi = wilson_interval(passed, trials, confidence=confidence)
    return YieldEstimate(passed=passed, trials=trials, ci_low=lo, ci_high=hi)
