"""Deterministic pseudo-layout generation.

Stands in for BAG's procedural layout generators: every physical device in
a sized netlist gets a footprint computed from its geometry (folded
multi-finger MOSFETs, poly resistors sized by sheet resistance, MIM
capacitors sized by areal density), footprints are packed into rows the
way an analog generator's floorplan would, and each net's wiring length is
estimated by the half-perimeter of its terminals' bounding box (HPWL — the
standard placement estimate).

Everything is a pure function of the sized netlist, so the parasitics the
extractor derives are *systematic and design-dependent*: wider devices →
larger footprints → longer wires → more capacitance.  That is the property
the transfer-learning experiment needs.
"""

from __future__ import annotations

import dataclasses
import math

from repro.circuits.elements import Capacitor, Element, Resistor
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import GROUND, Netlist
from repro.units import MICRO

#: Diffusion extension per MOSFET finger [m] (source/drain landing pads).
DIFFUSION_PITCH = 0.4 * MICRO
#: Vertical spacing overhead per device row [m].
ROW_MARGIN = 0.5 * MICRO
#: Poly sheet resistance [ohm/square] used to size resistor footprints.
POLY_SHEET_OHM = 200.0
#: Poly resistor strip width [m].
POLY_WIDTH = 1.0 * MICRO
#: MIM capacitor density [F/m^2] (2 fF/um^2).
MIM_DENSITY = 2e-3


@dataclasses.dataclass(frozen=True)
class DeviceFootprint:
    """Placed rectangle of one physical device."""

    name: str
    x: float       # lower-left corner [m]
    y: float
    width: float   # [m]
    height: float  # [m]
    nets: tuple[str, ...]

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclasses.dataclass
class PseudoLayout:
    """A placed design: footprints plus per-net wiring estimates."""

    footprints: list[DeviceFootprint]
    net_hpwl: dict[str, float]      # half-perimeter wirelength per net [m]
    net_terminals: dict[str, int]   # terminal count per net
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    def wirelength(self, net: str) -> float:
        """Estimated routed length [m] of one named net."""
        return self.net_hpwl.get(net, 0.0)


def device_dimensions(element: Element) -> tuple[float, float] | None:
    """Footprint (width, height) [m] of a physical device, or None for
    testbench-only elements (sources) that occupy no silicon."""
    if isinstance(element, Mosfet):
        width = element.m * (element.l + DIFFUSION_PITCH)
        height = element.w + ROW_MARGIN
        return width, height
    if isinstance(element, Resistor):
        squares = element.resistance / POLY_SHEET_OHM
        length = max(squares, 1.0) * POLY_WIDTH
        # Fold long resistors into a serpentine of aspect ratio <= 8.
        folds = max(1, int(math.ceil(math.sqrt(length / (8.0 * POLY_WIDTH)))))
        return (length / folds, folds * 2.0 * POLY_WIDTH)
    if isinstance(element, Capacitor):
        side = math.sqrt(element.capacitance / MIM_DENSITY)
        return (side, side)
    return None


def generate_layout(netlist: Netlist) -> PseudoLayout:
    """Pack device footprints into rows and estimate per-net wiring.

    Placement is greedy row packing in netlist order with a target aspect
    ratio of ~1 — deterministic, so the same sizing always produces the
    same parasitics.
    """
    sized: list[tuple[Element, float, float]] = []
    for element in netlist:
        dims = device_dimensions(element)
        if dims is not None:
            sized.append((element, dims[0], dims[1]))

    total_area = sum(w * h for _, w, h in sized)
    max_width = max((w for _, w, _ in sized), default=0.0)
    row_limit = max(math.sqrt(total_area) * 1.2, max_width) if sized else 0.0

    footprints: list[DeviceFootprint] = []
    x = y = row_height = 0.0
    chip_width = 0.0
    for element, w, h in sized:
        if x > 0.0 and x + w > row_limit:
            y += row_height + ROW_MARGIN
            x = 0.0
            row_height = 0.0
        footprints.append(DeviceFootprint(
            name=element.name, x=x, y=y, width=w, height=h,
            nets=tuple(element.nodes)))
        x += w + ROW_MARGIN
        row_height = max(row_height, h)
        chip_width = max(chip_width, x)
    chip_height = y + row_height

    # Per-net HPWL over the centres of the devices touching the net.
    points: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, int] = {}
    for fp in footprints:
        for net in fp.nets:
            points.setdefault(net, []).append(fp.center)
            counts[net] = counts.get(net, 0) + 1
    hpwl: dict[str, float] = {}
    for net, pts in points.items():
        if net == GROUND or len(pts) < 2:
            hpwl[net] = 0.0
            continue
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        hpwl[net] = (max(xs) - min(xs)) + (max(ys) - min(ys))

    return PseudoLayout(footprints=footprints, net_hpwl=hpwl,
                        net_terminals=counts,
                        width=chip_width, height=chip_height)
