"""Declarative experiment configuration (JSON/YAML round-trip).

Training runs are described by a tree of frozen/plain dataclasses
(:class:`~repro.core.agent.AutoCktConfig` at the root, nesting
:class:`~repro.rl.ppo.PPOConfig`, :class:`~repro.core.env.SizingEnvConfig`
and :class:`~repro.core.reward.RewardSpec`, with optional
:mod:`~repro.rl.schedules` objects inside the PPO config).  This module
converts that tree to and from plain dicts/JSON so experiments can be
versioned as files and re-run from the CLI:

    repro train opamp --config runs/opamp.json

Config files may be JSON or YAML — :func:`load_config` parses either
through the scenario zoo's structured-file loader
(:func:`repro.zoo.schema.load_structured_file`), so experiment configs
and zoo declarations share one file dialect and one parse-error surface.

Schedules are polymorphic, so they serialise with a ``"type"`` tag; every
other node is a plain field dict.  Unknown keys are rejected — a config
file that silently ignores a typo'd hyperparameter is worse than one that
errors.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.core.agent import AutoCktConfig
from repro.core.env import SizingEnvConfig
from repro.core.reward import RewardSpec
from repro.errors import ReproError
from repro.rl.ppo import PPOConfig
from repro.rl.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    PiecewiseSchedule,
    Schedule,
)


class ConfigError(ReproError):
    """A config file/dict could not be parsed into a valid configuration."""


_SCHEDULE_TYPES: dict[str, type[Schedule]] = {
    "constant": ConstantSchedule,
    "linear": LinearSchedule,
    "exponential": ExponentialSchedule,
    "cosine": CosineSchedule,
    "piecewise": PiecewiseSchedule,
}


def schedule_to_dict(schedule: Schedule | None) -> dict[str, Any] | None:
    """Serialise a schedule with a ``"type"`` tag (None passes through)."""
    if schedule is None:
        return None
    for tag, cls in _SCHEDULE_TYPES.items():
        if type(schedule) is cls:
            data = dataclasses.asdict(schedule)
            if tag == "piecewise":
                data["points"] = [list(p) for p in schedule.points]
            data["type"] = tag
            return data
    raise ConfigError(f"unserialisable schedule type {type(schedule).__name__}")


def schedule_from_dict(data: dict[str, Any] | None) -> Schedule | None:
    """Inverse of :func:`schedule_to_dict`."""
    if data is None:
        return None
    if "type" not in data:
        raise ConfigError("schedule dict needs a 'type' tag")
    payload = dict(data)
    tag = payload.pop("type")
    cls = _SCHEDULE_TYPES.get(tag)
    if cls is None:
        raise ConfigError(f"unknown schedule type {tag!r}; "
                          f"choose from {sorted(_SCHEDULE_TYPES)}")
    if tag == "piecewise":
        payload["points"] = tuple(tuple(p) for p in payload.get("points", ()))
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ConfigError(f"bad {tag} schedule fields: {exc}") from None


def _plain_to_dict(obj: Any) -> dict[str, Any]:
    """Field dict of a flat dataclass, with tuples rendered as lists."""
    out = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        out[field.name] = list(value) if isinstance(value, tuple) else value
    return out


def _build(cls, data: dict[str, Any], *, tuples: tuple[str, ...] = ()):
    """Instantiate a flat dataclass from a dict, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}")
    payload = dict(data)
    for key in tuples:
        if key in payload and isinstance(payload[key], list):
            payload[key] = tuple(payload[key])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ConfigError(f"bad {cls.__name__} fields: {exc}") from None


def reward_to_dict(reward: RewardSpec) -> dict[str, Any]:
    """Field dict of a reward configuration."""
    return _plain_to_dict(reward)


def reward_from_dict(data: dict[str, Any]) -> RewardSpec:
    """Inverse of :func:`reward_to_dict`."""
    return _build(RewardSpec, data)


def ppo_to_dict(config: PPOConfig) -> dict[str, Any]:
    """Field dict of a PPO configuration (schedules tagged by type)."""
    out = _plain_to_dict(config)
    out["lr_schedule"] = schedule_to_dict(config.lr_schedule)
    out["ent_schedule"] = schedule_to_dict(config.ent_schedule)
    return out


def ppo_from_dict(data: dict[str, Any]) -> PPOConfig:
    """Inverse of :func:`ppo_to_dict`."""
    payload = dict(data)
    payload["lr_schedule"] = schedule_from_dict(payload.get("lr_schedule"))
    payload["ent_schedule"] = schedule_from_dict(payload.get("ent_schedule"))
    return _build(PPOConfig, payload, tuples=("hidden",))


def env_to_dict(config: SizingEnvConfig) -> dict[str, Any]:
    """Field dict of an environment configuration (reward nested)."""
    out = _plain_to_dict(config)
    out["reward"] = reward_to_dict(config.reward)
    return out


def env_from_dict(data: dict[str, Any]) -> SizingEnvConfig:
    """Inverse of :func:`env_to_dict`."""
    payload = dict(data)
    if isinstance(payload.get("reward"), dict):
        payload["reward"] = reward_from_dict(payload["reward"])
    return _build(SizingEnvConfig, payload)


def autockt_to_dict(config: AutoCktConfig) -> dict[str, Any]:
    """Serialise a full training configuration."""
    out = _plain_to_dict(config)
    out["ppo"] = ppo_to_dict(config.ppo)
    out["env"] = env_to_dict(config.env)
    return out


def autockt_from_dict(data: dict[str, Any]) -> AutoCktConfig:
    """Inverse of :func:`autockt_to_dict` (missing sections use defaults)."""
    payload = dict(data)
    if isinstance(payload.get("ppo"), dict):
        payload["ppo"] = ppo_from_dict(payload["ppo"])
    if isinstance(payload.get("env"), dict):
        payload["env"] = env_from_dict(payload["env"])
    return _build(AutoCktConfig, payload)


def save_config(config: AutoCktConfig, path: str | pathlib.Path) -> None:
    """Write a training configuration as pretty-printed JSON."""
    text = json.dumps(autockt_to_dict(config), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(text + "\n")


def load_config(path: str | pathlib.Path) -> AutoCktConfig:
    """Read a training configuration from a JSON or YAML file."""
    from repro.errors import TopologyError
    from repro.zoo.schema import load_structured_file

    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    try:
        data = load_structured_file(path)
    except TopologyError as exc:
        raise ConfigError(str(exc)) from None
    if not isinstance(data, dict):
        raise ConfigError(f"config root must be an object, got {type(data).__name__}")
    return autockt_from_dict(data)
