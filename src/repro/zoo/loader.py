"""Compile step of the scenario zoo: declarations onto ``Topology``.

The loader turns the structurally validated
:class:`~repro.zoo.schema.Declaration` records into
:class:`CompiledScenario` objects — picklable recipes that build a fully
configured :class:`~repro.topologies.base.Topology` instance on demand,
with **zero changes to the engine layers**: a compiled scenario is just
a zero-argument topology factory (plus the ``(technology, corner,
temperature)`` keyword form the PVT-corner and shard machinery uses), so
everything downstream — :class:`~repro.topologies.base.SchematicSimulator`,
:class:`~repro.pex.extraction.PexSimulator`, the shard pool, the remote
transport, the RL environment — consumes it exactly like a module class.

Pipeline, per :func:`registry` load:

1. every ``*.yml`` / ``*.yaml`` / ``*.json`` file in the builtin
   directory plus the ``REPRO_ZOO_DIR`` directories parses into a
   :class:`~repro.zoo.schema.Declaration`;
2. declarations carrying a ``variants`` generator expand into seeded
   child declarations (chain-length sweeps, load/corner grids,
   randomized families) — the generator itself registers nothing and
   serves only as an inheritance base;
3. each declaration's ``base`` chain resolves (child fields over parent
   fields, cycle detection) down to a registered
   :data:`BASE_TOPOLOGIES` class;
4. the resolved overrides are *semantically* validated against a probe
   instance of that class — unknown ctor/attr/grid/spec names,
   grid overrides escaping the topology's allowed range, spec-space
   mismatches all raise :class:`~repro.errors.TopologyError` naming the
   file and key path — and frozen into a :class:`CompiledScenario`.

The registry is cached on the content signature of the scenario
directories (paths + mtimes + the env knob), so editing a file or
flipping ``REPRO_ZOO_DIR`` invalidates it automatically.
"""

from __future__ import annotations

import dataclasses
import inspect
import os
import pathlib

import numpy as np

from repro.circuits.technology import Corner, Technology, finfet16, ptm45
from repro.core.specs import SpecSpace
from repro.errors import TopologyError
from repro.topologies import (FiveTransistorOta, FoldedCascodeOta, NegGmOta,
                              OtaChain, PowerGridOta, Topology,
                              TransimpedanceAmplifier, TwoStageOpAmp)
from repro.topologies.params import ParameterSpace
from repro.zoo.schema import (Declaration, GridOverride, PexSettings,
                              SpecOverride, VariantSpec, load_structured_file,
                              parse_declaration)

#: Environment knob: ``os.pathsep``-separated user scenario directories
#: searched after the builtin declarations.
ZOO_DIR_ENV = "REPRO_ZOO_DIR"

#: Module-defined topology classes a ``base`` chain may terminate at,
#: keyed by their registered ``name``.
BASE_TOPOLOGIES: dict[str, type[Topology]] = {
    cls.name: cls for cls in (
        TransimpedanceAmplifier, TwoStageOpAmp, NegGmOta, FiveTransistorOta,
        FoldedCascodeOta, OtaChain, PowerGridOta)}

#: Technology cards a declaration's ``technology`` field may name.
TECHNOLOGIES = {"ptm45": ptm45, "finfet16": finfet16}

#: Ctor keys reserved for the environment plumbing (set via the
#: top-level ``corner`` / ``temperature`` / ``technology`` fields).
_RESERVED_CTOR = frozenset(("self", "technology", "corner", "temperature"))

#: File suffixes the registry scans for.
_SUFFIXES = (".yml", ".yaml", ".json")


def _fail(source: str, path: str, message: str) -> None:
    """Raise the zoo's uniform validation error: source, key path, why."""
    raise TopologyError(f"{source}: {path}: {message}")


def builtin_dir() -> pathlib.Path:
    """Directory of the declarations shipped with the package."""
    return pathlib.Path(__file__).resolve().parent / "builtin"


def zoo_dirs() -> list[pathlib.Path]:
    """Scenario directories in search order: builtin, then each
    ``REPRO_ZOO_DIR`` entry (``os.pathsep``-separated)."""
    dirs = [builtin_dir()]
    for entry in os.environ.get(ZOO_DIR_ENV, "").split(os.pathsep):
        if entry.strip():
            dirs.append(pathlib.Path(entry.strip()))
    return dirs


def _scenario_files() -> list[pathlib.Path]:
    """All declaration files, in deterministic (dir, name) order.

    A missing user directory is an error — a typoed ``REPRO_ZOO_DIR``
    silently loading zero scenarios would be far worse.
    """
    files: list[pathlib.Path] = []
    for directory in zoo_dirs():
        if not directory.is_dir():
            raise TopologyError(
                f"{ZOO_DIR_ENV} directory {directory} does not exist")
        files.extend(sorted(p for p in directory.iterdir()
                            if p.suffix in _SUFFIXES and p.is_file()))
    return files


@dataclasses.dataclass(frozen=True)
class CompiledScenario:
    """One compiled, validated scenario: a picklable topology recipe.

    Calling the scenario (optionally with the ``(technology, corner,
    temperature)`` keywords every :class:`~repro.topologies.base.Topology`
    constructor takes) builds a configured topology instance, so a
    scenario drops in anywhere a topology class is accepted: simulator
    constructors, :meth:`~repro.pex.corners.CornerSpec.apply` (via
    :attr:`supports_corner_kwargs`), shard-worker factories, the CLI
    registry.
    """

    #: Everything the PVT/shard machinery needs to rebuild an equivalent
    #: topology is in the dataclass fields, so the recipe pickles.
    name: str
    base_cls: type[Topology]
    source: str
    description: str = ""
    base_chain: tuple[str, ...] = ()
    corner: Corner | None = None
    temperature: float | None = None
    technology_key: str | None = None
    ctor: tuple[tuple[str, object], ...] = ()
    attrs: tuple[tuple[str, float], ...] = ()
    #: Resolved ``(start, stop, step)`` per overridden grid parameter.
    grid: tuple[tuple[str, tuple[float, float, float]], ...] = ()
    #: Resolved ``(low, high)`` per overridden spec range.
    specs: tuple[tuple[str, tuple[float, float]], ...] = ()
    pex: PexSettings | None = None

    #: Duck-type marker for :meth:`repro.pex.corners.CornerSpec.apply`:
    #: this factory accepts the ``(technology, corner, temperature)``
    #: keywords, so corner instances build in one construction.
    supports_corner_kwargs = True

    def default_technology(self) -> Technology:
        """Technology card the scenario nominally runs on (declared card,
        else the base topology's default)."""
        if self.technology_key is not None:
            return TECHNOLOGIES[self.technology_key]()
        return self.base_cls.default_technology()

    def create(self, technology: Technology | None = None,
               corner: Corner | None = None,
               temperature: float | None = None) -> Topology:
        """Build the configured topology instance.

        Explicit keyword arguments (the PVT-corner / shard-rebuild path)
        take precedence over the declaration's environment fields.  The
        instance is renamed to the scenario (``topology.name``), which
        namespaces it in the persistent store, the remote handshake and
        reports, and carries the recipe itself as
        :attr:`~repro.topologies.base.Topology.zoo_recipe` so shard
        workers rebuild the *scenario*, not the bare base class.
        """
        kwargs: dict = dict(self.ctor)
        if technology is None and self.technology_key is not None:
            technology = TECHNOLOGIES[self.technology_key]()
        if technology is not None:
            kwargs["technology"] = technology
        corner = corner if corner is not None else self.corner
        if corner is not None:
            kwargs["corner"] = corner
        temperature = (temperature if temperature is not None
                       else self.temperature)
        if temperature is not None:
            kwargs["temperature"] = temperature
        topology = self.base_cls(**kwargs)
        for attr, value in self.attrs:
            setattr(topology, attr, value)
        if self.grid:
            overrides = dict(self.grid)
            topology.parameter_space = ParameterSpace([
                dataclasses.replace(p, start=overrides[p.name][0],
                                    stop=overrides[p.name][1],
                                    step=overrides[p.name][2])
                if p.name in overrides else p
                for p in topology.parameter_space.params])
        if self.specs:
            ranges = dict(self.specs)
            topology.spec_space = SpecSpace([
                dataclasses.replace(s, low=ranges[s.name][0],
                                    high=ranges[s.name][1])
                if s.name in ranges else s
                for s in topology.spec_space.specs])
        topology.name = self.name
        topology.zoo_recipe = self
        return topology

    def __call__(self, technology: Technology | None = None,
                 corner: Corner | None = None,
                 temperature: float | None = None) -> Topology:
        """Alias of :meth:`create` — scenarios *are* topology factories."""
        return self.create(technology=technology, corner=corner,
                           temperature=temperature)

    def create_simulator(self, cache: bool = True):
        """The simulator this scenario declares.

        A plain :class:`~repro.topologies.base.SchematicSimulator` —
        or, when the declaration carries a ``pex`` section, a
        :class:`~repro.pex.extraction.PexSimulator` over the declared
        extraction rules and signoff corners.
        """
        from repro.pex.corners import signoff_corners
        from repro.pex.extraction import ExtractionRules, PexSimulator
        from repro.topologies.base import SchematicSimulator

        if self.pex is None:
            return SchematicSimulator(self.create(), cache=cache)
        rules = None
        if self.pex.rules:
            rules = ExtractionRules(**{
                key: int(value) if key == "mesh_segments" else value
                for key, value in self.pex.rules})
        corners = None
        if self.pex.corners:
            by_name = {c.name: c for c in signoff_corners()}
            corners = [by_name[name] for name in self.pex.corners]
        return PexSimulator(self, corners=corners, rules=rules, cache=cache)

    def describe(self) -> dict:
        """Human-facing summary dict (the ``repro zoo show`` payload)."""
        topology = self.create()
        return {
            "name": self.name,
            "base": " -> ".join(self.base_chain),
            "class": self.base_cls.__name__,
            "source": self.source,
            "description": self.description,
            "corner": topology.corner.value,
            "temperature": topology.temperature,
            "technology": self.technology_key or "(base default)",
            "ctor": dict(self.ctor),
            "attrs": dict(self.attrs),
            "pex": self.pex.to_dict() if self.pex is not None else None,
            "parameters": {p.name: [p.start, p.stop, p.step]
                           for p in topology.parameter_space.params},
            "cardinality": topology.parameter_space.cardinality,
            "specs": {s.name: [s.low, s.high]
                      for s in topology.spec_space.specs},
        }


@dataclasses.dataclass
class _Resolved:
    """A declaration with its full inheritance chain merged in."""

    decl: Declaration
    base_cls: type[Topology]
    base_chain: tuple[str, ...]
    corner: Corner | None
    temperature: float | None
    technology: str | None
    ctor: dict
    attrs: dict[str, float]
    grid: dict[str, GridOverride]
    specs: dict[str, SpecOverride]
    pex: PexSettings | None
    description: str


def _resolve(decl: Declaration,
             by_name: dict[str, Declaration]) -> _Resolved:
    """Walk ``decl``'s base chain down to a module class, merging fields.

    Child fields win over parent fields (grid/spec overrides merge per
    sub-key).  A ``base`` naming the declaration itself skips straight
    to the class lookup — that is how a mirror declaration (``name:
    tia`` / ``base: tia``) re-exports a module topology.  Cycles and
    unknown bases raise with the offending file and the ``base`` key.
    """
    chain = [decl.name]
    corner, temperature, technology = (decl.corner, decl.temperature,
                                       decl.technology)
    ctor, attrs = dict(decl.ctor), dict(decl.attrs)
    grid, specs = dict(decl.grid), dict(decl.specs)
    pex, description = decl.pex, decl.description
    current = decl
    while True:
        base = current.base
        if base in by_name and base != current.name:
            if base in chain:
                _fail(decl.source, "base", "inheritance cycle: "
                      + " -> ".join(chain + [base]))
            chain.append(base)
            parent = by_name[base]
            corner = corner if corner is not None else parent.corner
            temperature = (temperature if temperature is not None
                           else parent.temperature)
            technology = (technology if technology is not None
                          else parent.technology)
            ctor = {**parent.ctor, **ctor}
            attrs = {**parent.attrs, **attrs}
            grid = {**parent.grid,
                    **{name: (ov.merged_over(parent.grid[name])
                              if name in parent.grid else ov)
                       for name, ov in grid.items()}}
            specs = {**parent.specs,
                     **{name: (ov.merged_over(parent.specs[name])
                               if name in parent.specs else ov)
                        for name, ov in specs.items()}}
            pex = pex if pex is not None else parent.pex
            description = description or parent.description
            current = parent
            continue
        if base in BASE_TOPOLOGIES:
            chain.append(base)
            return _Resolved(decl=decl, base_cls=BASE_TOPOLOGIES[base],
                             base_chain=tuple(chain), corner=corner,
                             temperature=temperature, technology=technology,
                             ctor=ctor, attrs=attrs, grid=grid, specs=specs,
                             pex=pex, description=description)
        _fail(current.source, "base",
              f"unknown base {base!r}; known topology classes: "
              f"{sorted(BASE_TOPOLOGIES)}, known declarations: "
              f"{sorted(n for n in by_name if n != current.name)}")


def _compile(resolved: _Resolved) -> CompiledScenario:
    """Semantic validation of a resolved declaration, then freeze it.

    A probe instance of the base class (built with the declared ctor
    overrides, nominal environment) supplies the ground truth the
    overrides must respect: real constructor keywords, existing numeric
    attributes, grid overrides *inside* the topology's allowed
    parameter ranges, spec overrides naming specs the topology actually
    measures.
    """
    from repro.pex.corners import signoff_corners

    decl, source = resolved.decl, resolved.decl.source
    if resolved.technology is not None \
            and resolved.technology not in TECHNOLOGIES:
        _fail(source, "technology",
              f"unknown technology {resolved.technology!r}; choose from "
              f"{sorted(TECHNOLOGIES)}")
    signature = inspect.signature(resolved.base_cls.__init__)
    has_var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD
                     for p in signature.parameters.values())
    for key in resolved.ctor:
        if key in _RESERVED_CTOR:
            _fail(source, f"ctor.{key}", "reserved keyword; set the "
                  "top-level corner/temperature/technology fields instead")
        if not has_var_kw and key not in signature.parameters:
            accepted = sorted(set(signature.parameters) - _RESERVED_CTOR)
            _fail(source, f"ctor.{key}",
                  f"{resolved.base_cls.__name__} takes no such argument; "
                  f"accepted: {accepted}")
    try:
        probe = resolved.base_cls(**resolved.ctor)
    except TopologyError:
        raise
    except Exception as exc:
        _fail(source, "ctor", f"base {resolved.base_cls.__name__} "
              f"rejected the constructor overrides: {exc}")
    for attr, _ in resolved.attrs.items():
        current = getattr(probe, attr, None)
        if isinstance(current, bool) or not isinstance(current,
                                                       (int, float)):
            _fail(source, f"attrs.{attr}",
                  f"{resolved.base_cls.__name__} has no numeric "
                  f"attribute {attr!r}")
    grid: list[tuple[str, tuple[float, float, float]]] = []
    for pname, ov in resolved.grid.items():
        if pname not in probe.parameter_space.names:
            _fail(source, f"grid.{pname}", "unknown parameter; "
                  f"{resolved.base_cls.__name__} defines "
                  f"{sorted(probe.parameter_space.names)}")
        base = probe.parameter_space[pname]
        start = ov.start if ov.start is not None else base.start
        stop = ov.stop if ov.stop is not None else base.stop
        step = ov.step if ov.step is not None else base.step
        if start < base.start:
            _fail(source, f"grid.{pname}.start",
                  f"{start:g} below the allowed minimum {base.start:g}")
        if stop > base.stop:
            _fail(source, f"grid.{pname}.stop",
                  f"{stop:g} above the allowed maximum {base.stop:g}")
        if stop < start:
            _fail(source, f"grid.{pname}.stop",
                  f"stop {stop:g} below start {start:g}")
        grid.append((pname, (start, stop, step)))
    specs: list[tuple[str, tuple[float, float]]] = []
    for sname, sov in resolved.specs.items():
        if sname not in probe.spec_space.names:
            _fail(source, f"specs.{sname}", "spec-space mismatch: "
                  f"{resolved.base_cls.__name__} measures "
                  f"{sorted(probe.spec_space.names)}")
        base_spec = probe.spec_space[sname]
        low = sov.low if sov.low is not None else base_spec.low
        high = sov.high if sov.high is not None else base_spec.high
        if low >= high:
            _fail(source, f"specs.{sname}",
                  f"low {low:g} must be below high {high:g}")
        if base_spec.log_scale and low <= 0:
            _fail(source, f"specs.{sname}.low",
                  f"{sname} is log-scale; bounds must be positive")
        specs.append((sname, (low, high)))
    if resolved.pex is not None:
        known = {c.name for c in signoff_corners()}
        for cname in resolved.pex.corners:
            if cname not in known:
                _fail(source, "pex.corners",
                      f"unknown signoff corner {cname!r}; choose from "
                      f"{sorted(known)}")
        for key, value in resolved.pex.rules:
            if key == "mesh_segments" and (value < 0
                                           or value != int(value)):
                _fail(source, "pex.mesh_segments",
                      f"expected a non-negative integer, got {value!r}")
    return CompiledScenario(
        name=decl.name, base_cls=resolved.base_cls, source=source,
        description=resolved.description, base_chain=resolved.base_chain,
        corner=resolved.corner, temperature=resolved.temperature,
        technology_key=resolved.technology,
        ctor=tuple(sorted(resolved.ctor.items())),
        attrs=tuple(sorted(resolved.attrs.items())),
        grid=tuple(grid), specs=tuple(specs), pex=resolved.pex)


def _slug(value) -> str:
    """Filename-safe fragment of an axis value for variant names."""
    if isinstance(value, str):
        return value
    return f"{value:g}".replace(".", "p").replace("+", "").replace("-", "m")


def _axis_override(child: dict, path: str, value) -> None:
    """Apply one variant axis (``corner`` / ``ctor.x`` / ...) to a raw
    child declaration mapping."""
    if path == "corner":
        child["corner"] = value
    elif path == "temperature":
        child["temperature"] = value
    else:
        section, _, key = path.partition(".")
        child.setdefault(section, {})[key] = value


def _expand_random(decl: Declaration, spec: VariantSpec,
                   by_name: dict[str, Declaration]) -> list[dict]:
    """Children of a ``random`` generator: seeded grid sub-ranges.

    Each child narrows every randomised parameter to a contiguous
    sub-range covering a ``span`` fraction of the (inheritance-resolved)
    grid, placed uniformly at random — a reproducible family of
    related-but-distinct scenarios for RL generalisation studies.
    """
    resolved = _resolve(decl, by_name)
    probe = _compile(resolved).create()
    names = spec.params or probe.parameter_space.names
    for pname in names:
        if pname not in probe.parameter_space.names:
            _fail(decl.source, "variants.params", "unknown parameter "
                  f"{pname!r}; the base defines "
                  f"{sorted(probe.parameter_space.names)}")
    rng = np.random.default_rng(spec.seed)
    children = []
    for i in range(spec.count):
        child: dict = {"name": f"{decl.name}_r{i}", "base": decl.name}
        for pname in names:
            param = probe.parameter_space[pname]
            count = param.count
            width = min(count, max(2, round(count * spec.span)))
            lo = int(rng.integers(0, count - width + 1))
            child.setdefault("grid", {})[pname] = {
                "start": param.start + lo * param.step,
                "stop": param.start + (lo + width - 1) * param.step}
        children.append(child)
    return children


def _expand_variants(decl: Declaration,
                     by_name: dict[str, Declaration]) -> list[Declaration]:
    """Expand one generator declaration into its child declarations.

    The children inherit from the generator by name (``base:
    <generator>``), so every other declared override flows to them
    through the normal resolution path; they then re-enter
    :func:`~repro.zoo.schema.parse_declaration` so malformed generated
    values fail with the same file-and-key-path errors as hand-written
    files.
    """
    spec = decl.variants
    raw_children: list[dict] = []
    if spec.kind == "sweep":
        for value in spec.values:
            child = {"name": f"{decl.name}_{spec.tag}{_slug(value)}",
                     "base": decl.name}
            _axis_override(child, spec.path, value)
            raw_children.append(child)
    elif spec.kind == "grid":
        combos: list[tuple[dict, list[str]]] = [({}, [])]
        for path, values in spec.axes:
            combos = [(_applied(child, path, value),
                       slugs + [_slug(value)])
                      for child, slugs in combos for value in values]
        for child, slugs in combos:
            child.update(name=f"{decl.name}_{'_'.join(slugs)}",
                         base=decl.name)
            raw_children.append(child)
    else:
        raw_children = _expand_random(decl, spec, by_name)
    return [parse_declaration(child, source=f"{decl.source}#{child['name']}")
            for child in raw_children]


def _applied(child: dict, path: str, value) -> dict:
    """Copy of a raw child mapping with one more axis override applied
    (sections deep-copied so grid combos never share mutable state)."""
    out = {key: dict(v) if isinstance(v, dict) else v
           for key, v in child.items()}
    _axis_override(out, path, value)
    return out


def compile_declarations(decls: list[Declaration]
                         ) -> dict[str, CompiledScenario]:
    """Compile a set of declarations into the scenario registry.

    Runs steps 2–4 of the module pipeline (variant expansion, base
    resolution, semantic validation) on already-parsed declarations —
    the file-free entry the property tests drive directly.  Generator
    declarations expand but do not register; duplicate names (including
    generated ones) are errors naming both sources.
    """
    by_name: dict[str, Declaration] = {}
    for decl in decls:
        if decl.name in by_name:
            _fail(decl.source, "name", f"duplicate scenario {decl.name!r} "
                  f"(also declared by {by_name[decl.name].source})")
        by_name[decl.name] = decl
    leaves: list[Declaration] = []
    for decl in decls:
        if decl.variants is None:
            leaves.append(decl)
            continue
        for child in _expand_variants(decl, by_name):
            if child.name in by_name:
                _fail(child.source, "name", f"duplicate scenario "
                      f"{child.name!r} (also declared by "
                      f"{by_name[child.name].source})")
            by_name[child.name] = child
            leaves.append(child)
    return {decl.name: _compile(_resolve(decl, by_name))
            for decl in leaves}


_cache: tuple[tuple, dict[str, CompiledScenario]] | None = None


def _signature() -> tuple:
    """Cache key of the current zoo contents: the env knob plus every
    scenario file's (path, mtime, size)."""
    return (os.environ.get(ZOO_DIR_ENV, ""),
            tuple((str(p), p.stat().st_mtime_ns, p.stat().st_size)
                  for p in _scenario_files()))


def registry() -> dict[str, CompiledScenario]:
    """All registered scenarios, name → :class:`CompiledScenario`.

    Loads builtin + ``REPRO_ZOO_DIR`` declarations through the full
    pipeline; cached on the directory content signature, so file edits
    and env changes take effect without any manual invalidation.
    """
    global _cache
    key = _signature()
    if _cache is not None and _cache[0] == key:
        return _cache[1]
    decls = []
    for path in _scenario_files():
        decls.append(parse_declaration(load_structured_file(path),
                                       name=path.stem, source=str(path)))
    compiled = compile_declarations(decls)
    _cache = (key, compiled)
    return compiled


def scenario(name: str) -> CompiledScenario:
    """Look one scenario up by name; unknown names raise with the
    available choices."""
    scenarios = registry()
    try:
        return scenarios[name]
    except KeyError:
        raise TopologyError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(sorted(scenarios))}") from None


def scenario_names(strict: bool = True) -> list[str]:
    """Sorted registered scenario names.

    With ``strict=False`` a broken zoo (bad user file, missing
    directory) degrades to the builtin set — or to nothing — instead of
    raising; the CLI uses this to keep ``--topology`` choices and
    ``repro zoo validate`` working while a user file is broken.
    """
    if strict:
        return sorted(registry())
    try:
        return sorted(registry())
    except TopologyError:
        pass
    try:
        decls = [parse_declaration(load_structured_file(path),
                                   name=path.stem, source=str(path))
                 for path in sorted(builtin_dir().iterdir())
                 if path.suffix in _SUFFIXES]
        return sorted(compile_declarations(decls))
    except TopologyError:
        return []
