"""Declaration model of the scenario zoo: fields, parsing, validation.

A *scenario declaration* is a small YAML/JSON mapping describing a
sizing scenario as data — the layered defaults/overrides pattern of
metadata-generator config files: a ``base`` pointer (a registered
:class:`~repro.topologies.base.Topology` class or another declaration),
plus optional overrides for the constructor, numeric class attributes,
parameter grids, spec ranges, environment (corner / temperature /
technology card), PEX extraction settings and a seeded variant
generator.  This module owns the *shape* of that mapping:

* :data:`TOP_LEVEL_KEYS` etc. — the allowed keys per section;
* :func:`parse_declaration` — one raw mapping to a typed, structurally
  validated :class:`Declaration` (unknown fields, wrong types, bad enum
  values all raise :class:`~repro.errors.TopologyError` naming the
  source file and the offending key path);
* :meth:`Declaration.to_dict` — the exact inverse, so declarations
  round-trip (compile → re-serialise → compile) bit for bit.

Semantic validation — does the base exist, is an overridden grid inside
the base topology's allowed range, does a spec override name a spec the
base actually measures — needs the resolved base topology and therefore
lives in the compile step (:mod:`repro.zoo.loader`), which reports
errors through the same ``source: key.path: message`` convention.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.circuits.technology import Corner
from repro.errors import TopologyError

#: Keys allowed at the top level of a declaration mapping.
TOP_LEVEL_KEYS = frozenset((
    "name", "base", "description", "corner", "temperature", "technology",
    "ctor", "attrs", "grid", "specs", "pex", "variants"))

#: Keys allowed inside one ``grid`` parameter override.
GRID_KEYS = frozenset(("start", "stop", "step"))

#: Keys allowed inside one ``specs`` range override.
SPEC_KEYS = frozenset(("low", "high"))

#: Keys allowed inside the ``variants`` generator section, per kind.
VARIANT_KEYS = {
    "sweep": frozenset(("kind", "path", "values", "tag")),
    "grid": frozenset(("kind", "axes")),
    "random": frozenset(("kind", "count", "seed", "span", "params")),
}

#: Axis paths a sweep/grid variant generator may drive.
AXIS_PREFIXES = ("ctor.", "attrs.")
AXIS_SCALARS = ("corner", "temperature")


def _fail(source: str, path: str, message: str) -> None:
    """Raise the zoo's uniform validation error: source, key path, why."""
    raise TopologyError(f"{source}: {path}: {message}")


def _require_mapping(value: Any, source: str, path: str) -> dict:
    """The value must be a mapping (a YAML block); returns it."""
    if not isinstance(value, dict):
        _fail(source, path, f"expected a mapping, got {type(value).__name__}")
    return value


def _require_number(value: Any, source: str, path: str) -> float:
    """The value must be a plain int/float (bool excluded); returns it."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(source, path,
              f"expected a number, got {type(value).__name__} {value!r} "
              "(YAML floats need a decimal point: write 1.0e-12, not 1e-12)")
    return float(value)


def _require_string(value: Any, source: str, path: str) -> str:
    """The value must be a non-empty string; returns it."""
    if not isinstance(value, str) or not value:
        _fail(source, path, f"expected a non-empty string, got {value!r}")
    return value


def parse_corner(value: Any, source: str, path: str) -> Corner:
    """Parse a process-corner name (``tt``/``ss``/...) into the enum."""
    text = _require_string(value, source, path).lower()
    try:
        return Corner(text)
    except ValueError:
        _fail(source, path, f"unknown corner {value!r}; choose from "
              f"{sorted(c.value for c in Corner)}")


@dataclasses.dataclass(frozen=True)
class GridOverride:
    """Override of one parameter-grid axis (unset fields inherit)."""

    start: float | None = None
    stop: float | None = None
    step: float | None = None

    def to_dict(self) -> dict[str, float]:
        """Serialise the set fields only (the round-trip contract)."""
        return {k: v for k, v in dataclasses.asdict(self).items()
                if v is not None}

    def merged_over(self, parent: "GridOverride") -> "GridOverride":
        """Layer this override on top of a parent's (child fields win)."""
        return GridOverride(
            start=self.start if self.start is not None else parent.start,
            stop=self.stop if self.stop is not None else parent.stop,
            step=self.step if self.step is not None else parent.step)


@dataclasses.dataclass(frozen=True)
class SpecOverride:
    """Override of one spec's sampling range (unset fields inherit)."""

    low: float | None = None
    high: float | None = None

    def to_dict(self) -> dict[str, float]:
        """Serialise the set fields only (the round-trip contract)."""
        return {k: v for k, v in dataclasses.asdict(self).items()
                if v is not None}

    def merged_over(self, parent: "SpecOverride") -> "SpecOverride":
        """Layer this override on top of a parent's (child fields win)."""
        return SpecOverride(
            low=self.low if self.low is not None else parent.low,
            high=self.high if self.high is not None else parent.high)


@dataclasses.dataclass(frozen=True)
class PexSettings:
    """Declared PEX extraction settings: rule overrides + corner list."""

    #: Names of :func:`~repro.pex.corners.signoff_corners` entries to
    #: sweep (empty = the full signoff set).
    corners: tuple[str, ...] = ()
    #: Numeric :class:`~repro.pex.extraction.ExtractionRules` field
    #: overrides (e.g. ``mesh_segments``, ``c_wire_per_m``).
    rules: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Serialise back to the declaration's ``pex`` mapping."""
        out: dict[str, Any] = dict(self.rules)
        if self.corners:
            out["corners"] = list(self.corners)
        return out


@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One seeded variant generator (``sweep`` / ``grid`` / ``random``)."""

    kind: str
    #: ``sweep``: the driven axis path and its values.
    path: str = ""
    values: tuple = ()
    tag: str = ""
    #: ``grid``: ordered (path, values) product axes.
    axes: tuple[tuple[str, tuple], ...] = ()
    #: ``random``: family size, RNG seed, per-axis span fraction and the
    #: (optional) subset of grid parameters to randomise.
    count: int = 0
    seed: int = 0
    span: float = 0.5
    params: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Serialise back to the declaration's ``variants`` mapping."""
        if self.kind == "sweep":
            out: dict[str, Any] = {"kind": "sweep", "path": self.path,
                                   "values": list(self.values)}
            if self.tag:
                out["tag"] = self.tag
            return out
        if self.kind == "grid":
            return {"kind": "grid",
                    "axes": {path: list(values)
                             for path, values in self.axes}}
        out = {"kind": "random", "count": self.count, "seed": self.seed,
               "span": self.span}
        if self.params:
            out["params"] = list(self.params)
        return out


@dataclasses.dataclass
class Declaration:
    """One structurally validated scenario declaration.

    The fields mirror the YAML surface one to one; everything except
    ``base`` is optional.  Semantic meaning (what the overrides resolve
    against) is applied by :mod:`repro.zoo.loader`.
    """

    name: str
    base: str
    source: str
    description: str = ""
    corner: Corner | None = None
    temperature: float | None = None
    technology: str | None = None
    ctor: dict[str, Any] = dataclasses.field(default_factory=dict)
    attrs: dict[str, float] = dataclasses.field(default_factory=dict)
    grid: dict[str, GridOverride] = dataclasses.field(default_factory=dict)
    specs: dict[str, SpecOverride] = dataclasses.field(default_factory=dict)
    pex: PexSettings | None = None
    variants: VariantSpec | None = None

    def to_dict(self) -> dict[str, Any]:
        """Serialise back to the raw declaration mapping.

        ``parse_declaration(decl.to_dict(), ...)`` reproduces an equal
        declaration — the round-trip half of the zoo's idempotence
        contract (property-tested in ``tests/zoo``).
        """
        out: dict[str, Any] = {"name": self.name, "base": self.base}
        if self.description:
            out["description"] = self.description
        if self.corner is not None:
            out["corner"] = self.corner.value
        if self.temperature is not None:
            out["temperature"] = self.temperature
        if self.technology is not None:
            out["technology"] = self.technology
        if self.ctor:
            out["ctor"] = dict(self.ctor)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.grid:
            out["grid"] = {name: ov.to_dict()
                           for name, ov in self.grid.items()}
        if self.specs:
            out["specs"] = {name: ov.to_dict()
                            for name, ov in self.specs.items()}
        if self.pex is not None:
            out["pex"] = self.pex.to_dict()
        if self.variants is not None:
            out["variants"] = self.variants.to_dict()
        return out


def _parse_grid(data: Any, source: str) -> dict[str, GridOverride]:
    """Parse and structurally validate the ``grid`` section."""
    out: dict[str, GridOverride] = {}
    for pname, fields in _require_mapping(data, source, "grid").items():
        path = f"grid.{pname}"
        fields = _require_mapping(fields, source, path)
        unknown = set(fields) - GRID_KEYS
        if unknown:
            _fail(source, f"{path}.{sorted(unknown)[0]}",
                  f"unknown grid field; choose from {sorted(GRID_KEYS)}")
        parsed = {key: _require_number(value, source, f"{path}.{key}")
                  for key, value in fields.items()}
        if not parsed:
            _fail(source, path, "empty grid override (set start/stop/step)")
        if parsed.get("step") is not None and parsed["step"] <= 0:
            _fail(source, f"{path}.step", "step must be positive")
        out[pname] = GridOverride(**parsed)
    return out


def _parse_specs(data: Any, source: str) -> dict[str, SpecOverride]:
    """Parse and structurally validate the ``specs`` section."""
    out: dict[str, SpecOverride] = {}
    for sname, fields in _require_mapping(data, source, "specs").items():
        path = f"specs.{sname}"
        fields = _require_mapping(fields, source, path)
        unknown = set(fields) - SPEC_KEYS
        if unknown:
            _fail(source, f"{path}.{sorted(unknown)[0]}",
                  f"unknown spec field; choose from {sorted(SPEC_KEYS)}")
        parsed = {key: _require_number(value, source, f"{path}.{key}")
                  for key, value in fields.items()}
        if not parsed:
            _fail(source, path, "empty spec override (set low/high)")
        out[sname] = SpecOverride(**parsed)
    return out


def _parse_pex(data: Any, source: str) -> PexSettings:
    """Parse and structurally validate the ``pex`` section."""
    from repro.pex.extraction import ExtractionRules

    rule_fields = {f.name for f in dataclasses.fields(ExtractionRules)}
    corners: tuple[str, ...] = ()
    rules: list[tuple[str, float]] = []
    for key, value in _require_mapping(data, source, "pex").items():
        path = f"pex.{key}"
        if key == "corners":
            if (not isinstance(value, list) or not value
                    or not all(isinstance(v, str) for v in value)):
                _fail(source, path, "expected a non-empty list of "
                      "signoff-corner names")
            corners = tuple(value)
        elif key in rule_fields:
            rules.append((key, _require_number(value, source, path)))
        else:
            _fail(source, path, "unknown pex field; choose from "
                  f"{sorted(rule_fields | {'corners'})}")
    return PexSettings(corners=corners, rules=tuple(rules))


def _check_axis_path(path_value: str, source: str, path: str) -> None:
    """An axis path must be ``corner``/``temperature``/``ctor.*``/``attrs.*``."""
    if path_value in AXIS_SCALARS:
        return
    if any(path_value.startswith(p) and len(path_value) > len(p)
           for p in AXIS_PREFIXES):
        return
    _fail(source, path, f"bad axis path {path_value!r}; expected one of "
          f"{AXIS_SCALARS} or a {'/'.join(AXIS_PREFIXES)} prefix")


def _parse_variants(data: Any, source: str) -> VariantSpec:
    """Parse and structurally validate the ``variants`` section."""
    data = _require_mapping(data, source, "variants")
    kind = data.get("kind")
    if kind not in VARIANT_KEYS:
        _fail(source, "variants.kind",
              f"unknown variant kind {kind!r}; choose from "
              f"{sorted(VARIANT_KEYS)}")
    unknown = set(data) - VARIANT_KEYS[kind]
    if unknown:
        _fail(source, f"variants.{sorted(unknown)[0]}",
              f"unknown {kind}-variant field; choose from "
              f"{sorted(VARIANT_KEYS[kind] - {'kind'})}")
    if kind == "sweep":
        path_value = _require_string(data.get("path"), source, "variants.path")
        _check_axis_path(path_value, source, "variants.path")
        values = data.get("values")
        if not isinstance(values, list) or not values:
            _fail(source, "variants.values", "expected a non-empty list")
        tag = data.get("tag", "")
        if tag and not isinstance(tag, str):
            _fail(source, "variants.tag", f"expected a string, got {tag!r}")
        return VariantSpec(kind="sweep", path=path_value,
                           values=tuple(values), tag=tag)
    if kind == "grid":
        axes_map = _require_mapping(data.get("axes"), source, "variants.axes")
        if not axes_map:
            _fail(source, "variants.axes", "expected at least one axis")
        axes = []
        for path_value, values in axes_map.items():
            apath = f"variants.axes.{path_value}"
            _check_axis_path(path_value, source, apath)
            if not isinstance(values, list) or not values:
                _fail(source, apath, "expected a non-empty list of values")
            axes.append((path_value, tuple(values)))
        return VariantSpec(kind="grid", axes=tuple(axes))
    count = data.get("count")
    if isinstance(count, bool) or not isinstance(count, int) or count < 1:
        _fail(source, "variants.count", f"expected an integer >= 1, "
              f"got {count!r}")
    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        _fail(source, "variants.seed", f"expected an integer >= 0, "
              f"got {seed!r}")
    span = data.get("span", 0.5)
    span = _require_number(span, source, "variants.span")
    if not 0.0 < span <= 1.0:
        _fail(source, "variants.span", f"span {span} outside (0, 1]")
    params = data.get("params", [])
    if (not isinstance(params, list)
            or not all(isinstance(p, str) for p in params)):
        _fail(source, "variants.params",
              "expected a list of parameter names")
    return VariantSpec(kind="random", count=count, seed=seed, span=span,
                       params=tuple(params))


def parse_declaration(data: Any, name: str | None = None,
                      source: str = "<declaration>") -> Declaration:
    """Parse one raw mapping into a validated :class:`Declaration`.

    ``name`` supplies the scenario name when the mapping omits the
    ``name`` key (the loader passes the file stem).  Structural problems
    — a non-mapping document, unknown fields, wrong value types, bad
    corner/technology names — raise :class:`~repro.errors.TopologyError`
    as ``source: key.path: message``.
    """
    data = _require_mapping(data, source, "<root>")
    unknown = set(data) - TOP_LEVEL_KEYS
    if unknown:
        _fail(source, sorted(unknown)[0],
              f"unknown field; choose from {sorted(TOP_LEVEL_KEYS)}")
    if "name" in data:
        name = _require_string(data["name"], source, "name")
    if not name:
        _fail(source, "name", "scenario needs a name (key or file stem)")
    base = _require_string(data.get("base"), source, "base")
    description = data.get("description", "")
    if not isinstance(description, str):
        _fail(source, "description", f"expected a string, "
              f"got {description!r}")
    corner = (parse_corner(data["corner"], source, "corner")
              if "corner" in data else None)
    temperature = None
    if "temperature" in data:
        temperature = _require_number(data["temperature"], source,
                                      "temperature")
        if temperature <= 0:
            _fail(source, "temperature",
                  f"temperature {temperature} K must be positive")
    technology = None
    if "technology" in data:
        technology = _require_string(data["technology"], source,
                                     "technology")
    ctor = dict(_require_mapping(data.get("ctor", {}), source, "ctor"))
    for key in ctor:
        if not isinstance(key, str):
            _fail(source, f"ctor.{key}", "ctor keys must be strings")
    attrs = {}
    for key, value in _require_mapping(data.get("attrs", {}), source,
                                       "attrs").items():
        attrs[key] = _require_number(value, source, f"attrs.{key}")
    grid = _parse_grid(data.get("grid", {}), source)
    specs = _parse_specs(data.get("specs", {}), source)
    pex = _parse_pex(data["pex"], source) if "pex" in data else None
    variants = (_parse_variants(data["variants"], source)
                if "variants" in data else None)
    return Declaration(name=name, base=base, source=source,
                       description=description, corner=corner,
                       temperature=temperature, technology=technology,
                       ctor=ctor, attrs=attrs, grid=grid, specs=specs,
                       pex=pex, variants=variants)


def load_structured_file(path: pathlib.Path | str) -> Any:
    """Load one YAML or JSON document from disk.

    ``.json`` files parse with the :mod:`json` module (strict), anything
    else through :func:`yaml.safe_load` (which accepts JSON too).  Parse
    errors raise :class:`~repro.errors.TopologyError` naming the file —
    the zoo's uniform error surface; :mod:`repro.config` reuses this for
    YAML experiment configs.
    """
    import yaml

    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TopologyError(f"{path}: unreadable: {exc}") from None
    try:
        if path.suffix == ".json":
            return json.loads(text)
        return yaml.safe_load(text)
    except (json.JSONDecodeError, yaml.YAMLError) as exc:
        raise TopologyError(f"{path}: parse error: {exc}") from None
