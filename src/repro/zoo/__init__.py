"""The declarative scenario zoo: sizing scenarios as YAML/JSON data.

A *scenario* is everything the framework needs to size one circuit —
topology, parameter grids, spec space, environment (corner /
temperature / technology), optional PEX settings — declared in a small
config file instead of a Python module.  Declarations inherit from a
registered :class:`~repro.topologies.base.Topology` class or from each
other (child overrides win, per key), and seeded variant generators
expand one file into whole families: chain-length sweeps, load/corner
grids, randomised scenario families for RL generalisation.

* :mod:`repro.zoo.schema` — the declaration model: allowed fields,
  parsing, structural validation, round-trip serialisation;
* :mod:`repro.zoo.loader` — the compile step: inheritance resolution,
  variant expansion, semantic validation against the base topology, and
  the cached :func:`~repro.zoo.loader.registry`;
* ``repro/zoo/builtin/*.yml`` — the shipped scenarios, each proven
  bitwise-identical to its module-defined base by the test suite.

User scenarios load from the directories named by ``REPRO_ZOO_DIR``
(``os.pathsep``-separated); the golden, equivalence and CLI test
matrices enumerate the registry, so a new scenario file grows the test
matrix with no test-code edit.  Every validation failure raises
:class:`~repro.errors.TopologyError` naming the file and key path.
"""

from repro.zoo.loader import (BASE_TOPOLOGIES, TECHNOLOGIES, ZOO_DIR_ENV,
                              CompiledScenario, builtin_dir,
                              compile_declarations, registry, scenario,
                              scenario_names, zoo_dirs)
from repro.zoo.schema import (Declaration, GridOverride, PexSettings,
                              SpecOverride, VariantSpec,
                              load_structured_file, parse_declaration)

__all__ = [
    "BASE_TOPOLOGIES",
    "CompiledScenario",
    "Declaration",
    "GridOverride",
    "PexSettings",
    "SpecOverride",
    "TECHNOLOGIES",
    "VariantSpec",
    "ZOO_DIR_ENV",
    "builtin_dir",
    "compile_declarations",
    "load_structured_file",
    "parse_declaration",
    "registry",
    "scenario",
    "scenario_names",
    "zoo_dirs",
]
