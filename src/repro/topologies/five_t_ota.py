"""Five-transistor OTA — the extensibility example topology.

The paper's framework claims to "design any circuit topology" given the
three ingredients of its Fig. 1 (parameter ranges, target specs, a
netlist/testbench).  This module is the demonstration: a fourth topology
added with nothing but those ingredients — no changes anywhere else in
the stack — and exercised by its own tests and example
(``examples/custom_topology.py``).

The circuit is the classic single-stage OTA: NMOS differential pair
(M1/M2), PMOS current-mirror load (M3/M4), NMOS tail source (M5) mirrored
from a bias diode (M6), driving a fixed capacitive load.  Being
single-stage it is dominant-pole by construction, so the interesting
trade-offs are gain vs. bandwidth vs. power — three specs, four width
parameters.

Spec ranges are calibrated to the achievable surface of the ptm45 card
the same way EXPERIMENTS.md documents for the TIA (the class docstring of
each spec notes the probe results).
"""

from __future__ import annotations

from repro.circuits.elements import Capacitor, CurrentSource, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace

from repro.measure.pipeline import (
    DcGain,
    MeasurementPlan,
    SupplyCurrent,
    UnityGainBandwidth,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class FiveTransistorOta(Topology):
    """Single-stage 5T OTA on the paper's 0.5 um width grid."""

    name = "five_t_ota"

    #: Reference current into the bias diode M6.
    I_BIAS_REF = 20e-6
    #: Output load capacitance.
    C_LOAD = 1.0 * PICO
    #: Input common-mode voltage as a fraction of VDD.
    VCM_FRACTION = 0.55

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        half_um = 0.5 * MICRO
        return ParameterSpace([
            GridParam("w_in", 1, 100, 1, scale=half_um, unit="m"),    # M1 = M2
            GridParam("w_load", 1, 100, 1, scale=half_um, unit="m"),  # M3 = M4
            GridParam("w_tail", 1, 100, 1, scale=half_um, unit="m"),  # M5
            GridParam("w_bias", 1, 100, 1, scale=half_um, unit="m"),  # M6
        ])

    def _build_spec_space(self) -> SpecSpace:
        # Calibration probe (grid centre + 300 random sizings, TT, 27 C):
        # gain spans ~7-297 V/V (10th-90th percentile 98-257), UGBW
        # 0.7-283 MHz (9-110 MHz), ibias 20-760 uA.  Target ranges sit
        # inside the 10-90 band so most targets are reachable but not
        # trivially so.
        return SpecSpace([
            Spec("gain", 100.0, 250.0, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("ugbw", 5.0e6, 1.0e8, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("ibias", 3.0e-5, 5.0e-4, SpecKind.MINIMIZE,
                 log_scale=True, unit="A"),
        ])

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")

        net = Netlist("five_t_ota")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VINP", "inp", "0", dc=vcm, ac=+0.5))
        net.add(VoltageSource("VINN", "inn", "0", dc=vcm, ac=-0.5))
        net.add(CurrentSource("IBIAS", "vdd", "nb", dc=self.I_BIAS_REF))

        net.add(Mosfet("M6", "nb", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_bias"], l=length))
        net.add(Mosfet("M5", "nt", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_tail"], l=length))
        net.add(Mosfet("M1", "d1", "inn", "nt", "0", polarity="nmos",
                       params=nmos, w=values["w_in"], l=length))
        net.add(Mosfet("M2", "out", "inp", "nt", "0", polarity="nmos",
                       params=nmos, w=values["w_in"], l=length))
        net.add(Mosfet("M3", "d1", "d1", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_load"], l=length))
        net.add(Mosfet("M4", "out", "d1", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_load"], l=length))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        net["M6"].w = values["w_bias"]
        net["M5"].w = values["w_tail"]
        net["M1"].w = net["M2"].w = values["w_in"]
        net["M3"].w = net["M4"].w = values["w_load"]
        return True

    #: AC sweep grid (class-level: building it per measurement is waste).
    AC_FREQUENCIES = log_frequencies(1e3, 1e11, points_per_decade=8)

    def measurements(self) -> MeasurementPlan:
        """Differential gain, unity-gain bandwidth and supply current —
        one AC sweep at the output plus one branch current."""
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            UnityGainBandwidth("ugbw", "out", freqs),
            SupplyCurrent("ibias", "VDD"),
        ])
