"""Transimpedance amplifier (paper §III-A, Fig. 4).

A resistively-fed-back CMOS inverter TIA in the 45 nm-class technology:
the photodiode is modelled as an AC current source with a junction
capacitance at the input node, the inverter (one NMOS, one PMOS, each with
its own width and multiplier action parameters) self-biases through the
feedback resistor, and the feedback resistance is built from a
series/parallel array of 5.6 kOhm unit resistors — exactly the action
space the paper gives:

* transistor width  ``[2, 10, 2] um`` and multiplier ``[2, 32, 2]`` (per device),
* unit resistors in series ``[2, 20, 2]`` and in parallel ``[1, 20, 1]``.

Design specs (paper ranges): settling time (5–500 ps, upper bound), cutoff
frequency (0.5–7 GHz, lower bound), and integrated input-referred noise
(1 uV–500 uV rms, upper bound).
"""

from __future__ import annotations

from repro.circuits.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.measure.pipeline import (
    Bandwidth3dB,
    MeasurementPlan,
    OutputNoiseRms,
    StepSettling,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import FEMTO, KILO, MICRO, PICO


class TransimpedanceAmplifier(Topology):
    """Inverter-based TIA with a series/parallel unit-resistor feedback array."""

    name = "tia"

    #: Unit feedback resistance (paper: "the fixed unit resistance is 5.6 kOhm").
    R_UNIT = 5.6 * KILO
    #: Photodiode junction capacitance at the input node.
    C_PHOTODIODE = 10.0 * FEMTO
    #: Output load capacitance.
    C_LOAD = 4.0 * FEMTO
    #: Channel length [m]; the TIA uses near-minimum length for speed,
    #: unlike the op-amps which use long channels for gain.
    LENGTH = 0.1 * MICRO
    #: Settling tolerance band (fraction of the step amplitude).
    SETTLE_TOL = 0.01

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        return ParameterSpace([
            GridParam("nmos_w", 2, 10, 2, scale=MICRO, unit="m"),
            GridParam("nmos_m", 2, 32, 2),
            GridParam("pmos_w", 2, 10, 2, scale=MICRO, unit="m"),
            GridParam("pmos_m", 2, 32, 2),
            GridParam("rf_series", 2, 20, 2),
            GridParam("rf_parallel", 1, 20, 1),
        ])

    def _build_spec_space(self) -> SpecSpace:
        # The paper's spans (100x settling, 14x cutoff, wide noise) around
        # *its* simulator's achievable surface; ours is recalibrated to this
        # MNA substrate's surface (see EXPERIMENTS.md) with the same
        # structure: settling and noise are upper bounds, cutoff frequency
        # a lower bound, and the joint corner (fast + quiet) infeasible.
        # Ranges sit in the demanding upper half of the achievable surface
        # (calibrated in EXPERIMENTS.md): ~83% of the target box is covered
        # by at least one design in a 2500-point random sample, and a random
        # search needs a few hundred simulations for the median target —
        # the same difficulty regime as the paper's TIA targets (GA: 376).
        return SpecSpace([
            Spec("settling_time", 3e-10, 2e-9, SpecKind.UPPER_BOUND,
                 log_scale=True, unit="s"),
            Spec("cutoff_freq", 5.0e8, 2.5e9, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("noise", 2.4e-4, 4.0e-4, SpecKind.UPPER_BOUND,
                 log_scale=True, unit="Vrms"),
        ])

    def feedback_resistance(self, values: dict[str, float]) -> float:
        """R_f of the series/parallel array of 5.6 kOhm units."""
        return self.R_UNIT * values["rf_series"] / values["rf_parallel"]

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = self.LENGTH
        net = Netlist("tia")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        # Photodiode: signal current injected into the input node.
        net.add(CurrentSource("IIN", "0", "in", dc=0.0, ac=1.0))
        net.add(Capacitor("CPD", "in", "0", self.C_PHOTODIODE))
        net.add(Mosfet("MN", "out", "in", "0", "0", polarity="nmos",
                       params=self.device_params("nmos"),
                       w=values["nmos_w"], l=length, m=values["nmos_m"]))
        net.add(Mosfet("MP", "out", "in", "vdd", "vdd", polarity="pmos",
                       params=self.device_params("pmos"),
                       w=values["pmos_w"], l=length, m=values["pmos_m"]))
        net.add(Resistor("RF", "in", "out", self.feedback_resistance(values)))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        mn, mp = net["MN"], net["MP"]
        mn.w = values["nmos_w"]
        mn.m = values["nmos_m"]
        mp.w = values["pmos_w"]
        mp.m = values["pmos_m"]
        net["RF"].resistance = self.feedback_resistance(values)
        return True

    #: Sweep grids (class-level: building them per measurement is waste,
    #: and stable array identities keep the omega cache in repro.sim.ac hot).
    AC_FREQUENCIES = log_frequencies(1e5, 1e12, points_per_decade=10)
    NOISE_FREQUENCIES = log_frequencies(1e3, 1e12, points_per_decade=8)

    def measurements(self) -> MeasurementPlan:
        """Settling time, cutoff frequency and feedback-referred noise.

        One AC transimpedance sweep serves the -3 dB cutoff, the
        step-response record length (6 time constants of the cutoff) and
        the DC transimpedance the noise referral divides by; the
        feedback resistance is read from the stack's captured element
        values, so every slice of every stack — schematic batches, PEX
        corner stacks, mismatch draws — measures stacked with no
        per-slice fallback.
        """
        ac, nf = self.AC_FREQUENCIES, self.NOISE_FREQUENCIES
        return MeasurementPlan([
            Bandwidth3dB("cutoff_freq", "out", ac),
            StepSettling("settling_time", "out", ac,
                         tolerance=self.SETTLE_TOL, n_steps=600,
                         duration_factor=6.0, min_corner=1e7),
            OutputNoiseRms("noise", "out", nf, refer_resistor="RF",
                           refer_frequencies=ac, refer_node="out"),
        ])
