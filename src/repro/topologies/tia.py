"""Transimpedance amplifier (paper §III-A, Fig. 4).

A resistively-fed-back CMOS inverter TIA in the 45 nm-class technology:
the photodiode is modelled as an AC current source with a junction
capacitance at the input node, the inverter (one NMOS, one PMOS, each with
its own width and multiplier action parameters) self-biases through the
feedback resistor, and the feedback resistance is built from a
series/parallel array of 5.6 kOhm unit resistors — exactly the action
space the paper gives:

* transistor width  ``[2, 10, 2] um`` and multiplier ``[2, 32, 2]`` (per device),
* unit resistors in series ``[2, 20, 2]`` and in parallel ``[1, 20, 1]``.

Design specs (paper ranges): settling time (5–500 ps, upper bound), cutoff
frequency (0.5–7 GHz, lower bound), and integrated input-referred noise
(1 uV–500 uV rms, upper bound).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.errors import MeasurementError
from repro.measure.acspecs import f3db, f3db_batch
from repro.measure.transpecs import settling_time
from repro.sim.ac import ac_node_response_batch, ac_sweep, log_frequencies
from repro.sim.dc import OperatingPoint
from repro.sim.linear import linear_step_response, step_response_node_batch
from repro.sim.noise import noise_analysis, output_noise_rms_batch
from repro.sim.system import MnaSystem
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import FEMTO, KILO, MICRO, PICO


class TransimpedanceAmplifier(Topology):
    """Inverter-based TIA with a series/parallel unit-resistor feedback array."""

    name = "tia"

    #: Unit feedback resistance (paper: "the fixed unit resistance is 5.6 kOhm").
    R_UNIT = 5.6 * KILO
    #: Photodiode junction capacitance at the input node.
    C_PHOTODIODE = 10.0 * FEMTO
    #: Output load capacitance.
    C_LOAD = 4.0 * FEMTO
    #: Channel length [m]; the TIA uses near-minimum length for speed,
    #: unlike the op-amps which use long channels for gain.
    LENGTH = 0.1 * MICRO
    #: Settling tolerance band (fraction of the step amplitude).
    SETTLE_TOL = 0.01

    @classmethod
    def default_technology(cls) -> Technology:
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        return ParameterSpace([
            GridParam("nmos_w", 2, 10, 2, scale=MICRO, unit="m"),
            GridParam("nmos_m", 2, 32, 2),
            GridParam("pmos_w", 2, 10, 2, scale=MICRO, unit="m"),
            GridParam("pmos_m", 2, 32, 2),
            GridParam("rf_series", 2, 20, 2),
            GridParam("rf_parallel", 1, 20, 1),
        ])

    def _build_spec_space(self) -> SpecSpace:
        # The paper's spans (100x settling, 14x cutoff, wide noise) around
        # *its* simulator's achievable surface; ours is recalibrated to this
        # MNA substrate's surface (see EXPERIMENTS.md) with the same
        # structure: settling and noise are upper bounds, cutoff frequency
        # a lower bound, and the joint corner (fast + quiet) infeasible.
        # Ranges sit in the demanding upper half of the achievable surface
        # (calibrated in EXPERIMENTS.md): ~83% of the target box is covered
        # by at least one design in a 2500-point random sample, and a random
        # search needs a few hundred simulations for the median target —
        # the same difficulty regime as the paper's TIA targets (GA: 376).
        return SpecSpace([
            Spec("settling_time", 3e-10, 2e-9, SpecKind.UPPER_BOUND,
                 log_scale=True, unit="s"),
            Spec("cutoff_freq", 5.0e8, 2.5e9, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("noise", 2.4e-4, 4.0e-4, SpecKind.UPPER_BOUND,
                 log_scale=True, unit="Vrms"),
        ])

    def feedback_resistance(self, values: dict[str, float]) -> float:
        """R_f of the series/parallel array of 5.6 kOhm units."""
        return self.R_UNIT * values["rf_series"] / values["rf_parallel"]

    def build(self, values: dict[str, float]) -> Netlist:
        tech = self.technology
        length = self.LENGTH
        net = Netlist("tia")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        # Photodiode: signal current injected into the input node.
        net.add(CurrentSource("IIN", "0", "in", dc=0.0, ac=1.0))
        net.add(Capacitor("CPD", "in", "0", self.C_PHOTODIODE))
        net.add(Mosfet("MN", "out", "in", "0", "0", polarity="nmos",
                       params=self.device_params("nmos"),
                       w=values["nmos_w"], l=length, m=values["nmos_m"]))
        net.add(Mosfet("MP", "out", "in", "vdd", "vdd", polarity="pmos",
                       params=self.device_params("pmos"),
                       w=values["pmos_w"], l=length, m=values["pmos_m"]))
        net.add(Resistor("RF", "in", "out", self.feedback_resistance(values)))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        mn, mp = net["MN"], net["MP"]
        mn.w = values["nmos_w"]
        mn.m = values["nmos_m"]
        mp.w = values["pmos_w"]
        mp.m = values["pmos_m"]
        net["RF"].resistance = self.feedback_resistance(values)
        return True

    #: Sweep grids (class-level: building them per measurement is waste,
    #: and stable array identities keep the omega cache in repro.sim.ac hot).
    AC_FREQUENCIES = log_frequencies(1e5, 1e12, points_per_decade=10)
    NOISE_FREQUENCIES = log_frequencies(1e3, 1e12, points_per_decade=8)

    def measure(self, system: MnaSystem, op: OperatingPoint) -> dict[str, float]:
        """Extract settling time, cutoff frequency and integrated noise."""
        ac_freqs = self.AC_FREQUENCIES
        transimpedance = ac_sweep(system, op, ac_freqs).voltage("out")
        cutoff = f3db(ac_freqs, transimpedance)

        # Small-signal step response of the output to a photodiode current step.
        duration = 6.0 / max(cutoff, 1e7)
        response = linear_step_response(system, op, duration=duration, n_steps=600)
        wave = response.voltage("out")
        settle = settling_time(response.time, wave,
                               final=response.final_value("out"),
                               initial=0.0, tolerance=self.SETTLE_TOL)

        noise = noise_analysis(system, op, self.NOISE_FREQUENCIES, "out",
                               refer_to_input=False)
        vn_out = noise.integrated_output_rms()
        # Refer to the input through the DC transimpedance, expressed as an
        # equivalent voltage across the feedback resistor (volts, as the
        # paper's spec table uses).
        rt0 = float(np.abs(transimpedance[0]))
        rf = system.netlist["RF"].resistance
        vn_in = vn_out * rf / max(rt0, 1.0)

        return {"settling_time": settle, "cutoff_freq": cutoff, "noise": vn_in}

    def measure_batch(self, stack, result) -> list[dict[str, float]] | None:
        """Stacked settling/cutoff/noise measurement for a whole batch.

        Mirrors :meth:`measure` with every solve stacked across designs:
        one batched AC sweep (cutoff), one batched closed-form step
        response (settling), and one batched adjoint noise sweep whose
        per-design PSDs are rebuilt from the noise constants the stack
        captured at snapshot time — the chain that used to run design by
        design.  Needs the per-slice sizing ``values`` (for the feedback
        resistance referral); returns None when a slice lacks them so the
        caller falls back to the scalar path.
        """
        specs = [self.failure_measurement() for _ in range(stack.n_designs)]
        rows = np.nonzero(result.converged)[0]
        if len(rows) == 0:
            return specs
        if any(stack.values[r] is None for r in rows):
            return None
        X = result.x[rows]
        arrays = self.batch_state_arrays(stack, X, rows)
        G_ss, C_ss = self.batch_small_signal(stack, X, rows, arrays)
        out_idx = stack.template.node_index["out"]
        freqs = self.AC_FREQUENCIES
        h = ac_node_response_batch(G_ss, C_ss, stack.b_ac[rows], freqs,
                                   out_idx)
        rt0 = np.abs(h[:, 0])
        ok = rt0 > 0.0
        cutoff = f3db_batch(freqs, h)
        durations = 6.0 / np.maximum(cutoff, 1e7)
        times, waves, finals = step_response_node_batch(
            G_ss, C_ss, np.real(stack.b_ac[rows]).astype(float),
            durations, out_idx, n_steps=600)
        vn_out = output_noise_rms_batch(stack, rows, arrays["gm"],
                                        G_ss, C_ss, self.NOISE_FREQUENCIES,
                                        out_idx)
        for j, b in enumerate(rows):
            if not (ok[j] and np.isfinite(finals[j])
                    and np.all(np.isfinite(waves[j]))
                    and np.isfinite(vn_out[j])):
                continue
            try:
                settle = settling_time(times[j], waves[j], final=finals[j],
                                       initial=0.0, tolerance=self.SETTLE_TOL)
            except MeasurementError:
                continue
            rf = self.feedback_resistance(stack.values[b])
            specs[b] = {
                "settling_time": float(settle),
                "cutoff_freq": float(cutoff[j]),
                "noise": float(vn_out[j] * rf / max(rt0[j], 1.0)),
            }
        return specs
