"""Topology interface and the counting/caching simulator wrapper.

A :class:`Topology` owns three things:

* the discretised :class:`~repro.topologies.params.ParameterSpace` (the
  paper's action space),
* a netlist builder mapping physical parameter values to a
  :class:`~repro.circuits.netlist.Netlist` testbench,
* a *measurement declaration* (:meth:`Topology.measurements`): the
  topology's design specs as a composition of reusable pipeline
  primitives (:mod:`repro.measure.pipeline`), which the base class
  evaluates for the scalar and stacked paths alike — scalar
  measurement is literally a batch of one.

:class:`SchematicSimulator` wraps a topology into the object the RL
environment and the baselines consume: ``evaluate(index_vector) -> specs``
with simulation counting (the paper's sample-efficiency metric), optional
memoisation, and warm-started DC solves along sizing trajectories.
"""

from __future__ import annotations

import abc
import dataclasses
import time
import warnings
from typing import Callable

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.technology import Corner, Technology
from repro.core.specs import SpecSpace, failure_measurements
from repro.errors import (ConvergenceError, EvaluationFault,
                          MeasurementError, TicketAbandonedError,
                          TopologyError, TrainingError)
from repro.sim.faults import (PROV_COLD, PROV_HIT, PROV_MEMO, PROV_WARM,
                              BatchReport, FaultRecord, active_profile,
                              check_poison)
from repro.sim.batch import SystemStack, solve_dc_batch
from repro.sim.cache import SimulationCache, SimulationCounter, sizing_key
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.stamp import StampPlan
from repro.sim.store import SCHEMA_VERSION, get_store, scope_digest
from repro.sim.system import MnaSystem
from repro.topologies.params import ParameterSpace
from repro.units import ROOM_TEMPERATURE


class Topology(abc.ABC):
    """A sizable circuit with a parameter grid and measurable specs."""

    #: Subclasses set a short identifier, e.g. "tia".
    name: str = "topology"

    #: When this instance was built by a compiled zoo scenario
    #: (:class:`repro.zoo.loader.CompiledScenario`), the scenario recipe
    #: — the picklable ``(technology, corner, temperature)`` factory the
    #: shard/PVT machinery must rebuild from, so declaration overrides
    #: (ctor arguments, attribute patches, narrowed grids) survive the
    #: round trip to a worker process.  None for module-built instances.
    zoo_recipe = None

    def __init__(self, technology: Technology | None = None,
                 corner: Corner = Corner.TT,
                 temperature: float = ROOM_TEMPERATURE):
        self.technology = technology or self.default_technology()
        self.corner = corner
        self.temperature = float(temperature)
        self.parameter_space = self._build_parameter_space()
        self.spec_space = self._build_spec_space()
        self._warm_x: np.ndarray | None = None
        self._batch_ref_x: np.ndarray | None = None  # batch warm-start seed
        #: Persistent warm-start store wiring (set by the owning
        #: simulator before each evaluation; None = store off).
        self.warm_store = None
        self.warm_scope: str | None = None
        #: Rows of the last simulate_batch seeded from the warm store
        #: (consumed by the simulator for provenance/accounting).
        self.last_warm_rows: list[int] = []
        #: Whether the last scalar simulate was seeded from the store.
        self.last_solve_warm = False
        # One structure cache per (topology, corner, temperature): sizings
        # share netlist structure, so the MNA system is built once and
        # restamped per evaluation (see repro.sim.stamp).
        self._plan = StampPlan(self.build, temperature=self.temperature,
                               updater=self.update_netlist)

    # -- subclass API ---------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def default_technology(cls) -> Technology:
        """Technology card the paper used for this circuit."""

    @abc.abstractmethod
    def _build_parameter_space(self) -> ParameterSpace:
        """The paper's [start, stop, step] action-space grids."""

    @abc.abstractmethod
    def _build_spec_space(self) -> SpecSpace:
        """The paper's design-specification ranges."""

    @abc.abstractmethod
    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the testbench netlist for physical parameter values."""

    def measurements(self):
        """Declare this topology's specs as a measurement-pipeline graph.

        Returns a :class:`~repro.measure.pipeline.MeasurementPlan`
        composing reusable primitives (AC node-response specs, step
        settling, adjoint noise, supply current), or None for legacy
        topologies that override :meth:`measure` directly.  The
        declaration is the *single* source of the topology's measurement
        physics: the base class evaluates it for the scalar path
        (:meth:`measure`, literally a batch of one) and the stacked path
        (:meth:`measure_batch`) alike, on both engine backends.
        """
        return None

    def measure(self, system: MnaSystem, op: OperatingPoint) -> dict[str, float]:
        """Extract all design specs from a solved testbench.

        The default runs the topology's declared measurement plan on a
        batch-of-1 stack snapshot of ``system`` — the same code the
        stacked path runs, so scalar and batched measurements cannot
        drift apart.  Topologies without a declaration must override
        this (the pre-pipeline extension API, still honoured everywhere).
        """
        from repro.measure.pipeline import MeasureContext

        plan = self._measurement_plan()
        if plan is None:
            raise NotImplementedError(
                f"{type(self).__name__} must declare measurements() or "
                "override measure()")
        # One-slice stack cached per system object: the StampPlan reuses
        # one restamped MnaSystem across the sizing loop, so the scalar
        # hot path pays the stack's structure scan once, not per call.
        stack = getattr(self, "_scalar_stack", None)
        if stack is None or stack.template is not system:
            stack = SystemStack(system, 1)
            self._scalar_stack = stack
        else:
            stack.reuse()
        stack.set_design(0, system)
        ctx = MeasureContext(self, stack, np.zeros(1, dtype=np.intp),
                             op.x[np.newaxis, :])
        cols, ok = plan.evaluate(ctx)
        if not ok[0]:
            return self.failure_measurement()
        return {name: float(cols[name][0]) for name in plan.spec_names}

    def _measurement_plan(self):
        """The validated, cached measurement declaration (or None).

        Built once per topology instance; the declared spec names are
        checked against the spec space so :meth:`failure_measurement`
        (which is derived from the same declaration surface) always
        covers exactly the measured specs.
        """
        try:
            return self._mplan
        except AttributeError:
            pass
        plan = self.measurements()
        if plan is not None and set(plan.spec_names) != set(
                self.spec_space.names):
            raise TopologyError(
                f"{type(self).__name__} declares specs "
                f"{sorted(plan.spec_names)} but its spec space defines "
                f"{sorted(self.spec_space.names)}")
        self._mplan = plan
        return plan

    def update_netlist(self, netlist: Netlist,
                       values: dict[str, float]) -> bool:
        """Mutate a previously-built netlist's element values in place for
        a new sizing; return True on success.

        Optional fast path mirroring :meth:`build`'s value mapping without
        reconstructing element objects (the netlist *structure* is fixed
        across sizings).  The default returns False, which makes the
        :class:`~repro.sim.stamp.StampPlan` fall back to a full
        :meth:`build`.  Implementations are verified against fresh builds
        by the engine equivalence tests.
        """
        return False

    # -- shared behaviour -------------------------------------------------------
    def device_params(self, polarity: str):
        """Corner/temperature-adjusted device card for this topology.

        Cached per polarity: corner and temperature are fixed for the
        lifetime of a topology instance, and ``build`` runs once per
        simulator evaluation.
        """
        try:
            return self._device_cards[polarity]
        except AttributeError:
            self._device_cards = {}
        except KeyError:
            pass
        card = self.technology.device(polarity, self.corner, self.temperature)
        self._device_cards[polarity] = card
        return card

    def simulate(self, values: dict[str, float]) -> dict[str, float]:
        """Build, solve and measure one sizing; returns the spec dict.

        The MNA system is obtained through the topology's
        :class:`~repro.sim.stamp.StampPlan` — structure built once,
        matrices restamped in place per sizing.

        DC solves are warm-started from the previous sizing's solution
        (sizing trajectories move one grid step at a time, so the previous
        operating point is an excellent initial guess); without trajectory
        state (first solve of an episode, or right after
        :meth:`reset_warm_start`) the persistent warm-start store is
        consulted for the nearest previously-converged sizing when the
        ``REPRO_CACHE`` store is wired in.  On any convergence trouble
        the solve is retried cold, and if that also fails the pessimistic
        :meth:`failure_measurement` is returned so optimisers always
        receive a numeric (heavily penalised) result.
        """
        system = self._plan.restamp(values)
        op = None
        self.last_solve_warm = False
        seed = self._warm_x
        if seed is not None and seed.shape != (system.size,):
            seed = None
        if seed is None and self.warm_store is not None and self.warm_scope:
            near = self.warm_store.nearest_seed(
                self.warm_scope,
                sizing_key(self.parameter_space.indices_of(values)),
                system.size)
            if near is not None:
                seed = near[0]
                self.last_solve_warm = True
        if seed is not None:
            try:
                op = solve_dc(system, x0=seed)
            except ConvergenceError:
                op = None
                self.last_solve_warm = False
        if op is None:
            try:
                op = solve_dc(system)
            except ConvergenceError:
                self._warm_x = None
                return self.failure_measurement()
        self._warm_x = op.x.copy()
        if self.warm_store is not None and self.warm_scope:
            self.warm_store.record_seed(
                self.warm_scope,
                sizing_key(self.parameter_space.indices_of(values)), op.x)
        try:
            return self.measure(system, op)
        except MeasurementError:
            return self.failure_measurement()

    def simulate_batch(self, values_list: list[dict[str, float]]
                       ) -> list[dict[str, float]]:
        """Batch counterpart of :meth:`simulate` for B sizings at once.

        The DC operating points are found with one stacked damped-Newton
        solve (:func:`~repro.sim.batch.solve_dc_batch`), amortising the
        Python/numpy dispatch overhead that dominates sequential solves;
        designs that fail every convergence strategy fall back to
        :meth:`failure_measurement`, exactly like the scalar path.
        Measurements then run per design against the restamped system.

        Every design Newton-solves independently from one canonical seed
        (the grid-centre operating point — see :meth:`_batch_warm_start`),
        so results are reproducible regardless of evaluation history and
        match sequential :meth:`simulate` calls spec for spec within
        solver tolerance; the per-instance warm-start state is left
        untouched.  With the persistent store wired in (``REPRO_CACHE``)
        each design's seed is upgraded to the nearest previously-converged
        operating point where one exists; a warm-seeded design that fails
        to converge is re-solved from the canonical seed, so the result
        set stays spec-equivalent to the store-off run.
        """
        B = len(values_list)
        self.last_warm_rows = []
        if B == 0:
            return []
        stack: SystemStack = self._plan.stack(values_list)
        seeds = self._batch_warm_start(stack, values_list)
        warm_rows = self.last_warm_rows
        result = solve_dc_batch(stack, x0=seeds)
        if warm_rows and not result.converged.all():
            self._warm_fallback(values_list, result, warm_rows)
        self._record_batch_seeds(values_list, result)
        batched = self.measure_batch(stack, result)
        if batched is not None:
            return batched
        specs: list[dict[str, float]] = []
        for i, values in enumerate(values_list):
            if not result.converged[i]:
                specs.append(self.failure_measurement())
                continue
            system = self._plan.restamp(values)
            op = OperatingPoint(system, result.x[i].copy(),
                                int(result.iterations[i]),
                                float(result.residual_norm[i]))
            try:
                specs.append(self.measure(system, op))
            except MeasurementError:
                specs.append(self.failure_measurement())
        return specs

    def _batch_warm_start(self, stack: SystemStack,
                          values_list: list[dict[str, float]] | None = None
                          ) -> np.ndarray | None:
        """Shared warm start for a batch solve.

        Any valid operating point of the topology is a far better Newton
        seed than zeros (supply/bias rails are already up).  The default
        seed is the *canonical* grid-centre operating point, solved cold
        once and cached — deliberately independent of evaluation history,
        so batch results are reproducible regardless of what was
        simulated before.  Falls back to cold (None) when the centre
        itself fails.

        When ``values_list`` is given and the persistent store is wired
        in, each design's seed is upgraded to the nearest
        previously-converged operating point (content-addressed by
        quantized sizing — still history-independent in the exact-repeat
        case); the upgraded rows are published in
        :attr:`last_warm_rows` so callers can fall back and account.
        """
        ref = self._batch_ref_x
        if ref is None or ref.shape != (stack.size,):
            center = self.parameter_space.values(self.parameter_space.center)
            try:
                ref = solve_dc(self._plan.restamp(center)).x
            except ConvergenceError:
                ref = None
            else:
                self._batch_ref_x = ref
        seeds = (np.tile(ref, (stack.n_designs, 1))
                 if ref is not None else None)
        self.last_warm_rows = []
        if (values_list is None or self.warm_store is None
                or not self.warm_scope):
            return seeds
        for i, values in enumerate(values_list):
            near = self.warm_store.nearest_seed(
                self.warm_scope,
                sizing_key(self.parameter_space.indices_of(values)),
                stack.size)
            if near is None:
                continue
            if seeds is None:
                seeds = np.zeros((stack.n_designs, stack.size))
            seeds[i] = near[0]
            self.last_warm_rows.append(i)
        return seeds

    def _warm_fallback(self, values_list, result, warm_rows) -> None:
        """Re-solve failed warm-seeded designs from the canonical seed.

        The spec-equivalence contract of the warm-start store: a design
        the canonical batch would have converged must not fail just
        because its store seed was a poor guess.  Each non-converged
        warm row is retried scalar from the canonical reference (cold
        when the centre itself failed) and its slice of the batch
        result patched in place; designs failing both paths keep their
        non-converged marking, exactly like the store-off run.
        """
        ref = self._batch_ref_x
        for i in warm_rows:
            if result.converged[i]:
                continue
            system = self._plan.restamp(values_list[i])
            seed = ref if (ref is not None
                           and ref.shape == (system.size,)) else None
            try:
                op = solve_dc(system, x0=seed)
            except ConvergenceError:
                continue
            result.x[i] = op.x
            result.converged[i] = True
            result.iterations[i] = op.iterations
            result.residual_norm[i] = op.residual_norm

    def _record_batch_seeds(self, values_list, result) -> None:
        """Record every converged design's operating point in the store."""
        if self.warm_store is None or not self.warm_scope:
            return
        for i, values in enumerate(values_list):
            if result.converged[i]:
                self.warm_store.record_seed(
                    self.warm_scope,
                    sizing_key(self.parameter_space.indices_of(values)),
                    result.x[i])

    def measure_batch(self, stack: SystemStack, result) -> (
            list[dict[str, float]] | None):
        """Stacked measurement for :meth:`simulate_batch`.

        Evaluates the topology's declared measurement plan over every
        converged slice of the stack in one pass — stacked AC/noise/step
        solves on the dense engine, per-design sweep-factorisation reuse
        on the sparse engine — and returns one spec dict per slice
        (pessimistic failure measurements for non-converged or gated-out
        designs).  Returns None (caller measures design by design) only
        for legacy topologies without a declaration, or when a subclass
        overrides :meth:`measure` (whose custom physics the stacked path
        could not reproduce).
        """
        from repro.measure.pipeline import MeasureContext

        plan = self._measurement_plan()
        if plan is None or type(self).measure is not Topology.measure:
            return None
        specs = [self.failure_measurement() for _ in range(stack.n_designs)]
        rows = np.nonzero(result.converged)[0]
        if len(rows) == 0:
            return specs
        ctx = MeasureContext(self, stack, rows, result.x[rows])
        cols, ok = plan.evaluate(ctx)
        for j, b in enumerate(rows):
            if ok[j]:
                specs[b] = {name: float(cols[name][j])
                            for name in plan.spec_names}
        return specs

    def batch_state_arrays(self, stack: SystemStack, X: np.ndarray,
                           rows: np.ndarray) -> dict[str, np.ndarray]:
        """Stacked MOSFET state arrays for designs ``rows`` at solutions
        ``X`` (one row of ``X`` per entry of ``rows``)."""
        from repro.circuits.mosfet import (
            state_arrays_batch, terminal_voltages_batch)
        dev = stack.dev.take(rows)
        Xp = np.concatenate([X, np.zeros((len(X), 1))], axis=1)
        V = Xp[:, stack.template._terms_pad]
        vgs, vds, vsb = terminal_voltages_batch(dev, V)
        return state_arrays_batch(dev, vgs, vds, vsb)

    def batch_small_signal(self, stack: SystemStack, X: np.ndarray,
                           rows: np.ndarray,
                           arrays: dict[str, np.ndarray] | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked small-signal ``(G_ss, C_ss)`` for designs ``rows``."""
        if arrays is None:
            arrays = self.batch_state_arrays(stack, X, rows)
        tpl = stack.template
        B, n = len(X), stack.size
        n1 = n + 1
        g3 = np.stack([arrays["gm"], arrays["gds"], arrays["gmb"]],
                      axis=-1).reshape(B, -1)
        c4 = np.stack([arrays["cgs"], arrays["cgd"], arrays["cdb"],
                       arrays["csb"]], axis=-1).reshape(B, -1)
        Gp = np.zeros((B, n1, n1))
        Gp[:, :n, :n] = stack.G_rows(rows)
        Gp.reshape(B, -1)[:] += g3 @ tpl.ss_map
        Cp = np.zeros((B, n1, n1))
        Cp[:, :n, :n] = stack.C_rows(rows)
        Cp.reshape(B, -1)[:] += c4 @ tpl.cap_map
        return (np.ascontiguousarray(Gp[:, :n, :n]),
                np.ascontiguousarray(Cp[:, :n, :n]))

    def failure_measurement(self) -> dict[str, float]:
        """Pessimistic spec values reported for non-convergent designs
        (delegates to :func:`repro.core.specs.failure_measurements`, the
        shared penalty-row source)."""
        return failure_measurements(self.spec_space)

    def reset_warm_start(self) -> None:
        """Drop the per-trajectory warm-start state.

        Called when jumping across the grid — and by the RL environment
        on every episode reset, so one episode's final operating point
        never seeds the next episode's first solve (per-episode state
        must not leak between designs).  The *canonical* grid-centre
        seed and the content-addressed store seeds survive by design:
        both are functions of the sizing being solved, not of what was
        solved before, so they carry no trajectory history.
        """
        self._warm_x = None
        self.last_solve_warm = False
        self.last_warm_rows = []


@dataclasses.dataclass
class _BatchPlan:
    """Cache/dedupe plan for one batched evaluation.

    Built by ``CircuitSimulator._plan_batch`` (which also does the
    counter accounting), consumed by ``_finish_batch`` once the distinct
    fresh specs are available.  ``results`` holds the memo and
    store-exact hits already resolved; ``pending`` maps each fresh key
    to the batch rows waiting on it (memoised path), ``fresh_rows`` the
    caller row of each fresh value (uncached path — no longer simply
    positional once the store resolves rows mid-batch), and
    ``provenance`` the per-caller-row resolution code for rows the
    front-end resolved itself (memo/store hits)."""

    results: list
    fresh_keys: list
    fresh_values: list
    pending: dict
    fresh_rows: list = dataclasses.field(default_factory=list)
    provenance: np.ndarray | None = None


class BatchTicket:
    """Handle for an in-flight ``submit_batch`` evaluation.

    Pairs a :class:`_BatchPlan` with the backend handle computing its
    fresh specs: a :class:`~repro.sim.parallel.ShardTicket` when the
    shard pool took the work, the deferred value list when the
    in-process engine will run at collect time, or None when the whole
    batch was served from cache."""

    __slots__ = ("plan", "kind", "handle", "collected")

    def __init__(self, plan: _BatchPlan, kind: str, handle):
        self.plan = plan
        self.kind = kind          # "none" | "shard" | "deferred"
        self.handle = handle
        self.collected = False


class CircuitSimulator(abc.ABC):
    """What optimisers see: index-vector evaluation with sim accounting.

    Batched evaluation can be sharded across worker processes: when the
    ``REPRO_SHARDS`` environment variable asks for more than one shard
    and the simulator provides a picklable :meth:`shard_factory`, the
    distinct cache misses of every ``evaluate_batch`` call are split over
    a persistent :class:`~repro.sim.parallel.ShardPool` (single-process
    fallback otherwise).  Worker results are bitwise identical to the
    in-process engine — each worker runs the same batched solve from the
    same canonical warm seeds.

    Batched evaluation also splits into a non-blocking half-pair —
    :meth:`submit_batch` / :meth:`collect_batch` — used by the async
    rollout pipeline (:mod:`repro.rl.async_env`): submit runs the cache
    front-end and dispatches the distinct misses to the shard pool
    without waiting, so the caller can run policy inference or reward
    bookkeeping while the workers solve.  Without a pool the fresh work
    is simply deferred to collect time (same results, no overlap).
    Tickets are collected in submission order.

    Both paths are *supervised*: a dead/hung shard worker is respawned
    and its shard re-run (bitwise identical — canonical warm seeds), and
    a design whose solve keeps crashing is bisected out and quarantined
    with pessimistic :meth:`failure_measurements` instead of failing the
    batch (the in-process engine applies the same bisection directly).
    Each batched call publishes a
    :class:`~repro.sim.faults.BatchReport` as :attr:`last_batch_report`
    describing any faults, retries and quarantines it absorbed.
    """

    parameter_space: ParameterSpace
    spec_space: SpecSpace
    counter: SimulationCounter
    _pool = None
    #: Address tuple of the current pool when it is remote (None = local).
    _pool_remote = None
    #: Address tuple of a worker set that failed to handshake/connect —
    #: remembered so fallback does not re-dial every batch.
    _remote_failed = None
    #: Whether the one-shot remote-degradation warning already fired.
    _remote_warned = False
    _cache = None
    #: Supervision record of the most recent batched evaluation
    #: (:class:`~repro.sim.faults.BatchReport`; None before the first).
    last_batch_report = None
    _fresh_report = None

    @abc.abstractmethod
    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        """Simulate the sizing at grid ``indices`` and return its specs."""

    def evaluate_batch(self, indices_2d: np.ndarray) -> list[dict[str, float]]:
        """Evaluate B sizings (rows of ``indices_2d``) and return B spec
        dicts.

        The default runs :meth:`evaluate` row by row; simulators with a
        vectorised engine (:class:`SchematicSimulator`,
        :class:`~repro.pex.extraction.PexSimulator`) override this with a
        stacked solve that is several times faster than the loop.
        """
        indices_2d = self._normalize_batch(indices_2d)
        return [self.evaluate(row) for row in indices_2d]

    def _normalize_batch(self, indices_2d) -> np.ndarray:
        """Coerce a batch argument into a well-formed ``(B, P)`` array.

        ``np.atleast_2d`` maps an empty input to shape ``(1, 0)`` — one
        bogus zero-parameter design — so empty batches are normalised to
        ``(0, P)`` explicitly: they flow through the pipeline as a real
        (trivial) batch and come back as an empty result with a clean,
        well-formed report instead of crashing in the engine or the
        shared-memory layer."""
        indices_2d = np.asarray(indices_2d, dtype=np.int64)
        if indices_2d.size == 0:
            return indices_2d.reshape(0, len(self.parameter_space.names))
        return np.atleast_2d(indices_2d)

    def _plan_batch(self, indices_2d: np.ndarray, cache) -> _BatchPlan:
        """Cache/counting front half of batched evaluation.

        Memo hits (and duplicate rows within the batch) are resolved
        from the memo and counted exactly as the sequential loop would
        count them; rows the persistent result store has seen before
        (``REPRO_CACHE``) are replayed bit for bit and charged
        ``cached`` without ever reaching the engine; the remaining
        misses come back as the plan's fresh value list.  With ``cache``
        None every memo-miss row is fresh (no dedupe) — the uncached
        simulator's historical accounting, under which in-batch
        duplicates really are solved twice (each still checks the store
        individually).
        """
        indices_2d = self.parameter_space.clip(
            self._normalize_batch(indices_2d))
        B = len(indices_2d)
        store = get_store()
        scope = self._store_scope() if store is not None else None
        if store is not None and scope is None:
            store = None   # simulator without a content-addressable scope
        if cache is None and store is None:
            self.counter.fresh += B
            return _BatchPlan(
                results=[None] * B, fresh_keys=[],
                fresh_values=[self.parameter_space.values(row)
                              for row in indices_2d],
                pending={}, fresh_rows=list(range(B)))
        results: list[dict[str, float] | None] = [None] * B
        fresh_values: list[dict[str, float]] = []
        fresh_keys: list[tuple[int, ...]] = []
        fresh_rows: list[int] = []
        pending: dict[tuple[int, ...], list[int]] = {}
        provenance = np.zeros(B, dtype=np.int8)
        for r in range(B):
            indices = indices_2d[r]
            key = sizing_key(indices)
            if cache is not None and key in cache:
                self.counter.cached += 1
                results[r] = dict(cache.get_or_compute(
                    key, dict))  # key present: compute never runs
                provenance[r] = PROV_MEMO
                continue
            if cache is not None and key in pending:
                # Duplicate inside the batch: the sequential loop would
                # have found it in the cache by now.
                self.counter.cached += 1
                pending[key].append(r)
                provenance[r] = PROV_MEMO
                continue
            if store is not None:
                row = store.get_result(scope, key)
                if row is not None:
                    # Exact store hit: bitwise replay of the recorded
                    # solve, charged like a memo hit, promoted into the
                    # memo so in-batch duplicates dedupe as usual.
                    self.counter.cached += 1
                    spec = self._row_to_spec(row)
                    results[r] = spec
                    provenance[r] = PROV_HIT
                    if cache is not None:
                        cache.get_or_compute(key, lambda s=spec: dict(s))
                    continue
            self.counter.fresh += 1
            if cache is not None:
                pending[key] = [r]
            fresh_keys.append(key)
            fresh_rows.append(r)
            fresh_values.append(self.parameter_space.values(indices))
        return _BatchPlan(results=results, fresh_keys=fresh_keys,
                          fresh_values=fresh_values, pending=pending,
                          fresh_rows=fresh_rows, provenance=provenance)

    def _finish_batch(self, plan: _BatchPlan, specs, cache
                      ) -> list[dict[str, float]]:
        """Back half of batched evaluation: record, memoise, scatter.

        ``specs`` are the fresh results in ``plan.fresh_values`` order;
        ``plan.fresh_rows`` maps them back to caller rows on the
        uncached path.  Fresh results are recorded into the persistent
        store (quarantined rows excepted — an injected fault must never
        memorialise its penalty row as the design's result)."""
        store = get_store()
        scope = self._store_scope() if store is not None else None
        if store is not None and scope is not None and plan.fresh_keys:
            quarantined = (self._fresh_report.quarantined
                           if self._fresh_report is not None else None)
            for i, (key, spec) in enumerate(zip(plan.fresh_keys, specs)):
                if (quarantined is not None and i < len(quarantined)
                        and quarantined[i]):
                    continue
                store.put_result(scope, key, self._spec_to_row(spec))
        if cache is None or not plan.pending:
            if plan.fresh_rows:
                for r, spec in zip(plan.fresh_rows, specs):
                    plan.results[r] = dict(spec)
            elif specs:   # legacy positional path (no row mapping)
                plan.results = [dict(spec) for spec in specs]
            return plan.results
        for key, spec in zip(plan.fresh_keys, specs):
            cache.get_or_compute(key, lambda s=spec: s)
            for r in plan.pending[key]:
                plan.results[r] = dict(spec)
        return plan.results

    def _evaluate_batch_cached(self, indices_2d: np.ndarray, fresh_fn,
                               cache) -> list[dict[str, float]]:
        """Shared cache/counting front-end for batched evaluation.

        ``fresh_fn(values_list) -> list[dict]`` computes the distinct
        cache misses (see :meth:`_plan_batch` / :meth:`_finish_batch`).
        The fresh path's supervision record is republished as
        :attr:`last_batch_report` in caller-batch coordinates.
        """
        plan = self._plan_batch(indices_2d, cache)
        self._fresh_report = None
        specs = fresh_fn(plan.fresh_values) if plan.fresh_values else []
        results = self._finish_batch(plan, specs, cache)
        self._publish_report(plan, len(results))
        return results

    def _publish_report(self, plan: _BatchPlan, n_designs: int) -> None:
        """Translate the fresh-path report into caller coordinates.

        ``_fresh_report`` (set by :meth:`_shard_eval` or
        :meth:`_recover_batch`) is indexed by *fresh* row; the cache
        front-end may have deduped, so each fresh row is mapped back to
        the caller rows it served.  All-cache-hit batches publish a
        clean report — nothing was at risk.
        """
        fresh = self._fresh_report
        if fresh is None:
            report = BatchReport(n_designs)
        else:
            if plan.pending:
                row_map = {i: plan.pending[key]
                           for i, key in enumerate(plan.fresh_keys)}
            elif plan.fresh_rows:
                row_map = {i: [r] for i, r in enumerate(plan.fresh_rows)}
            else:   # uncached: fresh rows are caller rows, positionally
                row_map = {i: [i] for i in range(fresh.n_designs)}
            report = fresh.translate(row_map, n_designs)
        if plan.provenance is not None:
            # Rows the front-end resolved itself (memo / store hits)
            # overwrite whatever the fresh translation scattered there.
            mask = plan.provenance != PROV_COLD
            report.provenance[mask] = plan.provenance[mask]
        for system in self._krylov_systems():
            stats = getattr(system, "krylov_state", None)
            if stats is None:
                continue
            taken = stats.stats.take()
            report.krylov_solves += taken["solves"]
            report.krylov_iterations += taken["iterations"]
            report.krylov_fallbacks += taken["fallbacks"]
            report.krylov_residual = max(report.krylov_residual,
                                         taken["max_residual"])
        self.last_batch_report = report

    def _krylov_systems(self) -> list:
        """Systems whose iterative solve counters this batch should
        drain into its report (empty for non-engine simulators; in
        shard/remote runs the workers' counters stay in their own
        processes — only in-process solves are surfaced)."""
        return []

    def failure_measurements(self) -> dict[str, float]:
        """Pessimistic spec values charged to quarantined designs
        (delegates to :func:`repro.core.specs.failure_measurements`)."""
        return failure_measurements(self.spec_space)

    # -- persistent store -----------------------------------------------------
    def _store_scope(self) -> str | None:
        """Content digest namespacing this simulator in the persistent
        store (:mod:`repro.sim.store`), or None when the simulator has
        no content-addressable identity (plain row-by-row simulators) —
        the store is then skipped entirely.  Computed lazily once per
        instance by the engine-backed subclasses."""
        return None

    def _row_to_spec(self, row: np.ndarray) -> dict[str, float]:
        """One stored float64 spec row back to a spec dict."""
        return {name: float(v)
                for name, v in zip(self.spec_space.names, row)}

    def _spec_to_row(self, spec: dict[str, float]) -> np.ndarray:
        """One spec dict as a float64 row in spec-space order (the
        store's bitwise-stable wire format)."""
        return np.array([spec[name] for name in self.spec_space.names],
                        dtype=np.float64)

    def _consume_warm_rows(self) -> list[int]:
        """Rows of the engine's last fresh batch that were seeded from
        the warm-start store (cleared on read).  The base simulator has
        no warm-start engine, so nothing to report."""
        return []

    def _absorb_fresh_provenance(self) -> None:
        """Fold the fresh report's provenance into the counter.

        Exact store hits found *inside* a shard worker were charged
        ``fresh`` at plan time (the front-end missed them — another
        process recorded the row in between); they are re-charged
        ``cached``, keeping the accounting identical wherever the hit
        surfaces.  Store-warm-started solves bump ``warm_started``
        (still ``fresh`` — a Newton solve ran).
        """
        report = self._fresh_report
        if report is None:
            return
        hits = int((report.provenance == PROV_HIT).sum())
        if hits:
            self.counter.fresh -= hits
            self.counter.cached += hits
        self.counter.warm_started += int(
            (report.provenance == PROV_WARM).sum())

    def _worker_batch(self, values_list: list[dict[str, float]]
                      ) -> tuple[list[dict[str, float]], list[int]]:
        """Store-aware engine entry for shard workers.

        The parent front-end resolves exact hits before sharding, so
        rows arriving here are misses *as of plan time* — but with a
        shared disk store another process may have recorded a row since
        (or concurrently), so workers consult the store once more before
        solving.  Returns ``(specs, provenance)``: exact hits replay
        bitwise without a solve, misses run the raw batched engine
        (faults still escape to the supervisor) with store-warm seeds.
        Workers never record result rows — the parent front-end owns the
        exact tier's writes; warm seeds are recorded by whoever solved.
        """
        store = get_store()
        scope = self._store_scope() if store is not None else None
        n = len(values_list)
        provenance = [PROV_COLD] * n
        if store is None or scope is None:
            specs = self._inprocess_batch(values_list)
            for i in self._consume_warm_rows():
                provenance[i] = PROV_WARM
            return specs, provenance
        specs: list[dict[str, float] | None] = [None] * n
        miss: list[int] = []
        for i, values in enumerate(values_list):
            key = sizing_key(self.parameter_space.indices_of(values))
            row = store.get_result(scope, key)
            if row is not None:
                specs[i] = self._row_to_spec(row)
                provenance[i] = PROV_HIT
            else:
                miss.append(i)
        if miss:
            out = self._inprocess_batch([values_list[i] for i in miss])
            warm = set(self._consume_warm_rows())
            for j, i in enumerate(miss):
                specs[i] = out[j]
                if j in warm:
                    provenance[i] = PROV_WARM
        return specs, provenance

    def reset_warm_start(self) -> None:
        """Drop any per-trajectory warm-start state (no-op by default;
        the engine-backed simulators forward to their topology so the
        RL environment can clear episode state between designs)."""

    # -- async submit/collect -------------------------------------------------
    @property
    def supports_batch_pipeline(self) -> bool:
        """Whether :meth:`submit_batch`/:meth:`collect_batch` can run.

        True once the simulator overrides :meth:`_inprocess_batch` with
        a real batched engine (``SchematicSimulator``, ``PexSimulator``);
        plain row-by-row simulators stay on the synchronous path (the
        async consumers check this before pipelining)."""
        return (type(self)._inprocess_batch
                is not CircuitSimulator._inprocess_batch)

    def submit_batch(self, indices_2d: np.ndarray) -> BatchTicket:
        """Non-blocking front half of :meth:`evaluate_batch`.

        Runs the cache/dedupe front-end immediately, dispatches the
        distinct misses to the shard pool when ``REPRO_SHARDS`` provides
        one (defers them to collect time otherwise), and returns a
        :class:`BatchTicket` for :meth:`collect_batch`.  Requires a
        batched engine (:attr:`supports_batch_pipeline`); collect
        tickets in submission order.
        """
        if not self.supports_batch_pipeline:
            raise TrainingError(
                f"{type(self).__name__} has no batched engine for "
                "submit_batch/collect_batch")
        plan = self._plan_batch(indices_2d, self._cache)
        if not plan.fresh_values:
            return BatchTicket(plan, "none", None)
        pool = self._resolve_shard_pool(len(plan.fresh_values))
        if pool is None:
            return BatchTicket(plan, "deferred", plan.fresh_values)
        ticket = pool.submit_values(self._values_matrix(plan.fresh_values))
        return BatchTicket(plan, "shard", ticket)

    def collect_batch(self, ticket: BatchTicket) -> list[dict[str, float]]:
        """Blocking back half of :meth:`submit_batch`: the B spec dicts.

        Supervision (worker respawn, retry, quarantine) happens inside
        the shard pool's collect; the resulting report is republished as
        :attr:`last_batch_report`."""
        if ticket.collected:
            raise TrainingError("batch ticket already collected")
        ticket.collected = True
        self._fresh_report = None
        if ticket.kind == "shard":
            if self._pool is None:
                raise TicketAbandonedError(
                    f"shard pool closed with batches in flight (ticket "
                    f"#{ticket.handle.id}, {ticket.handle.n_rows} designs)")
            specs = self._rows_to_specs(self._pool.collect(ticket.handle))
            self._fresh_report = ticket.handle.report
            self._absorb_fresh_provenance()
        elif ticket.kind == "deferred":
            specs = self._recover_batch(ticket.handle)
        else:
            specs = []
        results = self._finish_batch(ticket.plan, specs, self._cache)
        self._publish_report(ticket.plan, len(results))
        return results

    # -- sharding -------------------------------------------------------------
    def shard_factory(self):
        """Picklable zero-argument factory building an equivalent simulator
        in a worker process (None = sharding unsupported)."""
        return None

    def _inprocess_batch(self, values_list: list[dict[str, float]]
                         ) -> list[dict[str, float]]:
        """Batched engine entry for distinct fresh values (no sharding).

        Overridden by the simulators with a vectorised engine; the base
        simulator has none, so the batched async/shard paths refuse
        rather than silently degrade."""
        raise TrainingError(
            f"{type(self).__name__} has no batched engine")

    def _fresh_batch(self, values_list: list[dict[str, float]]
                     ) -> list[dict[str, float]]:
        """Compute distinct cache misses: sharded when configured,
        in-process (with the same quarantine semantics) otherwise."""
        sharded = self._shard_eval(values_list)
        if sharded is not None:
            return sharded
        return self._recover_batch(values_list)

    def _recover_batch(self, values_list: list[dict[str, float]]
                       ) -> list[dict[str, float]]:
        """In-process engine run with poison quarantine (no pool).

        Mirrors the shard supervisor's contract on the single-process
        path: an evaluation fault (injected poison, a numerical crash
        escaping the solver's own fallbacks) bisects the batch until the
        offending design is isolated, which is then charged
        :meth:`failure_measurements` — healthy designs in the same batch
        are re-run in their sub-batches and keep normal results.  The
        resulting :class:`~repro.sim.faults.BatchReport` lands in
        ``_fresh_report`` for :meth:`_publish_report`.
        """
        report = BatchReport(len(values_list))
        poison = tuple(d for d in active_profile() if d.kind == "poison")
        t0 = time.perf_counter()
        specs: list[dict[str, float] | None] = [None] * len(values_list)
        self._recover_into(values_list, 0, specs, report, poison)
        report.latency[:] = time.perf_counter() - t0
        self._fresh_report = report
        self._absorb_fresh_provenance()
        return specs

    def _recover_into(self, values_list, base: int, specs, report,
                      poison) -> None:
        """Recursive bisection helper of :meth:`_recover_batch`.

        Fills ``specs[base:base+len(values_list)]``; only evaluation
        faults and numerical crashes trigger bisection — configuration
        errors (bad topology parameters, missing engines) still raise.
        """
        rows = tuple(range(base, base + len(values_list)))
        try:
            if poison:
                check_poison(self._values_matrix(values_list), poison)
            out = self._inprocess_batch(values_list)
        except (EvaluationFault, np.linalg.LinAlgError,
                FloatingPointError) as exc:
            self._consume_warm_rows()   # discard partial warm state
            report.faults.append(FaultRecord(
                "solve-error", -1, rows, int(report.attempts[base]) + 1,
                f"{type(exc).__name__}: {exc}"))
            report.attempts[list(rows)] += 1
            if len(values_list) == 1:
                specs[base] = self.failure_measurements()
                report.quarantined[base] = True
                report.faults.append(FaultRecord(
                    "quarantine", -1, (base,),
                    int(report.attempts[base]),
                    "design quarantined after in-process fault"))
                return
            mid = len(values_list) // 2
            report.retries += 1
            self._recover_into(values_list[:mid], base, specs, report,
                               poison)
            self._recover_into(values_list[mid:], base + mid, specs,
                               report, poison)
            return
        for i, spec in enumerate(out):
            specs[base + i] = spec
        for i in self._consume_warm_rows():
            report.provenance[base + i] = PROV_WARM
        report.attempts[list(rows)] += 1

    def _values_matrix(self, values_list: list[dict[str, float]]
                       ) -> np.ndarray:
        """Stack value dicts into the shard pool's (B, P) wire format."""
        names = self.parameter_space.names
        return np.array([[values[name] for name in names]
                         for values in values_list])

    def _rows_to_specs(self, out: np.ndarray) -> list[dict[str, float]]:
        """Inverse of the wire format: (B, S) spec rows back to dicts."""
        spec_names = self.spec_space.names
        return [{name: float(x) for name, x in zip(spec_names, row)}
                for row in out]

    def _remote_hello(self):
        """Handshake payload for remote shard workers, or None when the
        simulator cannot be served remotely (no content-addressable
        identity to verify against the worker's replica) — callers then
        fall back to local evaluation.  Implemented by
        :class:`SchematicSimulator`."""
        return None

    def _warn_remote_once(self, message: str) -> None:
        """Emit one remote-transport degradation warning per simulator.

        Falling back to local evaluation is the healing path (a batch
        must never fail because a worker host is incompatible or down),
        but doing it silently would hide a dead cluster — so the first
        fallback warns and the rest stay quiet."""
        if not self._remote_warned:
            self._remote_warned = True
            warnings.warn(message, RuntimeWarning, stacklevel=3)

    def _resolve_remote_pool(self, addresses):
        """The live remote shard pool for ``addresses``, or None.

        Reuses the current pool while the address list is unchanged;
        reconnects when it changed or the pool died.  Handshake or
        connection failures warn once and return None (local fallback)
        — and are remembered per address list, so an incompatible or
        unreachable worker set is not re-dialled on every batch.
        """
        from repro.sim.parallel import ShardPool

        hello = self._remote_hello()
        if hello is None:
            self._warn_remote_once(
                f"{type(self).__name__} cannot evaluate remotely "
                "(no remote handshake); REPRO_WORKERS ignored")
            return None
        pool = self._pool
        if pool is not None and self._pool_remote == addresses \
                and not pool.closed:
            return pool
        if self._remote_failed == addresses:
            return None
        self.close_shard_pool(abandon_ok=True)
        failed = self.failure_measurements()
        try:
            pool = ShardPool(None, len(addresses),
                             self.parameter_space.names,
                             self.spec_space.names,
                             failure_row=[failed[name] for name
                                          in self.spec_space.names],
                             addresses=addresses, hello=hello)
        except TrainingError as exc:
            self._remote_failed = addresses
            self._warn_remote_once(
                f"remote shard workers unavailable ({exc}); "
                "evaluating locally")
            return None
        self._pool = pool
        self._pool_remote = addresses
        return pool

    def _resolve_shard_pool(self, n_values: int):
        """The live shard pool, or None when sharding does not apply.

        Remote workers (``REPRO_WORKERS=host:port,...``) take precedence
        over local sharding and apply to any non-empty batch; an
        unreachable or incompatible worker set warns once and falls
        back to the local policy below.  Locally, returns None when
        sharding is off (``REPRO_SHARDS`` <= 1), the batch is trivial,
        or the simulator has no factory — callers then run the
        in-process engine.  Spawns/respawns the pool when the requested
        worker count changes or a previous pool died.
        """
        from repro.sim.parallel import ShardPool, shard_count
        from repro.sim.remote import remote_addresses

        addresses = remote_addresses()
        if addresses and n_values >= 1:
            pool = self._resolve_remote_pool(addresses)
            if pool is not None:
                return pool
        elif not addresses and self._pool_remote is not None:
            self.close_shard_pool()   # remote turned off: hang up
        n = shard_count()
        if n <= 1 or n_values < 2:
            if n <= 1:
                self.close_shard_pool()  # sharding turned off: reap workers
            return None
        factory = self.shard_factory()
        if factory is None:
            return None
        pool = self._pool
        if (pool is None or len(pool) != n or pool.closed
                or self._pool_remote is not None):
            self.close_shard_pool(abandon_ok=True)
            failed = self.failure_measurements()
            pool = ShardPool(factory, n, self.parameter_space.names,
                             self.spec_space.names,
                             failure_row=[failed[name] for name
                                          in self.spec_space.names])
            self._pool = pool
        return pool

    def _shard_eval(self, values_list: list[dict[str, float]]
                    ) -> list[dict[str, float]] | None:
        """Distribute fresh evaluations over the shard pool, if configured.

        Returns None when :meth:`_resolve_shard_pool` declines — callers
        then run the in-process engine.  The ticket's supervision record
        lands in ``_fresh_report`` for :meth:`_publish_report`.
        """
        pool = self._resolve_shard_pool(len(values_list))
        if pool is None:
            return None
        ticket = pool.submit_values(self._values_matrix(values_list))
        out = pool.collect(ticket)
        self._fresh_report = ticket.report
        self._absorb_fresh_provenance()
        return self._rows_to_specs(out)

    def close_shard_pool(self, abandon_ok: bool = False) -> None:
        """Shut down this simulator's shard pool, if one was spawned
        (local workers are reaped; remote connections hang up).

        ``abandon_ok`` forwards to :meth:`ShardPool.close`: pool
        reconfiguration tears the old pool down without raising over
        tickets it abandoned."""
        if self._pool is not None:
            self._pool.close(abandon_ok=abandon_ok)
            self._pool = None
        self._pool_remote = None

    def reset_counter(self) -> None:
        """Zero the simulation counter (per-experiment accounting)."""
        self.counter.reset()


class SchematicSimulator(CircuitSimulator):
    """Schematic-level simulator: direct MNA evaluation of the topology.

    Parameters
    ----------
    topology:
        The circuit to size.
    cache:
        When True (default), memoise spec results by grid point.  Cache
        hits are counted separately from fresh solves so benchmarks can
        report either accounting policy.
    """

    def __init__(self, topology: Topology, cache: bool = True,
                 cache_size: int = 200_000):
        self.topology = topology
        self.parameter_space = topology.parameter_space
        self.spec_space = topology.spec_space
        self.counter = SimulationCounter()
        self._cache = SimulationCache(cache_size) if cache else None
        self._scope: str | None = None

    def _store_scope(self) -> str:
        """Content digest namespacing this topology in the persistent
        store: schema version, topology class, corner/temperature/
        technology, parameter grids, spec names, netlist structure
        signature and the *resolved* engine backend (dense, sparse and
        iterative runs never exchange rows — iterative specs agree with
        sparse to 1e-8, not bitwise).  Computed lazily once — the
        grid-centre system it restamps is the same structure every
        evaluation reuses."""
        if self._scope is None:
            t = self.topology
            center = t.parameter_space.values(t.parameter_space.center)
            system = t._plan.restamp(center)
            self._scope = scope_digest((
                SCHEMA_VERSION, "schematic", type(t).__name__, t.name,
                t.corner.name, t.temperature, repr(t.technology),
                repr(t.parameter_space.params), ",".join(t.spec_space.names),
                system.engine,
                repr(system.netlist.structure_signature())))
        return self._scope

    def _krylov_systems(self) -> list:
        """The topology's planned system (iterative counters drain from
        there at publish time)."""
        plan = getattr(self.topology, "_plan", None)
        system = getattr(plan, "system", None)
        return [system] if system is not None else []

    def _wire_store(self) -> None:
        """Point the topology at the current store (resolved per call,
        so flipping ``REPRO_CACHE`` never requires a new simulator)."""
        store = get_store()
        self.topology.warm_store = store
        self.topology.warm_scope = (self._store_scope()
                                    if store is not None else None)

    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        """Simulate the sizing at grid ``indices`` (memoised when caching
        is on, replayed from the persistent store when ``REPRO_CACHE``
        has seen it before) and return its measured specs."""
        indices = self.parameter_space.clip(indices)
        values = self.parameter_space.values(indices)
        key = sizing_key(indices)
        if self._cache is not None and key in self._cache:
            self.counter.cached += 1
            return dict(self._cache.get_or_compute(key, dict))
        self._wire_store()
        store = get_store()
        if store is not None:
            row = store.get_result(self._store_scope(), key)
            if row is not None:
                self.counter.cached += 1
                spec = self._row_to_spec(row)
                if self._cache is not None:
                    self._cache.get_or_compute(key, lambda: dict(spec))
                return dict(spec)
        self.counter.fresh += 1
        result = self.topology.simulate(values)
        if self.topology.last_solve_warm:
            self.counter.warm_started += 1
        if store is not None:
            store.put_result(self._store_scope(), key,
                             self._spec_to_row(result))
        if self._cache is not None:
            result = self._cache.get_or_compute(key, lambda: result)
        return dict(result)

    def evaluate_batch(self, indices_2d: np.ndarray) -> list[dict[str, float]]:
        """Evaluate B sizings in one stacked solve (see
        :meth:`Topology.simulate_batch`), sharded across worker processes
        when ``REPRO_SHARDS`` asks for them (:mod:`repro.sim.parallel`).
        """
        return self._evaluate_batch_cached(
            indices_2d, self._fresh_batch, self._cache)

    def _inprocess_batch(self, values_list: list[dict[str, float]]
                         ) -> list[dict[str, float]]:
        """Batched engine entry for distinct cache misses (stacked solve)."""
        self._wire_store()
        return self.topology.simulate_batch(values_list)

    def _consume_warm_rows(self) -> list[int]:
        """Warm-seeded rows of the topology's last batch (cleared)."""
        rows = self.topology.last_warm_rows
        self.topology.last_warm_rows = []
        return rows

    def reset_warm_start(self) -> None:
        """Forward to the topology: drop per-trajectory warm state."""
        self.topology.reset_warm_start()

    def shard_factory(self):
        """Picklable recipe rebuilding this simulator in a shard worker.

        Zoo-built topologies rebuild through their scenario recipe
        (:attr:`Topology.zoo_recipe`) so declaration overrides survive;
        module-built topologies rebuild from their class."""
        topology = self.topology
        builder = topology.zoo_recipe or type(topology)
        return _SchematicShardFactory(builder, topology.technology,
                                      topology.corner, topology.temperature)

    def _remote_hello(self) -> dict:
        """Handshake payload for remote shard workers.

        The store-scope digest is the compatibility check: it pins the
        schema version, topology class, corner, temperature,
        technology, parameter grids, spec names, resolved engine and
        netlist structure — a worker hosting anything else rejects the
        connection and the client falls back to local evaluation."""
        from repro.sim.remote import REMOTE_SCHEMA_VERSION

        return {"schema": REMOTE_SCHEMA_VERSION,
                "scope": self._store_scope(),
                "param_names": list(self.parameter_space.names),
                "spec_names": list(self.spec_space.names)}

    @property
    def cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the memo cache (zeros when caching is off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "hit_rate": 0.0}
        return {"hits": self._cache.hits, "misses": self._cache.misses,
                "hit_rate": self._cache.hit_rate}


@dataclasses.dataclass
class _SchematicShardFactory:
    """Picklable recipe rebuilding a :class:`SchematicSimulator` replica
    in a shard worker (caches off: the parent dedupes before sharding).

    ``topology_cls`` is any builder accepting the ``(technology, corner,
    temperature)`` keywords — a :class:`Topology` subclass or a compiled
    zoo scenario."""

    topology_cls: Callable[..., Topology]
    technology: Technology
    corner: Corner
    temperature: float

    def __call__(self) -> SchematicSimulator:
        topology = self.topology_cls(technology=self.technology,
                                     corner=self.corner,
                                     temperature=self.temperature)
        return SchematicSimulator(topology, cache=False)
