"""Topology interface and the counting/caching simulator wrapper.

A :class:`Topology` owns three things:

* the discretised :class:`~repro.topologies.params.ParameterSpace` (the
  paper's action space),
* a netlist builder mapping physical parameter values to a
  :class:`~repro.circuits.netlist.Netlist` testbench,
* a measurement routine extracting the topology's design specs from
  DC/AC/noise/transient analyses.

:class:`SchematicSimulator` wraps a topology into the object the RL
environment and the baselines consume: ``evaluate(index_vector) -> specs``
with simulation counting (the paper's sample-efficiency metric), optional
memoisation, and warm-started DC solves along sizing trajectories.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.technology import Corner, Technology
from repro.core.specs import SpecKind, SpecSpace
from repro.errors import ConvergenceError, MeasurementError
from repro.sim.cache import SimulationCache, SimulationCounter
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.system import MnaSystem
from repro.topologies.params import ParameterSpace
from repro.units import ROOM_TEMPERATURE


class Topology(abc.ABC):
    """A sizable circuit with a parameter grid and measurable specs."""

    #: Subclasses set a short identifier, e.g. "tia".
    name: str = "topology"

    def __init__(self, technology: Technology | None = None,
                 corner: Corner = Corner.TT,
                 temperature: float = ROOM_TEMPERATURE):
        self.technology = technology or self.default_technology()
        self.corner = corner
        self.temperature = float(temperature)
        self.parameter_space = self._build_parameter_space()
        self.spec_space = self._build_spec_space()
        self._warm_x: np.ndarray | None = None

    # -- subclass API ---------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def default_technology(cls) -> Technology:
        """Technology card the paper used for this circuit."""

    @abc.abstractmethod
    def _build_parameter_space(self) -> ParameterSpace:
        """The paper's [start, stop, step] action-space grids."""

    @abc.abstractmethod
    def _build_spec_space(self) -> SpecSpace:
        """The paper's design-specification ranges."""

    @abc.abstractmethod
    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the testbench netlist for physical parameter values."""

    @abc.abstractmethod
    def measure(self, system: MnaSystem, op: OperatingPoint) -> dict[str, float]:
        """Extract all design specs from a solved testbench."""

    # -- shared behaviour -------------------------------------------------------
    def device_params(self, polarity: str):
        """Corner/temperature-adjusted device card for this topology."""
        return self.technology.device(polarity, self.corner, self.temperature)

    def simulate(self, values: dict[str, float]) -> dict[str, float]:
        """Build, solve and measure one sizing; returns the spec dict.

        DC solves are warm-started from the previous sizing's solution
        (sizing trajectories move one grid step at a time, so the previous
        operating point is an excellent initial guess); on any convergence
        trouble the solve is retried cold, and if that also fails the
        pessimistic :meth:`failure_measurement` is returned so optimisers
        always receive a numeric (heavily penalised) result.
        """
        netlist = self.build(values)
        system = MnaSystem(netlist, temperature=self.temperature)
        op = None
        if self._warm_x is not None and self._warm_x.shape == (system.size,):
            try:
                op = solve_dc(system, x0=self._warm_x)
            except ConvergenceError:
                op = None
        if op is None:
            try:
                op = solve_dc(system)
            except ConvergenceError:
                self._warm_x = None
                return self.failure_measurement()
        self._warm_x = op.x.copy()
        try:
            return self.measure(system, op)
        except MeasurementError:
            return self.failure_measurement()

    def failure_measurement(self) -> dict[str, float]:
        """Pessimistic spec values reported for non-convergent designs."""
        failed: dict[str, float] = {}
        for spec in self.spec_space:
            if spec.kind is SpecKind.LOWER_BOUND:
                failed[spec.name] = spec.low * 1e-3 if spec.low > 0 else -abs(spec.high)
            elif spec.kind is SpecKind.RANGE:
                failed[spec.name] = 0.0
            else:
                failed[spec.name] = spec.high * 1e3
        return failed

    def reset_warm_start(self) -> None:
        """Drop the warm-start state (used when jumping across the grid)."""
        self._warm_x = None


class CircuitSimulator(abc.ABC):
    """What optimisers see: index-vector evaluation with sim accounting."""

    parameter_space: ParameterSpace
    spec_space: SpecSpace
    counter: SimulationCounter

    @abc.abstractmethod
    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        """Simulate the sizing at grid ``indices`` and return its specs."""

    def reset_counter(self) -> None:
        """Zero the simulation counter (per-experiment accounting)."""
        self.counter.reset()


class SchematicSimulator(CircuitSimulator):
    """Schematic-level simulator: direct MNA evaluation of the topology.

    Parameters
    ----------
    topology:
        The circuit to size.
    cache:
        When True (default), memoise spec results by grid point.  Cache
        hits are counted separately from fresh solves so benchmarks can
        report either accounting policy.
    """

    def __init__(self, topology: Topology, cache: bool = True,
                 cache_size: int = 200_000):
        self.topology = topology
        self.parameter_space = topology.parameter_space
        self.spec_space = topology.spec_space
        self.counter = SimulationCounter()
        self._cache = SimulationCache(cache_size) if cache else None

    def evaluate(self, indices: np.ndarray) -> dict[str, float]:
        indices = self.parameter_space.clip(indices)
        values = self.parameter_space.values(indices)
        if self._cache is None:
            self.counter.fresh += 1
            return dict(self.topology.simulate(values))
        key = self.parameter_space.as_key(indices)
        if key in self._cache:
            self.counter.cached += 1
        else:
            self.counter.fresh += 1
        result = self._cache.get_or_compute(
            key, lambda: self.topology.simulate(values))
        return dict(result)

    @property
    def cache_stats(self) -> dict[str, float]:
        if self._cache is None:
            return {"hits": 0, "misses": 0, "hit_rate": 0.0}
        return {"hits": self._cache.hits, "misses": self._cache.misses,
                "hit_rate": self._cache.hit_rate}
