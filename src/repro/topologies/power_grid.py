"""OTA array fed from a resistive power-distribution mesh — the
10^4-unknown scenario family behind the iterative engine leg.

:class:`~repro.topologies.ota_chain.OtaChain` made the sparse-direct
engine earn its keep at a few hundred unknowns; this module builds the
workload that outgrows SuperLU itself.  The circuit is the classic
power-integrity problem of digital/mixed-signal signoff:

* a ``grid_n x grid_n`` **power mesh** — series resistance along every
  horizontal and vertical edge, a decoupling capacitor from every node
  to ground — fed from the clean supply through tap resistors at the
  four corners.  The mesh is where the unknowns live: its 2-D Laplacian
  sparsity (~5 entries per row) is exactly the structure on which
  incomplete-LU-preconditioned Krylov iteration beats direct
  factorisation, because SuperLU's fill-in and ordering costs grow
  superlinearly on 2-D meshes while ILU+GMRES stays ~O(nnz) per solve.
* ``n_amps`` identical 5T OTAs wired as unity-gain buffers, each drawing
  its supply from a mesh tap along the grid diagonal (source *and* well
  of the PMOS loads ride the local grid voltage, so IR drop and supply
  ripple couple into the signal path).  All amps share one bias diode
  mirrored to every tail device, and all buffer the same input; the
  last amp's output (probe node ``out``) carries the load capacitor and
  the measurements.

The MNA size is dominated by ``grid_n^2``: the default 16x16
configuration lands at ~270 unknowns (sparse territory, like the full
chain), while the benchmark family (``benchmarks/bench_krylov_engine.py``)
constructs 70/122/223-point grids for ~5k/15k/50k unknowns — past
:data:`repro.sim.engine.ITERATIVE_AUTO_THRESHOLD`, where ``auto`` routes
them to :mod:`repro.sim.krylov`.  Zoo-registered variants
(``power_grid_ota`` + sweeps) stay test-sized for the same reason the
chain's do: every registered scenario runs through the golden and
engine-equivalence matrices on the *dense* CI leg, whose scatter maps
are ``O(K n^2)`` memory.

Action space: the four 5T-OTA width grids, shared across the array.
Specs: buffer gain at low frequency (LOWER_BOUND), -3 dB bandwidth at
the probe (LOWER_BOUND) and total supply current including the mesh
(MINIMIZE) — one DC solve, one AC sweep, one branch current.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.elements import (Capacitor, CurrentSource, Resistor,
                                     VoltageSource)
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.measure.pipeline import (
    Bandwidth3dB,
    DcGain,
    MeasurementPlan,
    SupplyCurrent,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class PowerGridOta(Topology):
    """Unity-gain 5T-OTA array supplied from a resistive power mesh.

    Parameters
    ----------
    grid_n:
        Mesh points per side; the mesh contributes ``grid_n**2`` MNA
        unknowns (~5k at 70, ~50k at 223).
    n_amps:
        OTA buffers drawing supply from the mesh diagonal.
    r_mesh:
        Series resistance [ohm] of each mesh edge.
    c_decap:
        Decoupling capacitance [F] at each mesh node.
    r_tap:
        Tap resistance [ohm] from the clean supply to each mesh corner.
    """

    name = "power_grid_ota"

    #: Reference current into the shared bias diode MB.
    I_BIAS_REF = 20e-6
    #: Capacitive load at the probe output.
    C_LOAD = 0.2 * PICO
    #: Input common-mode voltage as a fraction of VDD.
    VCM_FRACTION = 0.55

    def __init__(self, technology=None, corner=None, temperature=None,
                 grid_n: int = 16, n_amps: int = 4,
                 r_mesh: float = 0.25, c_decap: float = 0.1 * PICO,
                 r_tap: float = 0.5):
        if grid_n < 2:
            raise ValueError("PowerGridOta needs a grid of >= 2 x 2 nodes")
        if n_amps < 1:
            raise ValueError("PowerGridOta needs >= 1 amplifier")
        if n_amps > grid_n:
            raise ValueError("PowerGridOta fits at most grid_n amplifiers "
                             "on the mesh diagonal")
        self.grid_n = int(grid_n)
        self.n_amps = int(n_amps)
        self.r_mesh = float(r_mesh)
        self.c_decap = float(c_decap)
        self.r_tap = float(r_tap)
        kwargs = {}
        if corner is not None:
            kwargs["corner"] = corner
        if temperature is not None:
            kwargs["temperature"] = temperature
        super().__init__(technology=technology, **kwargs)

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        half_um = 0.5 * MICRO
        return ParameterSpace([
            GridParam("w_in", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_load", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_tail", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_bias", 1, 100, 1, scale=half_um, unit="m"),
        ])

    def _build_spec_space(self) -> SpecSpace:
        # Calibration probe (default 16x16 grid, 4 amps, random sizings,
        # TT, 27 C): buffer gain 0.993-0.996 V/V, -3 dB bandwidth
        # 38-240 MHz (median ~80 MHz), supply current 40-300 uA.  Ranges
        # sit inside the reachable band, like every other topology's.
        return SpecSpace([
            Spec("gain", 0.95, 0.995, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("bandwidth", 2.0e7, 2.0e8, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("ibias", 5.0e-5, 5.0e-4, SpecKind.MINIMIZE,
                 log_scale=True, unit="A"),
        ])

    # -- netlist ---------------------------------------------------------------
    def _grid_node(self, i: int, j: int) -> str:
        """Mesh node name at row ``i``, column ``j``."""
        return f"g{i}_{j}"

    def _amp_tap(self, a: int) -> str:
        """Mesh node amp ``a`` (1-based) draws its supply from: the amps
        spread evenly along the grid diagonal."""
        if self.n_amps == 1:
            i = (self.grid_n - 1) // 2
        else:
            i = ((a - 1) * (self.grid_n - 1)) // (self.n_amps - 1)
        return self._grid_node(i, i)

    def _amp_out(self, a: int) -> str:
        """Output node of amp ``a`` (the last one is the probe)."""
        return "out" if a == self.n_amps else f"o{a}"

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")
        n = self.grid_n

        net = Netlist("power_grid_ota")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VIN", "in", "0", dc=vcm, ac=1.0))
        # Power mesh: edge resistors + per-node decap, corner-fed.
        for ci, cj in ((0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)):
            net.add(Resistor(f"RT{ci}_{cj}", "vdd",
                             self._grid_node(ci, cj), self.r_tap))
        for i in range(n):
            for j in range(n):
                node = self._grid_node(i, j)
                if j + 1 < n:
                    net.add(Resistor(f"RH{i}_{j}", node,
                                     self._grid_node(i, j + 1), self.r_mesh))
                if i + 1 < n:
                    net.add(Resistor(f"RV{i}_{j}", node,
                                     self._grid_node(i + 1, j), self.r_mesh))
                net.add(Capacitor(f"CD{i}_{j}", node, "0", self.c_decap))
        # Shared bias diode (clean supply reference).
        net.add(CurrentSource("IBIAS", "vdd", "nb", dc=self.I_BIAS_REF))
        net.add(Mosfet("MB", "nb", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_bias"], l=length))
        # The OTA array: unity-gain buffers supplied from mesh taps.
        for a in range(1, self.n_amps + 1):
            tap = self._amp_tap(a)
            out = self._amp_out(a)
            net.add(Mosfet(f"MT{a}", f"nt{a}", "nb", "0", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_tail"], l=length))
            # Unity feedback to the inverting input — the output-side
            # gate M2 (its drain IS the output): out = A/(1+A) * in, a
            # proper follower with one stable root, so DC Newton finds
            # the same operating point from any reasonable seed.
            net.add(Mosfet(f"M1_{a}", f"d{a}", "in", f"nt{a}", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_in"], l=length))
            net.add(Mosfet(f"M2_{a}", out, out, f"nt{a}", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_in"], l=length))
            # PMOS loads: source and well ride the local grid voltage.
            net.add(Mosfet(f"M3_{a}", f"d{a}", f"d{a}", tap, tap,
                           polarity="pmos", params=pmos,
                           w=values["w_load"], l=length))
            net.add(Mosfet(f"M4_{a}", out, f"d{a}", tap, tap,
                           polarity="pmos", params=pmos,
                           w=values["w_load"], l=length))
            net.add(Capacitor(f"CO{a}", out, "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping).

        Only the device widths vary with the sizing — the mesh is fixed
        by construction — so the restamp fast path touches 5 elements
        per amp and nothing else.  This is also what makes the iterative
        engine's cross-evaluation ILU reuse pay: the mesh dominates the
        Jacobian data vector and never moves between sizings.
        """
        net["MB"].w = values["w_bias"]
        for a in range(1, self.n_amps + 1):
            net[f"MT{a}"].w = values["w_tail"]
            net[f"M1_{a}"].w = net[f"M2_{a}"].w = values["w_in"]
            net[f"M3_{a}"].w = net[f"M4_{a}"].w = values["w_load"]
        return True

    #: AC sweep grid (class-level: building it per measurement is waste).
    #: Buffer bandwidths land between a few MHz (starved sizings) and a
    #: few hundred MHz; each extra point is one more mesh-sized solve per
    #: evaluation, so the grid stops where the physics does.
    AC_FREQUENCIES = log_frequencies(1e5, 1e9, points_per_decade=5)

    def measurements(self) -> MeasurementPlan:
        """Buffer gain, probe -3 dB bandwidth and total supply current.

        One AC sweep at the probe node serves both AC specs; the sweep
        runs through the engine the system resolved to — block-diagonal
        ``splu`` factors on the sparse leg, shifted-ILU
        :class:`~repro.sim.krylov.KrylovSweep` solves on the iterative
        one.
        """
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            Bandwidth3dB("bandwidth", "out", freqs),
            SupplyCurrent("ibias", "VDD"),
        ])

    def unknown_count(self) -> int:
        """MNA unknowns of this configuration: the mesh (``grid_n**2``)
        plus 3 internal nodes per amp (tail, diode, output), global
        nodes vdd/in/nb, and two voltage-source branches."""
        return self.grid_n * self.grid_n + 3 * self.n_amps + 3 + 2
