"""Two-stage OTA with negative-gm load (paper §III-C/D, Fig. 9).

The expert-designed FinFET amplifier: the first stage is an NMOS
differential pair loaded by diode-connected PMOS devices *in parallel with
a cross-coupled (negative-gm) PMOS pair*.  The cross-coupled pair's
negative transconductance partially cancels the diode load, boosting the
first-stage gain — at the price of positive feedback: when the
cross-coupled gm exceeds the diode gm the stage latches, which is exactly
why the paper calls this circuit "more challenging to design and more
sensitive to layout parasitics".  The second stage is a Miller-compensated
common-source amplifier.

Runs on the 16 nm FinFET-class card (our Spectre+TSMC16 substitute).

Design specs (paper ranges): gain 1–40 V/V, UGBW 1 MHz–25 MHz, phase
margin sampled in [60, 75] degrees — the paper trains on a *range* of
phase-margin targets rather than a fixed 60-degree bound because it
transfers better to layout (§III-D); the ablation bench reproduces that
comparison.
"""

from __future__ import annotations

from repro.circuits.elements import Capacitor, CurrentSource, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, finfet16
from repro.core.specs import Spec, SpecKind, SpecSpace

from repro.measure.pipeline import (
    DcGain,
    Gate,
    MeasurementPlan,
    PhaseMargin,
    UnityGainBandwidth,
)
from repro.sim.ac import log_frequencies
from repro.sim.dc import OperatingPoint
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class NegGmOta(Topology):
    """Expert two-stage OTA with cross-coupled negative-gm first-stage load."""

    name = "ngm_ota"

    I_BIAS_REF = 10e-6
    C_LOAD = 1.0 * PICO
    VCM_FRACTION = 0.6

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return finfet16()

    def _build_parameter_space(self) -> ParameterSpace:
        # Widths are in 0.1 um units — a stand-in for FinFET fin counts.
        fin = 0.1 * MICRO
        return ParameterSpace([
            GridParam("w_in", 2, 100, 2, scale=fin, unit="m"),
            GridParam("w_diode", 2, 100, 2, scale=fin, unit="m"),
            GridParam("w_cross", 2, 100, 2, scale=fin, unit="m"),
            GridParam("w_tail", 2, 100, 2, scale=fin, unit="m"),
            GridParam("w_cs", 2, 100, 2, scale=fin, unit="m"),
            GridParam("w_sink", 2, 100, 2, scale=fin, unit="m"),
            GridParam("cc", 0.1, 10.0, 0.1, scale=PICO, unit="F"),
        ])

    def _build_spec_space(self) -> SpecSpace:
        return SpecSpace([
            Spec("gain", 1.0, 40.0, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("ugbw", 1.0e6, 2.5e7, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            # The paper samples phase-margin *targets* over [60, 75] deg
            # (a range of lower bounds) for better transfer to layout.
            Spec("phase_margin", 60.0, 75.0, SpecKind.LOWER_BOUND, unit="deg"),
        ])

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")

        net = Netlist("ngm_ota")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VINP", "inp", "0", dc=vcm, ac=+0.5))
        net.add(VoltageSource("VINN", "inn", "0", dc=vcm, ac=-0.5))
        net.add(CurrentSource("IBIAS", "vdd", "nb", dc=self.I_BIAS_REF))

        net.add(Mosfet("M8", "nb", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=20 * 0.1 * MICRO, l=length))
        net.add(Mosfet("M9", "nt", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=values["w_tail"], l=length))
        # Input pair.
        net.add(Mosfet("M1", "o1p", "inn", "nt", "0", polarity="nmos", params=nmos,
                       w=values["w_in"], l=length))
        net.add(Mosfet("M2", "o1n", "inp", "nt", "0", polarity="nmos", params=nmos,
                       w=values["w_in"], l=length))
        # Diode-connected loads.
        net.add(Mosfet("MD1", "o1p", "o1p", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_diode"], l=length))
        net.add(Mosfet("MD2", "o1n", "o1n", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_diode"], l=length))
        # Cross-coupled negative-gm pair.
        net.add(Mosfet("MC1", "o1p", "o1n", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_cross"], l=length))
        net.add(Mosfet("MC2", "o1n", "o1p", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_cross"], l=length))
        # Second stage.
        net.add(Mosfet("M6", "out", "o1n", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_cs"], l=length))
        net.add(Mosfet("M7", "out", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=values["w_sink"], l=length))
        net.add(Capacitor("CC", "o1n", "out", values["cc"]))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        net["M9"].w = values["w_tail"]
        net["M1"].w = net["M2"].w = values["w_in"]
        net["MD1"].w = net["MD2"].w = values["w_diode"]
        net["MC1"].w = net["MC2"].w = values["w_cross"]
        net["M6"].w = values["w_cs"]
        net["M7"].w = values["w_sink"]
        net["CC"].capacitance = values["cc"]
        return True

    def first_stage_stable(self, op: OperatingPoint) -> bool:
        """True when the differential load conductance is positive.

        The cross-coupled pair contributes ``-gm`` differentially; once it
        exceeds the diode ``gm`` (plus output conductances) the first stage
        is a latch, not an amplifier.
        """
        diode = op.mosfet_state("MD1")
        cross = op.mosfet_state("MC1")
        pair = op.mosfet_state("M1")
        load_g = diode.gm + diode.gds + cross.gds + pair.gds
        return load_g > cross.gm

    #: AC sweep grid (class-level: building it per measurement is waste).
    AC_FREQUENCIES = log_frequencies(1e2, 1e11, points_per_decade=8)

    @staticmethod
    def _stable_mask(ctx):
        """Vectorised :meth:`first_stage_stable` over stacked slices: the
        differential load conductance must exceed the cross-coupled
        pair's negative gm, or the first stage is a latch."""
        names = [m.name for m in ctx.stack.template.mosfets]
        kd, kc, kp = (names.index("MD1"), names.index("MC1"),
                      names.index("M1"))
        arrays = ctx.arrays
        load_g = (arrays["gm"][:, kd] + arrays["gds"][:, kd]
                  + arrays["gds"][:, kc] + arrays["gds"][:, kp])
        return load_g > arrays["gm"][:, kc]

    def measurements(self) -> MeasurementPlan:
        """AC specs at the output behind the first-stage latch-up gate."""
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            UnityGainBandwidth("ugbw", "out", freqs),
            PhaseMargin("phase_margin", "out", freqs),
        ], gates=[Gate(self._stable_mask, label="first-stage stability")])
