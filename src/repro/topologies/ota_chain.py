"""OTA repeater chain driving distributed RC interconnect — the
large-netlist scenario family.

Every topology shipped before this one has 5–40 MNA unknowns; this module
is the workload that makes the sparse engine (:mod:`repro.sim.sparse`)
earn its keep.  The circuit is the classic repeater-insertion problem
from interconnect design, built out of the library's own analog pieces:

* ``n_stages`` identical single-stage 5T OTAs wired as unity-gain
  buffers (inverting input tied to the output) — the "repeaters".  All
  stages share one bias diode, mirrored to every tail device, so the
  DC state of each buffer is the input common mode and the chain biases
  itself regardless of depth.
* between consecutive buffers (and from the last buffer to the output
  probe) a **distributed RC line** of ``segments`` series-resistance /
  shunt-capacitance sections — per-segment parasitics, not a lumped
  pole, so segment count genuinely changes the physics (the line shows
  diffusive, not single-pole, behaviour).

The MNA size grows as ``n_stages * (segments + 3)``; the default
configuration (8 stages x 24 segments) lands at ~230 unknowns, past the
``auto`` threshold of :mod:`repro.sim.engine`, so the chain simulates on
the sparse backend out of the box while the small topologies stay dense.

Action space: the four 5T-OTA width grids, shared across stages (sizing
one repeater and replicating it is exactly how interconnect repeaters
are designed).  Specs: end-to-end low-frequency gain (buffers fight the
passive attenuation; LOWER_BOUND), chain -3 dB bandwidth (the
repeater-sizing objective; LOWER_BOUND) and total supply current
(MINIMIZE) — measured with one DC solve, one sparse AC sweep and one
branch current, so a full evaluation stays ``O(nnz)`` per frequency.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.elements import (Capacitor, CurrentSource, Resistor,
                                     VoltageSource)
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.measure.pipeline import (
    Bandwidth3dB,
    DcGain,
    MeasurementPlan,
    SupplyCurrent,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class OtaChain(Topology):
    """Unity-gain 5T-OTA repeater chain with distributed RC interconnect.

    Parameters
    ----------
    n_stages:
        Number of OTA repeaters (each followed by one RC line).
    segments:
        RC sections per line; total line R/C is fixed, so more segments
        means a finer spatial discretisation of the same wire.
    r_line, c_line:
        Total series resistance [ohm] and shunt capacitance [F] of each
        line (defaults model ~1 mm of mid-level metal).
    """

    name = "ota_chain"

    #: Reference current into the shared bias diode MB.
    I_BIAS_REF = 20e-6
    #: Capacitive load at the far end of the last line.
    C_LOAD = 0.2 * PICO
    #: Input common-mode voltage as a fraction of VDD.
    VCM_FRACTION = 0.55

    def __init__(self, technology=None, corner=None, temperature=None,
                 n_stages: int = 8, segments: int = 24,
                 r_line: float = 2.0e3, c_line: float = 0.25 * PICO):
        if n_stages < 1 or segments < 1:
            raise ValueError("OtaChain needs >= 1 stage and >= 1 segment")
        self.n_stages = int(n_stages)
        self.segments = int(segments)
        self.r_line = float(r_line)
        self.c_line = float(c_line)
        kwargs = {}
        if corner is not None:
            kwargs["corner"] = corner
        if temperature is not None:
            kwargs["temperature"] = temperature
        super().__init__(technology=technology, **kwargs)

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        half_um = 0.5 * MICRO
        return ParameterSpace([
            GridParam("w_in", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_load", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_tail", 1, 100, 1, scale=half_um, unit="m"),
            GridParam("w_bias", 1, 100, 1, scale=half_um, unit="m"),
        ])

    def _build_spec_space(self) -> SpecSpace:
        # Calibration probe (default 8x24 chain, random sizings, TT,
        # 27 C): end-to-end gain 0.9-1.1 V/V for converging designs
        # (median 1.04 — mild closed-loop peaking), bandwidth 2 kHz-55 MHz
        # (median 17 MHz), supply current 40 uA-4 mA (median 165 uA).
        # Ranges sit inside the reachable band, like every other
        # topology's spec space.
        return SpecSpace([
            Spec("gain", 0.80, 0.99, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("bandwidth", 2.0e6, 4.0e7, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("ibias", 2.0e-4, 4.0e-3, SpecKind.MINIMIZE,
                 log_scale=True, unit="A"),
        ])

    # -- netlist ---------------------------------------------------------------
    def _stage_input(self, s: int) -> str:
        """Input node name of stage ``s`` (stage 1 hangs off the source)."""
        return "in" if s == 1 else f"x{s}"

    def _line_end(self, s: int) -> str:
        """Far-end node of the line after stage ``s``."""
        return "out" if s == self.n_stages else f"x{s + 1}"

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")
        m = self.segments
        r_seg = self.r_line / m
        c_seg = self.c_line / m

        net = Netlist("ota_chain")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VIN", "in", "0", dc=vcm, ac=1.0))
        net.add(CurrentSource("IBIAS", "vdd", "nb", dc=self.I_BIAS_REF))
        net.add(Mosfet("MB", "nb", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_bias"], l=length))
        for s in range(1, self.n_stages + 1):
            inp = self._stage_input(s)
            out = f"o{s}"
            net.add(Mosfet(f"MT{s}", f"nt{s}", "nb", "0", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_tail"], l=length))
            # Unity feedback: M1's gate (the inverting input) is the
            # stage's own output, M2's gate the line-driven input.
            net.add(Mosfet(f"M1_{s}", f"d{s}", out, f"nt{s}", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_in"], l=length))
            net.add(Mosfet(f"M2_{s}", out, inp, f"nt{s}", "0",
                           polarity="nmos", params=nmos,
                           w=values["w_in"], l=length))
            net.add(Mosfet(f"M3_{s}", f"d{s}", f"d{s}", "vdd", "vdd",
                           polarity="pmos", params=pmos,
                           w=values["w_load"], l=length))
            net.add(Mosfet(f"M4_{s}", out, f"d{s}", "vdd", "vdd",
                           polarity="pmos", params=pmos,
                           w=values["w_load"], l=length))
            # Distributed RC line: out -> w{s}_1 -> ... -> line end.
            prev = out
            for k in range(1, m + 1):
                node = self._line_end(s) if k == m else f"w{s}_{k}"
                net.add(Resistor(f"RW{s}_{k}", prev, node, r_seg))
                net.add(Capacitor(f"CW{s}_{k}", node, "0", c_seg))
                prev = node
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping).

        Only the device widths vary with the sizing — the interconnect is
        fixed by construction — so the restamp fast path touches 5
        elements per stage and nothing else.
        """
        net["MB"].w = values["w_bias"]
        for s in range(1, self.n_stages + 1):
            net[f"MT{s}"].w = values["w_tail"]
            net[f"M1_{s}"].w = net[f"M2_{s}"].w = values["w_in"]
            net[f"M3_{s}"].w = net[f"M4_{s}"].w = values["w_load"]
        return True

    #: AC sweep grid (class-level: building it per measurement is waste).
    #: The measurable band of the chain: gain reads at 10 kHz, the -3 dB
    #: point lands between ~100 kHz (starved sizings) and a few hundred
    #: MHz (minimal lines); each extra point is one more ~n-unknown
    #: factorisation per evaluation, so the grid stops where the physics
    #: does.
    AC_FREQUENCIES = log_frequencies(1e4, 1e9, points_per_decade=5)

    def measurements(self) -> MeasurementPlan:
        """End-to-end gain, chain -3 dB bandwidth and supply current.

        One AC sweep at the probe node serves both AC specs.  On the
        sparse engine (the default at this topology's size) the stacked
        path measures every design through its own
        :class:`~repro.sim.sparse.SweepFactorization` — per-design
        block-diagonal ``splu`` factors, no dense ``(B, n, n)``
        operators — so chain batches no longer fall back to the scalar
        measurement loop.
        """
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            Bandwidth3dB("bandwidth", "out", freqs),
            SupplyCurrent("ibias", "VDD"),
        ])

    def unknown_count(self) -> int:
        """MNA unknowns of this configuration: per stage 3 internal nodes
        (tail, diode, output) plus ``segments`` line nodes; global nodes
        vdd/in/nb; two voltage-source branches."""
        return self.n_stages * (self.segments + 3) + 3 + 2
