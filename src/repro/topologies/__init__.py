"""Circuit topologies evaluated in the paper, plus the parameter-grid
machinery their action spaces are built from.

* :mod:`repro.topologies.params` — ``[start, stop, step]`` integer grids
  (exactly the paper's action-space notation);
* :mod:`repro.topologies.base` — the :class:`Topology` interface and the
  counting/caching :class:`SchematicSimulator` wrapper;
* :mod:`repro.topologies.tia` — transimpedance amplifier (paper §III-A);
* :mod:`repro.topologies.two_stage` — two-stage Miller op-amp (§III-B);
* :mod:`repro.topologies.ngm_ota` — two-stage OTA with negative-gm load
  (§III-C/D);
* :mod:`repro.topologies.five_t_ota` — single-stage 5T OTA, the
  "add your own circuit" extensibility example;
* :mod:`repro.topologies.folded_cascode` — folded-cascode OTA, the
  declarative-measurement-pipeline extensibility example (one
  ``measurements()`` declaration, no measurement code);
* :mod:`repro.topologies.ota_chain` — OTA repeater chain over
  distributed RC interconnect, the large-netlist (sparse-engine)
  scenario family;
* :mod:`repro.topologies.power_grid` — OTA array fed from a resistive
  power mesh, the 10^4-unknown (iterative-engine) scenario family.

Module classes are one of two ways to add a scenario: the declarative
scenario zoo (:mod:`repro.zoo`) compiles YAML/JSON declarations —
constructor/attribute/grid/spec overrides plus seeded variant
generators, inheriting from these classes by their registered ``name``
— onto the same :class:`Topology` machinery, so variant families cost a
config file instead of a module.
"""

from repro.topologies.base import CircuitSimulator, SchematicSimulator, Topology
from repro.topologies.five_t_ota import FiveTransistorOta
from repro.topologies.folded_cascode import FoldedCascodeOta
from repro.topologies.ngm_ota import NegGmOta
from repro.topologies.ota_chain import OtaChain
from repro.topologies.params import GridParam, ParameterSpace
from repro.topologies.power_grid import PowerGridOta
from repro.topologies.tia import TransimpedanceAmplifier
from repro.topologies.two_stage import TwoStageOpAmp

__all__ = [
    "CircuitSimulator",
    "FiveTransistorOta",
    "FoldedCascodeOta",
    "GridParam",
    "NegGmOta",
    "OtaChain",
    "ParameterSpace",
    "PowerGridOta",
    "SchematicSimulator",
    "Topology",
    "TransimpedanceAmplifier",
    "TwoStageOpAmp",
]
