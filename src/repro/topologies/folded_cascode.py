"""Folded-cascode OTA — the measurement-pipeline extensibility scenario.

The declarative measurement pipeline makes adding a topology a
*declaration*: parameter grids, spec ranges, a netlist builder and a
``measurements()`` composition of existing primitives — no scalar/batched
measurement code at all.  This module is that proof: a sixth trainable
scenario in ~150 lines, registered in the CLI and usable by RL/CEM/GA
like any other.

The circuit is the classic single-stage folded cascode: NMOS input pair
(M1/M2) with tail source (M5), PMOS current sources (M3/M4) feeding the
folding nodes, PMOS cascode devices (MC1/MC2) folding the signal current
down onto an NMOS mirror load (M9/M10), all biased from two reference
diodes (MB for the NMOS mirrors, MPB for the PMOS sources) and a fixed
cascode gate voltage.  The cascode boosts the output resistance, so the
gain/bandwidth/power trade surface sits well above the plain 5T OTA at
the same current — at the price of a starvation region (``w_src`` too
small for ``w_tail`` starves the cascode branch), which keeps the sizing
problem interesting.
"""

from __future__ import annotations

from repro.circuits.elements import Capacitor, CurrentSource, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.measure.pipeline import (
    DcGain,
    MeasurementPlan,
    SupplyCurrent,
    UnityGainBandwidth,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class FoldedCascodeOta(Topology):
    """Single-stage folded-cascode OTA on the paper's 0.5 um width grid."""

    name = "folded_cascode"

    #: Reference current into each bias diode (MB and MPB).
    I_BIAS_REF = 20e-6
    #: Output load capacitance.
    C_LOAD = 1.0 * PICO
    #: Input common-mode voltage as a fraction of VDD.
    VCM_FRACTION = 0.5
    #: PMOS cascode gate bias as a fraction of VDD.
    VCAS_FRACTION = 0.45
    #: Width of both bias diodes, in 0.5 um grid units.
    W_BIAS_UNITS = 20

    @classmethod
    def default_technology(cls) -> Technology:
        """45 nm-class card, like the other single-stage OTAs."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        half_um = 0.5 * MICRO
        return ParameterSpace([
            GridParam("w_in", 1, 100, 1, scale=half_um, unit="m"),    # M1 = M2
            GridParam("w_src", 1, 100, 1, scale=half_um, unit="m"),   # M3 = M4
            GridParam("w_cas", 1, 100, 1, scale=half_um, unit="m"),   # MC1 = MC2
            GridParam("w_mir", 1, 100, 1, scale=half_um, unit="m"),   # M9 = M10
            GridParam("w_tail", 1, 100, 1, scale=half_um, unit="m"),  # M5
        ])

    def _build_spec_space(self) -> SpecSpace:
        # Calibration probe (400 random sizings, TT, 27 C): ~75% of the
        # grid biases up (the rest starve the cascode branch); working
        # designs span a 10th-90th percentile band of gain 33-1150 V/V,
        # UGBW 16-107 MHz, ibias 91-224 uA.  Target ranges sit inside
        # that band, like every other topology's spec space.
        return SpecSpace([
            Spec("gain", 100.0, 600.0, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("ugbw", 2.0e7, 9.0e7, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("ibias", 1.0e-4, 2.5e-4, SpecKind.MINIMIZE,
                 log_scale=True, unit="A"),
        ])

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        w_bias = self.W_BIAS_UNITS * 0.5 * MICRO
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")

        net = Netlist("folded_cascode")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        net.add(VoltageSource("VINP", "inp", "0", dc=vcm, ac=+0.5))
        net.add(VoltageSource("VINN", "inn", "0", dc=vcm, ac=-0.5))
        net.add(VoltageSource("VCAS", "pcas", "0",
                              dc=self.VCAS_FRACTION * tech.vdd))
        net.add(CurrentSource("IBN", "vdd", "nb", dc=self.I_BIAS_REF))
        net.add(CurrentSource("IBP", "pb", "0", dc=self.I_BIAS_REF))

        # Bias diodes: NMOS mirror reference and PMOS source reference.
        net.add(Mosfet("MB", "nb", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=w_bias, l=length))
        net.add(Mosfet("MPB", "pb", "pb", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=w_bias, l=length))
        # Input pair and tail.
        net.add(Mosfet("M5", "nt", "nb", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_tail"], l=length))
        net.add(Mosfet("M1", "f1", "inn", "nt", "0", polarity="nmos",
                       params=nmos, w=values["w_in"], l=length))
        net.add(Mosfet("M2", "f2", "inp", "nt", "0", polarity="nmos",
                       params=nmos, w=values["w_in"], l=length))
        # PMOS current sources into the folding nodes.
        net.add(Mosfet("M3", "f1", "pb", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_src"], l=length))
        net.add(Mosfet("M4", "f2", "pb", "vdd", "vdd", polarity="pmos",
                       params=pmos, w=values["w_src"], l=length))
        # PMOS cascodes folding the signal down onto the mirror.
        net.add(Mosfet("MC1", "o1", "pcas", "f1", "vdd", polarity="pmos",
                       params=pmos, w=values["w_cas"], l=length))
        net.add(Mosfet("MC2", "out", "pcas", "f2", "vdd", polarity="pmos",
                       params=pmos, w=values["w_cas"], l=length))
        # NMOS mirror load.
        net.add(Mosfet("M9", "o1", "o1", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_mir"], l=length))
        net.add(Mosfet("M10", "out", "o1", "0", "0", polarity="nmos",
                       params=nmos, w=values["w_mir"], l=length))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        net["M5"].w = values["w_tail"]
        net["M1"].w = net["M2"].w = values["w_in"]
        net["M3"].w = net["M4"].w = values["w_src"]
        net["MC1"].w = net["MC2"].w = values["w_cas"]
        net["M9"].w = net["M10"].w = values["w_mir"]
        return True

    #: AC sweep grid (class-level: building it per measurement is waste).
    AC_FREQUENCIES = log_frequencies(1e3, 1e11, points_per_decade=8)

    def measurements(self) -> MeasurementPlan:
        """Differential gain, unity-gain bandwidth and supply current —
        the whole measurement is this declaration."""
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            UnityGainBandwidth("ugbw", "out", freqs),
            SupplyCurrent("ibias", "VDD"),
        ])
