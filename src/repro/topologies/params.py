"""Discretised parameter grids.

The paper writes every action space in ``[start, end, increment]`` array
notation — e.g. transistor width ``[2, 10, 2] * um`` — and the agent moves
on the resulting integer grid.  :class:`GridParam` is one such axis;
:class:`ParameterSpace` is the product grid with index/value conversions,
the centre starting point (the paper initialises every trajectory at grid
centre K/2), and the cardinality the paper quotes (10^14 for the two-stage
op-amp).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import TopologyError


@dataclasses.dataclass(frozen=True)
class GridParam:
    """One discretised design parameter: ``values = start, start+step, ..., stop``.

    ``scale`` multiplies the grid values into SI units (e.g. ``1e-6`` for a
    grid expressed in micrometres), keeping topology definitions readable
    in the paper's own notation.
    """

    name: str
    start: float
    stop: float
    step: float
    scale: float = 1.0
    unit: str = ""

    def __post_init__(self):
        if not self.name:
            raise TopologyError("parameter name must be non-empty")
        if self.step <= 0.0:
            raise TopologyError(f"param {self.name}: step must be positive")
        if self.stop < self.start:
            raise TopologyError(f"param {self.name}: stop < start")

    @property
    def count(self) -> int:
        """Number of grid points K."""
        return int(math.floor((self.stop - self.start) / self.step + 1e-9)) + 1

    def value(self, index: int) -> float:
        """Physical (SI) value at grid ``index``; raises on out-of-range."""
        if not 0 <= index < self.count:
            raise TopologyError(
                f"param {self.name}: index {index} outside [0, {self.count})")
        return (self.start + index * self.step) * self.scale

    def index_of(self, value: float) -> int:
        """Nearest grid index for a physical value (clipped to the grid)."""
        raw = (value / self.scale - self.start) / self.step
        return int(np.clip(round(raw), 0, self.count - 1))

    @property
    def center_index(self) -> int:
        """The paper's K/2 starting point."""
        return self.count // 2

    def all_values(self) -> np.ndarray:
        """All physical values on the grid."""
        return (self.start + np.arange(self.count) * self.step) * self.scale


class ParameterSpace:
    """The product grid of several :class:`GridParam` axes."""

    def __init__(self, params: list[GridParam] | tuple[GridParam, ...]):
        if not params:
            raise TopologyError("parameter space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate parameter names: {names}")
        self.params: tuple[GridParam, ...] = tuple(params)
        self.counts = np.array([p.count for p in self.params], dtype=np.int64)
        # Vectorised value conversion (the per-evaluation hot path).
        self._starts = np.array([p.start for p in self.params])
        self._steps = np.array([p.step for p in self.params])
        self._scales = np.array([p.scale for p in self.params])
        self._names = tuple(p.name for p in self.params)

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names, in grid order."""
        return tuple(p.name for p in self.params)

    def __len__(self) -> int:
        return len(self.params)

    def __iter__(self):
        return iter(self.params)

    def __getitem__(self, name: str) -> GridParam:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    @property
    def cardinality(self) -> int:
        """Total number of sizings (the paper quotes ~1e14 for the op-amp)."""
        return int(np.prod(self.counts.astype(object)))

    @property
    def center(self) -> np.ndarray:
        """Centre start indices (paper: parameters initialised to K/2)."""
        return np.array([p.center_index for p in self.params], dtype=np.int64)

    def clip(self, indices: np.ndarray) -> np.ndarray:
        """Clip an index vector onto the grid (the paper's boundary rule)."""
        return np.clip(np.asarray(indices, dtype=np.int64), 0, self.counts - 1)

    def contains(self, indices: np.ndarray) -> bool:
        """True when ``indices`` is a valid on-grid index vector."""
        indices = np.asarray(indices)
        return (indices.shape == (len(self),)
                and bool(np.all(indices >= 0))
                and bool(np.all(indices < self.counts)))

    def values(self, indices: np.ndarray) -> dict[str, float]:
        """Physical values for an index vector."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.shape != (len(self),):
            raise TopologyError(
                f"index vector has shape {indices.shape}, expected ({len(self)},)")
        if np.any(indices < 0) or np.any(indices >= self.counts):
            raise TopologyError(f"indices {indices} outside the grid")
        vals = (self._starts + indices * self._steps) * self._scales
        return dict(zip(self._names, vals.tolist()))

    def indices_of(self, values: dict[str, float]) -> np.ndarray:
        """Nearest index vector for a dict of physical values."""
        try:
            return np.array([p.index_of(values[p.name]) for p in self.params],
                            dtype=np.int64)
        except KeyError as missing:
            raise TopologyError(f"values missing parameter {missing}") from None

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random index vector (used by the GA baselines)."""
        return rng.integers(0, self.counts)

    def normalize(self, indices: np.ndarray) -> np.ndarray:
        """Map an index vector to [-1, 1]^N for observations."""
        indices = np.asarray(indices, dtype=float)
        span = np.maximum(self.counts - 1, 1)
        return 2.0 * indices / span - 1.0

    def as_key(self, indices: np.ndarray) -> tuple[int, ...]:
        """Hashable cache key for an index vector.

        Delegates to :func:`repro.sim.cache.sizing_key` — the one
        quantization helper shared with the batch dedupe keys and the
        persistent store digests, so the three can never drift apart.
        """
        from repro.sim.cache import sizing_key
        return sizing_key(indices)
