"""Two-stage Miller-compensated operational amplifier (paper §III-B, Fig. 6).

Classic textbook topology in the 45 nm-class technology card:

* first stage — NMOS differential pair (M1/M2) with PMOS current-mirror
  load (M3/M4) and NMOS tail source (M5);
* second stage — PMOS common-source device (M6) with NMOS current-sink
  load (M7);
* bias — NMOS diode M8 fed by a fixed reference current, mirrored to M5
  and M7;
* Miller compensation capacitor Cc across the second stage, fixed load CL.

Action space (paper): every transistor width on a ``[1, 100, 1] * 0.5 um``
grid (matched pairs share one parameter, giving six width parameters) and
``Cc in [0.1, 10.0, 0.1] * 1 pF`` — 100^7 = 10^14 sizings, the cardinality
the paper quotes.

Design specs (paper ranges): gain 200–400 V/V (lower bound), unity-gain
bandwidth 1 MHz–25 MHz (lower bound), phase margin >= 60 degrees, and bias
current 0.1–10 mA (upper bound, softly minimised — the paper's o_th term).
"""

from __future__ import annotations

from repro.circuits.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Netlist
from repro.circuits.technology import Technology, ptm45
from repro.core.specs import Spec, SpecKind, SpecSpace

from repro.measure.pipeline import (
    DcGain,
    MeasurementPlan,
    PhaseMargin,
    SupplyCurrent,
    UnityGainBandwidth,
)
from repro.sim.ac import log_frequencies
from repro.topologies.base import Topology
from repro.topologies.params import GridParam, ParameterSpace
from repro.units import MICRO, PICO


class TwoStageOpAmp(Topology):
    """Miller op-amp with mirrored bias, sized on the paper's grid."""

    name = "two_stage_opamp"

    #: Reference current into the bias diode M8.
    I_BIAS_REF = 20e-6
    #: Output load capacitance.
    C_LOAD = 2.0 * PICO
    #: Input common-mode voltage as a fraction of VDD.
    VCM_FRACTION = 0.5

    @classmethod
    def default_technology(cls) -> Technology:
        """Technology card this topology runs on by default."""
        return ptm45()

    def _build_parameter_space(self) -> ParameterSpace:
        half_um = 0.5 * MICRO
        return ParameterSpace([
            GridParam("w_in", 1, 100, 1, scale=half_um, unit="m"),     # M1 = M2
            GridParam("w_load", 1, 100, 1, scale=half_um, unit="m"),   # M3 = M4
            GridParam("w_tail", 1, 100, 1, scale=half_um, unit="m"),   # M5
            GridParam("w_cs", 1, 100, 1, scale=half_um, unit="m"),     # M6
            GridParam("w_sink", 1, 100, 1, scale=half_um, unit="m"),   # M7
            GridParam("w_bias", 1, 100, 1, scale=half_um, unit="m"),   # M8
            GridParam("cc", 0.1, 10.0, 0.1, scale=PICO, unit="F"),
        ])

    def _build_spec_space(self) -> SpecSpace:
        return SpecSpace([
            Spec("gain", 200.0, 400.0, SpecKind.LOWER_BOUND, unit="V/V"),
            Spec("ugbw", 1.0e6, 2.5e7, SpecKind.LOWER_BOUND,
                 log_scale=True, unit="Hz"),
            Spec("phase_margin", 60.0, 60.000001, SpecKind.LOWER_BOUND,
                 unit="deg"),
            Spec("ibias", 0.1e-3, 10e-3, SpecKind.MINIMIZE,
                 log_scale=True, unit="A"),
        ])

    def build(self, values: dict[str, float]) -> Netlist:
        """Construct the sized testbench netlist (see the module
        docstring for the circuit)."""
        tech = self.technology
        length = tech.l_default
        vcm = self.VCM_FRACTION * tech.vdd
        nmos = self.device_params("nmos")
        pmos = self.device_params("pmos")

        net = Netlist("two_stage_opamp")
        net.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        # Differential drive: +/- half-volt AC around the common mode; M2's
        # gate is the non-inverting input (its drain feeds the PMOS CS).
        net.add(VoltageSource("VINP", "inp", "0", dc=vcm, ac=+0.5))
        net.add(VoltageSource("VINN", "inn", "0", dc=vcm, ac=-0.5))
        net.add(CurrentSource("IBIAS", "vdd", "nb", dc=self.I_BIAS_REF))

        net.add(Mosfet("M8", "nb", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=values["w_bias"], l=length))
        net.add(Mosfet("M5", "nt", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=values["w_tail"], l=length))
        net.add(Mosfet("M1", "d1", "inn", "nt", "0", polarity="nmos", params=nmos,
                       w=values["w_in"], l=length))
        net.add(Mosfet("M2", "d2", "inp", "nt", "0", polarity="nmos", params=nmos,
                       w=values["w_in"], l=length))
        net.add(Mosfet("M3", "d1", "d1", "vdd", "vdd", polarity="pmos", params=pmos,
                       w=values["w_load"], l=length))
        net.add(Mosfet("M4", "d2", "d1", "vdd", "vdd", polarity="pmos", params=pmos,
                       w=values["w_load"], l=length))
        net.add(Mosfet("M6", "out", "d2", "vdd", "vdd", polarity="pmos", params=pmos,
                       w=values["w_cs"], l=length))
        net.add(Mosfet("M7", "out", "nb", "0", "0", polarity="nmos", params=nmos,
                       w=values["w_sink"], l=length))
        net.add(Capacitor("CC", "d2", "out", values["cc"]))
        net.add(Capacitor("CL", "out", "0", self.C_LOAD))
        return net

    def update_netlist(self, net: Netlist, values: dict[str, float]) -> bool:
        """In-place resize (mirror of :meth:`build`'s value mapping)."""
        net["M8"].w = values["w_bias"]
        net["M5"].w = values["w_tail"]
        net["M1"].w = net["M2"].w = values["w_in"]
        net["M3"].w = net["M4"].w = values["w_load"]
        net["M6"].w = values["w_cs"]
        net["M7"].w = values["w_sink"]
        net["CC"].capacitance = values["cc"]
        return True

    #: AC sweep grid (class-level: building it per measurement is waste).
    AC_FREQUENCIES = log_frequencies(1e2, 1e11, points_per_decade=8)

    def measurements(self) -> MeasurementPlan:
        """Open-loop differential gain, UGBW, phase margin and bias
        current — one AC sweep at the output plus one branch current."""
        freqs = self.AC_FREQUENCIES
        return MeasurementPlan([
            DcGain("gain", "out", freqs),
            UnityGainBandwidth("ugbw", "out", freqs),
            PhaseMargin("phase_margin", "out", freqs),
            SupplyCurrent("ibias", "VDD"),
        ])
