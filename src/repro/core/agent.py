"""The AutoCkt facade: train once on sparse targets, deploy everywhere.

Ties the pieces together exactly as the paper's Fig. 3 describes:

1. sample the sparse training subsample O* (50 random targets);
2. train a PPO agent whose episodes chase randomly-drawn members of O*,
   stopping when the mean episode reward reaches 0;
3. deploy the trained agent on unseen targets (possibly through a
   different simulation environment — schematic -> PEX transfer).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.deploy import DeploymentReport, deploy_agent
from repro.core.env import SizingEnv, SizingEnvConfig
from repro.core.sampler import DEFAULT_N_TARGETS, TargetSampler
from repro.errors import TrainingError
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator, Topology

    SimulatorFactory = Callable[[], CircuitSimulator]


@dataclasses.dataclass
class AutoCktConfig:
    """Everything configurable about a training run."""

    ppo: PPOConfig = dataclasses.field(default_factory=PPOConfig)
    env: SizingEnvConfig = dataclasses.field(default_factory=SizingEnvConfig)
    n_train_targets: int = DEFAULT_N_TARGETS
    max_iterations: int = 200
    stop_reward: float | None = 0.0
    stop_patience: int = 1
    seed: int = 0
    #: Run each environment in its own worker process (the paper's Ray
    #: axis); pays off only when single simulations are expensive (PEX).
    parallel_envs: bool = False


class AutoCkt:
    """Train/deploy wrapper around one circuit topology.

    Parameters
    ----------
    simulator_factory:
        Zero-argument callable producing a fresh :class:`CircuitSimulator`
        (each parallel environment owns one; simulators carry per-instance
        warm-start state).  Use :meth:`for_topology` for the common case.
    """

    def __init__(self, simulator_factory: "Callable[[], CircuitSimulator]",
                 config: AutoCktConfig | None = None):
        self.config = config or AutoCktConfig()
        self.simulator_factory = simulator_factory
        probe = simulator_factory()
        self.spec_space = probe.spec_space
        self.parameter_space = probe.parameter_space
        self._probe_simulator = probe
        self.sampler = TargetSampler(self.spec_space,
                                     n_targets=self.config.n_train_targets,
                                     seed=self.config.seed)
        self.policy: ActorCritic | None = None
        self.history: TrainingHistory | None = None
        self.trainer: PPOTrainer | None = None

    @classmethod
    def for_topology(cls, topology_factory: "Callable[[], Topology]",
                     config: AutoCktConfig | None = None,
                     cache: bool = True) -> "AutoCkt":
        """Build an AutoCkt over schematic simulation of a topology."""
        from repro.topologies.base import SchematicSimulator

        return cls(lambda: SchematicSimulator(topology_factory(), cache=cache),
                   config=config)

    # -- training ------------------------------------------------------------
    def make_env(self, seed: int, simulator=None) -> SizingEnv:
        """One training environment (fresh simulator unless one is given)."""
        return SizingEnv(simulator or self.simulator_factory(),
                         training_targets=self.sampler.targets,
                         config=self.config.env, seed=seed)

    def train(self, callback=None) -> TrainingHistory:
        """Train PPO on the sparse target set; stores and returns history.

        In-process training shares one simulator across the environments
        and steps them through its batched engine (one stacked solve per
        policy query — see :class:`~repro.rl.env.VectorEnv`); with
        ``parallel_envs`` each env instead owns a simulator in its own
        worker process.  With ``REPRO_ASYNC=1`` the shared-simulator path
        upgrades to the double-buffered
        :class:`~repro.rl.async_env.AsyncVectorEnv`, overlapping policy
        inference with the shard workers' batched solves.
        """
        cfg = self.config
        env_fns = [
            (lambda i=i: self.make_env(seed=cfg.seed * 1000 + i))
            for i in range(cfg.ppo.n_envs)
        ]
        if cfg.parallel_envs:
            from repro.rl.parallel import ParallelVectorEnv

            vec_env = ParallelVectorEnv(env_fns)
        else:
            from repro.rl.async_env import AsyncVectorEnv, async_enabled
            from repro.rl.env import VectorEnv

            shared = self.simulator_factory()
            envs = [self.make_env(seed=cfg.seed * 1000 + i, simulator=shared)
                    for i in range(cfg.ppo.n_envs)]
            if async_enabled():
                vec_env = AsyncVectorEnv(envs, batch_simulator=shared)
            else:
                vec_env = VectorEnv(envs, batch_simulator=shared)
        self.trainer = PPOTrainer(env_fns, config=cfg.ppo, vec_env=vec_env)
        try:
            self.history = self.trainer.train(
                max_iterations=cfg.max_iterations,
                stop_reward=cfg.stop_reward,
                stop_patience=cfg.stop_patience,
                callback=callback)
        finally:
            if hasattr(vec_env, "close"):
                vec_env.close()  # multiprocess workers need shutdown
        self.policy = self.trainer.policy
        return self.history

    @property
    def training_env_steps(self) -> int:
        return self.trainer.total_env_steps if self.trainer else 0

    # -- deployment ------------------------------------------------------------
    def deploy(self, targets: list[dict[str, float]] | int,
               simulator: "CircuitSimulator | None" = None, *,
               max_steps: int | None = None, deterministic: bool = False,
               keep_trajectories: bool = False,
               seed: int = 1234) -> DeploymentReport:
        """Deploy the trained policy.

        ``targets`` may be an explicit list or an integer count of fresh
        random targets.  ``simulator`` defaults to a fresh schematic
        simulator; pass a PEX simulator for the transfer experiment.
        """
        if self.policy is None:
            raise TrainingError("deploy() before train() (or load a policy)")
        if isinstance(targets, int):
            targets = self.sampler.fresh_targets(targets, seed=seed)
        simulator = simulator or self.simulator_factory()
        return deploy_agent(self.policy, simulator, targets,
                            max_steps=max_steps or self.config.env.max_steps,
                            reward=self.config.env.reward,
                            deterministic=deterministic,
                            keep_trajectories=keep_trajectories, seed=seed)

    # -- persistence ---------------------------------------------------------------
    def save_policy(self, path: str) -> None:
        """Save just the policy weights (see also :meth:`save_checkpoint`)."""
        if self.policy is None:
            raise TrainingError("no trained policy to save")
        self.policy.save(path)

    def load_policy(self, path: str) -> None:
        """Load bare policy weights saved by :meth:`save_policy`."""
        self.policy = ActorCritic.load(path)

    def save_checkpoint(self, path: str) -> None:
        """Write a single-file checkpoint: policy weights, the full
        training configuration, the sparse training-target set O*, and the
        training history.  Everything needed to resume deployment — or to
        audit how an agent was produced — travels in one ``.npz``."""
        import json

        from repro.config import autockt_to_dict

        if self.policy is None:
            raise TrainingError("no trained policy to checkpoint")
        meta = {
            "config": autockt_to_dict(self.config),
            "targets": self.sampler.targets,
            "history": self.history.to_dict() if self.history else None,
        }
        arrays = self.policy.to_arrays()
        arrays["checkpoint_json"] = np.array(json.dumps(meta))
        np.savez(path, **arrays)

    def load_checkpoint(self, path: str) -> None:
        """Restore a checkpoint written by :meth:`save_checkpoint` into
        this agent: policy, config, training targets and history.  The
        simulator factory is *not* stored (simulators are live objects);
        the agent keeps the one it was constructed with, which is exactly
        the transfer-learning deployment pattern."""
        import json

        from repro.config import autockt_from_dict
        from repro.core.sampler import TargetSampler
        from repro.rl.ppo import TrainingHistory

        data = np.load(path)
        if "checkpoint_json" not in data:
            raise TrainingError(
                f"{path} is a bare policy file, not a checkpoint "
                "(use load_policy)")
        meta = json.loads(str(data["checkpoint_json"]))
        self.policy = ActorCritic.from_arrays(data)
        self.config = autockt_from_dict(meta["config"])
        self.sampler = TargetSampler(
            self.spec_space, n_targets=self.config.n_train_targets,
            seed=self.config.seed, targets=meta["targets"])
        self.history = (TrainingHistory.from_dict(meta["history"])
                        if meta["history"] else None)

    # -- introspection ----------------------------------------------------------
    def action_space_cardinality(self) -> int:
        """Size of the sizing grid (the paper quotes 1e14 for the op-amp)."""
        return self.parameter_space.cardinality

    def describe(self) -> str:
        """Human-readable summary of spaces, targets and training state."""
        lines = [
            f"AutoCkt over {len(self.parameter_space)} parameters "
            f"({self.action_space_cardinality():.3e} sizings), "
            f"{len(self.spec_space)} specs",
            f"training targets: {len(self.sampler)}",
        ]
        if self.history is not None:
            lines.append(
                f"trained: {len(self.history.iterations)} iterations, "
                f"{self.training_env_steps} env steps, final mean reward "
                f"{self.history.final_mean_reward:.3f}")
        return "\n".join(lines)


def fresh_random_policy(simulator: "CircuitSimulator", seed: int = 0,
                        hidden: tuple[int, ...] = (50, 50, 50)) -> ActorCritic:
    """An untrained policy over a simulator's spaces (the paper's "random
    RL agent" baseline rows)."""
    n = len(simulator.parameter_space)
    m = len(simulator.spec_space)
    return ActorCritic(obs_dim=2 * m + n, nvec=np.array([3] * n),
                       hidden=hidden, seed=seed)
