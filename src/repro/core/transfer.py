"""Transfer learning from schematic to post-layout simulation (paper §III-D).

"An RL agent trained by running inexpensive schematic simulations is able
to transfer its knowledge to a different environment … which then runs PEX
simulations … Note that no training is done once the environment has
changed" (paper Fig. 13).  Concretely: deploy the schematic-trained policy
with the environment's simulator swapped for a PEX-extracting one, and
verify every converged design with LVS.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.deploy import DeploymentReport, deploy_agent
from repro.core.reward import RewardSpec
from repro.rl.policy import ActorCritic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class TransferReport:
    """Deployment report plus layout-verification results."""

    deployment: DeploymentReport
    lvs_results: list[bool]

    @property
    def n_lvs_passed(self) -> int:
        return sum(self.lvs_results)

    @property
    def generalization(self) -> float:
        return self.deployment.generalization

    @property
    def mean_sims_to_success(self) -> float:
        return self.deployment.mean_sims_to_success

    def summary(self) -> dict[str, float]:
        """The headline transfer metrics as a JSON-friendly dict."""
        out = self.deployment.summary()
        out["n_lvs_passed"] = self.n_lvs_passed
        return out


def transfer_deploy(policy: ActorCritic, pex_simulator: "CircuitSimulator",
                    targets: list[dict[str, float]], *, max_steps: int = 60,
                    reward: RewardSpec | None = None,
                    deterministic: bool = False,
                    seed: int = 0) -> TransferReport:
    """Deploy a schematic-trained policy through a PEX simulator.

    The PEX simulator is expected to expose ``lvs_check(indices) -> bool``
    (as :class:`repro.pex.extraction.PexSimulator` does); simulators
    without it count every reached design as unverified (False).

    ``max_steps`` defaults higher than schematic deployment because the
    transferred agent "takes longer to converge … due to the addition of
    layout parasitics" (paper Table IV: 23 vs 10 steps).
    """
    deployment = deploy_agent(policy, pex_simulator, targets,
                              max_steps=max_steps, reward=reward,
                              deterministic=deterministic,
                              keep_trajectories=True, seed=seed)
    lvs_results = []
    check = getattr(pex_simulator, "lvs_check", None)
    for outcome in deployment.outcomes:
        if outcome.success and check is not None:
            lvs_results.append(bool(check(outcome.final_indices)))
        else:
            lvs_results.append(False)
    return TransferReport(deployment=deployment, lvs_results=lvs_results)


def schematic_pex_differences(schematic: "CircuitSimulator",
                              pex: "CircuitSimulator",
                              index_vectors: list[np.ndarray]) -> dict[str, np.ndarray]:
    """Per-spec percentage differences between schematic and PEX simulation
    over a set of designs — the data behind the paper's Fig. 14 histogram
    ("average percent difference across each design specification between
    PEX and schematic simulation" over 50 design points)."""
    names = schematic.spec_space.names
    diffs: dict[str, list[float]] = {name: [] for name in names}
    for indices in index_vectors:
        s_specs = schematic.evaluate(indices)
        p_specs = pex.evaluate(indices)
        for name in names:
            s, p = s_specs[name], p_specs[name]
            denom = abs(s) if s != 0 else 1.0
            diffs[name].append(100.0 * (p - s) / denom)
    return {name: np.asarray(vals) for name, vals in diffs.items()}
