"""The paper's Eq. (1) dense reward.

For each hard spec the normalised, sign-adjusted distance

    ``d_i = +/- (o_i - o*_i) / (|o_i| + |o*_i|)``

is positive when the spec is met and negative otherwise; hard specs
contribute ``min(d_i, 0)`` (no bonus for overshooting a constraint) and
soft ("minimise") specs contribute their signed distance, rewarding the
agent for pushing below the target even once it is met.  The episode
reward is

    ``R = 10 + r``  once the hard part of r is >= -0.01 (goal reached),
    ``R = r``       otherwise,

matching the paper's piecewise definition and the open-source AutoCkt
implementation's termination bonus.
"""

from __future__ import annotations

import dataclasses

from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.errors import SpaceError

#: Hard-constraint slack below which the goal counts as reached (paper: -0.01).
GOAL_TOLERANCE = -0.01

#: Termination bonus added when the goal is reached (paper: +10).
GOAL_BONUS = 10.0


def normalized_distance(observed: float, target: float, spec: Spec) -> float:
    """Sign-adjusted relative distance: positive iff the spec is met.

    Uses the paper's ``(o - o*) / (o + o*)`` form with absolute values in
    the denominator so that (rare) negative measurements stay bounded.
    """
    denom = abs(observed) + abs(target)
    if denom == 0.0:
        return 0.0
    d = (observed - target) / denom
    if spec.kind is SpecKind.LOWER_BOUND:
        return d
    if spec.kind in (SpecKind.UPPER_BOUND, SpecKind.MINIMIZE):
        return -d
    if spec.kind is SpecKind.RANGE:
        high = target + (spec.range_width or 0.0)
        denom_hi = abs(observed) + abs(high)
        d_hi = (high - observed) / denom_hi if denom_hi else 0.0
        return min(d, d_hi)
    raise SpaceError(f"unhandled spec kind {spec.kind}")


@dataclasses.dataclass(frozen=True)
class RewardSpec:
    """Configuration of the reward computation.

    ``soft_weight`` scales the soft (minimise) terms of Eq. (1).  The
    default is 0: the open-source AutoCkt implementation treats the
    minimised specs (bias current) as plain upper bounds, and a non-zero
    always-on soft term breaks the paper's stopping rule — an agent
    sitting far below the power budget accrues positive reward every step
    without meeting any hard spec, so "mean episode reward >= 0" stops
    training before anything is learned.  Setting ``soft_weight > 0``
    reproduces the literal Eq. (1) (the reward-shaping ablation bench
    sweeps it).

    ``sparse`` replaces the dense shaping with a pure success/failure
    signal (used by the same ablation).
    """

    soft_weight: float = 0.0
    goal_tolerance: float = GOAL_TOLERANCE
    goal_bonus: float = GOAL_BONUS
    sparse: bool = False


@dataclasses.dataclass(frozen=True)
class RewardBreakdown:
    """Reward plus its components, for analysis and tests."""

    reward: float
    hard_term: float
    soft_term: float
    goal_reached: bool
    distances: dict[str, float]


def compute_reward(observed: dict[str, float], target: dict[str, float],
                   space: SpecSpace,
                   config: RewardSpec = RewardSpec()) -> RewardBreakdown:
    """Evaluate Eq. (1) for a measurement against a target specification."""
    hard = 0.0
    soft = 0.0
    distances: dict[str, float] = {}
    for spec in space:
        if spec.name not in observed:
            raise SpaceError(f"measurement missing spec {spec.name!r}")
        if spec.name not in target:
            raise SpaceError(f"target missing spec {spec.name!r}")
        d = normalized_distance(observed[spec.name], target[spec.name], spec)
        distances[spec.name] = d
        hard += min(d, 0.0)
        if spec.kind.is_soft:
            soft += config.soft_weight * d
    goal = hard >= config.goal_tolerance
    if config.sparse:
        reward = config.goal_bonus if goal else -1.0
    else:
        r = hard + soft
        reward = (config.goal_bonus + r) if goal else r
    return RewardBreakdown(reward=reward, hard_term=hard, soft_term=soft,
                           goal_reached=goal, distances=distances)
