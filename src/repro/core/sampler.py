"""Sparse subsampling of the specification space (paper §II-A).

The paper trains on 50 randomly-sampled target specifications::

    O* = [o*_i in [o_min_i, o_max_i] for i in 0..M] x 50

"The number of target specifications needed to train was optimized
through a hyperparameter sweep" — the target-count ablation bench sweeps
this number and reproduces that trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.specs import SpecSpace
from repro.errors import SpaceError

#: The paper's training-set size.
DEFAULT_N_TARGETS = 50


class TargetSampler:
    """Draws and holds the fixed training subsample O*."""

    def __init__(self, spec_space: SpecSpace, n_targets: int = DEFAULT_N_TARGETS,
                 seed: int = 0,
                 targets: list[dict[str, float]] | None = None):
        """``targets`` overrides the random draw with an explicit training
        set (checkpoint restore); its length wins over ``n_targets``."""
        if targets is None and n_targets < 1:
            raise SpaceError("need at least one training target")
        self.spec_space = spec_space
        self.seed = seed
        if targets is not None:
            if not targets:
                raise SpaceError("explicit target list must be non-empty")
            self.targets = [dict(t) for t in targets]
        else:
            rng = np.random.default_rng(seed)
            self.targets = spec_space.sample_targets(n_targets, rng)
        self.n_targets = len(self.targets)

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    def __getitem__(self, i: int) -> dict[str, float]:
        return dict(self.targets[i])

    def fresh_targets(self, n: int, seed: int) -> list[dict[str, float]]:
        """Unseen random targets for deployment (paper: 500/1000 random
        targets "it has never seen before, in the range specified during
        training")."""
        rng = np.random.default_rng(seed)
        return self.spec_space.sample_targets(n, rng)

    def as_array(self) -> np.ndarray:
        """Targets as an (n, M) array in spec order (for analysis)."""
        names = self.spec_space.names
        return np.array([[t[name] for name in names] for t in self.targets])
