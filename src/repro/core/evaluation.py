"""Periodic deployment evaluation during training.

The paper's stopping rule watches the *training* reward, which measures
performance on the 50-target training subsample O*.  What a user actually
cares about is generalisation to unseen targets — so this module provides
an :class:`EvalCallback` that, every N training iterations, deploys the
current policy on a held-out target set, records the success rate and
sample efficiency, snapshots the best policy seen so far, and can stop
training once the held-out success rate crosses a threshold.

Plugs into ``PPOTrainer.train(callback=...)`` / ``AutoCkt.train(...)``
unchanged (it composes with the reward-based stop: whichever fires first
ends training).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from repro.core.deploy import deploy_agent
from repro.core.reward import RewardSpec
from repro.errors import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.rl.policy import ActorCritic
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass(frozen=True)
class EvalRecord:
    """One held-out evaluation during training."""

    iteration: int
    env_steps: int
    success_rate: float
    mean_sims_to_success: float


class EvalCallback:
    """Held-out evaluation callback for the PPO training loop.

    Parameters
    ----------
    simulator_factory:
        Builds a fresh simulator for each evaluation (evaluations must not
        disturb the training envs' warm-start state).
    targets:
        The held-out target specifications (never shown to training).
    every:
        Evaluate each time this many iterations complete.
    stop_success:
        End training once the held-out success rate reaches this value
        (``None`` disables stopping; the callback then only records).
    deterministic:
        Deploy with argmax actions (default) for low-variance evaluations.
    """

    def __init__(self, simulator_factory: "Callable[[], CircuitSimulator]",
                 targets: list[dict[str, float]], *, every: int = 10,
                 max_steps: int = 30, reward: RewardSpec | None = None,
                 stop_success: float | None = None,
                 deterministic: bool = True, seed: int = 909):
        if every < 1:
            raise TrainingError("eval interval must be >= 1")
        if not targets:
            raise TrainingError("eval callback needs at least one target")
        if stop_success is not None and not 0.0 < stop_success <= 1.0:
            raise TrainingError("stop_success must be in (0, 1]")
        self.simulator_factory = simulator_factory
        self.targets = [dict(t) for t in targets]
        self.every = int(every)
        self.max_steps = int(max_steps)
        self.reward = reward or RewardSpec()
        self.stop_success = stop_success
        self.deterministic = bool(deterministic)
        self.seed = int(seed)
        self.records: list[EvalRecord] = []
        self.best_policy: "ActorCritic | None" = None
        self.best_success: float = -1.0

    def __call__(self, trainer, history) -> bool:
        iteration = history.iterations[-1]
        if iteration % self.every != 0:
            return False
        report = deploy_agent(trainer.policy, self.simulator_factory(),
                              self.targets, max_steps=self.max_steps,
                              reward=self.reward,
                              deterministic=self.deterministic,
                              seed=self.seed)
        record = EvalRecord(
            iteration=iteration,
            env_steps=history.env_steps[-1],
            success_rate=report.generalization,
            mean_sims_to_success=report.mean_sims_to_success,
        )
        self.records.append(record)
        if record.success_rate > self.best_success:
            self.best_success = record.success_rate
            self.best_policy = trainer.policy.clone()
        return (self.stop_success is not None
                and record.success_rate >= self.stop_success)

    @property
    def latest(self) -> EvalRecord:
        if not self.records:
            raise TrainingError("no evaluations recorded yet")
        return self.records[-1]

    def curve(self) -> tuple[list[int], list[float]]:
        """(env_steps, success_rate) series — the held-out companion to
        the paper's training-reward figures."""
        return ([r.env_steps for r in self.records],
                [r.success_rate for r in self.records])
