"""AutoCkt core: the paper's contribution.

* :mod:`repro.core.specs` — design-specification spaces, normalisation and
  target sampling;
* :mod:`repro.core.reward` — the paper's Eq. (1) dense reward;
* :mod:`repro.core.env` — the discrete sizing environment (observation =
  normalised [current specs, target specs, parameters], action =
  increment/decrement/keep per parameter);
* :mod:`repro.core.sampler` — the 50-target sparse subsampling of the spec
  space used for training;
* :mod:`repro.core.agent` — the AutoCkt facade: train a PPO agent, save /
  load it, deploy it on unseen targets;
* :mod:`repro.core.deploy` — deployment loops and generalisation counting;
* :mod:`repro.core.transfer` — schematic-to-PEX transfer-learning
  deployment (paper §III-D);
* :mod:`repro.core.pareto` — achievable-front extraction (the
  quantitative form of the paper's "these points are indeed unreachable"
  argument).
"""

from repro.core.agent import AutoCkt, AutoCktConfig, fresh_random_policy
from repro.core.deploy import (
    DeploymentReport,
    TargetOutcome,
    deploy_agent,
    run_trajectory,
)
from repro.core.env import SizingEnv, SizingEnvConfig
from repro.core.evaluation import EvalCallback, EvalRecord
from repro.core.pareto import ParetoFront, dominates, pareto_front, sample_front
from repro.core.reward import (
    RewardBreakdown,
    RewardSpec,
    compute_reward,
    normalized_distance,
)
from repro.core.sampler import TargetSampler
from repro.core.specs import Spec, SpecKind, SpecSpace
from repro.core.transfer import (
    TransferReport,
    schematic_pex_differences,
    transfer_deploy,
)

__all__ = [
    "EvalCallback",
    "EvalRecord",
    "ParetoFront",
    "dominates",
    "pareto_front",
    "sample_front",
    "AutoCkt",
    "AutoCktConfig",
    "DeploymentReport",
    "RewardBreakdown",
    "RewardSpec",
    "SizingEnv",
    "SizingEnvConfig",
    "Spec",
    "SpecKind",
    "SpecSpace",
    "TargetOutcome",
    "TargetSampler",
    "TransferReport",
    "compute_reward",
    "deploy_agent",
    "fresh_random_policy",
    "normalized_distance",
    "run_trajectory",
    "schematic_pex_differences",
    "transfer_deploy",
]
