"""The sizing environment (paper §II-A).

Observation: ``[norm(o), norm(o*), norm(x)]`` — the normalised current
specs, target specs, and parameter indices (paper Fig. 2 feeds the network
the observed performance, the target, and the current parameters).

Action: ``MultiDiscrete([3] * N)`` — per parameter decrement (0), keep (1)
or increment (2), clipped at the grid boundary.

Episode: parameters start at the grid centre K/2; each step simulates the
new sizing and pays the Eq. (1) reward; the episode ends at goal
(hard-constraint slack >= -0.01, +10 bonus) or after H steps.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.reward import RewardSpec, compute_reward
from repro.errors import TrainingError
from repro.rl.env import Env
from repro.rl.spaces import Box, MultiDiscrete

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class SizingEnvConfig:
    """Environment options.

    ``max_steps`` is the paper's trajectory length H (30 for the op-amp,
    swept in Fig. 10).  ``random_start`` replaces the centre start with a
    uniform random grid point (used by ablations only).
    """

    max_steps: int = 30
    reward: RewardSpec = dataclasses.field(default_factory=RewardSpec)
    random_start: bool = False

    def __post_init__(self):
        if self.max_steps < 1:
            raise TrainingError("max_steps must be >= 1")


class SizingEnv(Env):
    """Gym-style environment around a :class:`CircuitSimulator`.

    Parameters
    ----------
    simulator:
        Evaluates grid-index vectors into measured specs.  Each env
        instance should own its simulator (warm-start state is per
        instance).
    training_targets:
        The sparse target subsample O* (a list of target dicts).  When
        provided, :meth:`reset` draws uniformly from it; when None, each
        reset samples a fresh random target from the spec space
        (deployment-style).
    """

    def __init__(self, simulator: "CircuitSimulator",
                 training_targets: list[dict[str, float]] | None = None,
                 config: SizingEnvConfig | None = None, seed: int = 0):
        self.simulator = simulator
        self.space = simulator.parameter_space
        self.specs = simulator.spec_space
        self.config = config or SizingEnvConfig()
        self.training_targets = training_targets
        self.rng = np.random.default_rng(seed)

        n = len(self.space)
        m = len(self.specs)
        self.observation_space = Box(-np.inf, np.inf, shape=(2 * m + n,))
        self.action_space = MultiDiscrete([3] * n)

        self._indices: np.ndarray | None = None
        self._observed: dict[str, float] | None = None
        self._target: dict[str, float] | None = None
        self._steps = 0

    # -- episode control ----------------------------------------------------
    def reset(self, target: dict[str, float] | None = None) -> np.ndarray:
        """Start an episode; ``target`` overrides the training-set draw."""
        if target is not None:
            self._target = dict(target)
        elif self.training_targets:
            pick = self.rng.integers(len(self.training_targets))
            self._target = dict(self.training_targets[pick])
        else:
            self._target = self.specs.sample_target(self.rng)
        if self.config.random_start:
            self._indices = self.space.sample(self.rng)
        else:
            self._indices = self.space.center.copy()
        self._steps = 0
        # One episode's final operating point must not seed the next
        # episode's first solve: a reset is a jump across the grid, and
        # warm state leaking between designs would make a trajectory's
        # numerics depend on which episode ran before it.
        getattr(self.simulator, "reset_warm_start", lambda: None)()
        self._observed = self.simulator.evaluate(self._indices)
        return self._observation()

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        return self.finish_step(self.simulator.evaluate(
            self.begin_step(action)))

    def begin_step(self, action) -> np.ndarray:
        """Apply ``action`` and return the grid indices to evaluate.

        Together with :meth:`finish_step` this splits :meth:`step` around
        the simulator call, so a :class:`~repro.rl.env.VectorEnv` can
        gather every env's indices and run them as one
        ``evaluate_batch`` — the batched-engine path for RL rollouts.
        """
        if self._indices is None or self._target is None:
            raise TrainingError("step() before reset()")
        action = np.asarray(action, dtype=np.int64)
        if not self.action_space.contains(action):
            raise TrainingError(f"invalid action {action!r}")
        self._indices = self.space.clip(self._indices + (action - 1))
        return self._indices

    def finish_step(self, observed: dict[str, float]
                    ) -> tuple[np.ndarray, float, bool, dict]:
        """Consume the specs of the sizing chosen by :meth:`begin_step`."""
        assert self._indices is not None and self._target is not None
        self._observed = observed
        breakdown = compute_reward(self._observed, self._target, self.specs,
                                   self.config.reward)
        self._steps += 1
        done = breakdown.goal_reached or self._steps >= self.config.max_steps
        info = {
            "success": breakdown.goal_reached,
            "specs": dict(self._observed),
            "target": dict(self._target),
            "indices": self._indices.copy(),
            "hard_term": breakdown.hard_term,
            "soft_term": breakdown.soft_term,
            "steps": self._steps,
        }
        return self._observation(), breakdown.reward, done, info

    # -- views ---------------------------------------------------------------
    @property
    def target(self) -> dict[str, float] | None:
        return dict(self._target) if self._target is not None else None

    @property
    def indices(self) -> np.ndarray | None:
        return None if self._indices is None else self._indices.copy()

    @property
    def observed(self) -> dict[str, float] | None:
        return dict(self._observed) if self._observed is not None else None

    def _observation(self) -> np.ndarray:
        assert self._observed is not None and self._target is not None
        return np.concatenate([
            self.specs.normalize(self._observed),
            self.specs.normalize(self._target),
            self.space.normalize(self._indices),
        ])
