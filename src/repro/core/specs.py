"""Design specifications: kinds, sampling ranges and normalisation.

The paper defines the specification space as ``y in R^M`` "normalized to a
fixed range" (§II).  A :class:`Spec` describes one axis of that space: its
name, the sampling range used both for drawing random targets and for
normalising observations, whether meeting it means being above or below
the target (or inside a window), and whether it lives on a linear or
logarithmic scale (bandwidths and noise span decades; gains and phase
margins do not).

Spec kinds
----------
``LOWER_BOUND``
    Met when the measured value is >= the target (gain, UGBW, phase margin).
``UPPER_BOUND``
    Met when the measured value is <= the target (settling time, noise).
``RANGE``
    Met when the value lies inside ``[target - window, target + window]``
    style bounds; used for the negative-gm OTA's phase-margin range of
    paper §III-C/D.  The target is the window's low edge and
    ``range_width`` its extent.
``MINIMIZE``
    An upper-bound spec that is *also* softly minimised in the reward (the
    paper's o_th terms in Eq. 1) — bias current in §III-B.
"""

from __future__ import annotations

import dataclasses
import enum
import math

import numpy as np

from repro.errors import SpaceError


class SpecKind(enum.Enum):
    LOWER_BOUND = "lower"
    UPPER_BOUND = "upper"
    RANGE = "range"
    MINIMIZE = "minimize"

    @property
    def is_soft(self) -> bool:
        """True when the spec contributes a soft (always-on) reward term."""
        return self is SpecKind.MINIMIZE


@dataclasses.dataclass(frozen=True)
class Spec:
    """One axis of the design-specification space.

    Parameters
    ----------
    name:
        Measurement key produced by the topology (e.g. ``"gain"``).
    low, high:
        Sampling range for random targets; also the normalisation window.
    kind:
        How "meeting" the spec is judged (see module docstring).
    log_scale:
        Normalise (and sample) in log10 space; use for specs spanning
        multiple decades.
    range_width:
        Only for ``RANGE`` specs: the window extent above the sampled
        target (e.g. phase margin sampled in [60, 75] with the window being
        [target_low, high]).
    unit:
        Human-readable unit for reports.
    """

    name: str
    low: float
    high: float
    kind: SpecKind
    log_scale: bool = False
    range_width: float | None = None
    unit: str = ""

    def __post_init__(self):
        if not self.name:
            raise SpaceError("spec name must be non-empty")
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise SpaceError(f"spec {self.name}: bounds must be finite")
        if self.low >= self.high:
            raise SpaceError(f"spec {self.name}: low must be < high")
        if self.log_scale and self.low <= 0.0:
            raise SpaceError(f"spec {self.name}: log scale needs positive bounds")
        if self.kind is SpecKind.RANGE and (self.range_width is None
                                            or self.range_width <= 0.0):
            raise SpaceError(f"spec {self.name}: RANGE kind needs range_width > 0")

    # -- normalisation -------------------------------------------------------
    def normalize(self, value: float) -> float:
        """Map a raw measurement to roughly [-1, 1] over the sampling range.

        Values outside the range extrapolate linearly and are clipped to
        [-3, 3] so broken designs produce a bounded observation.
        """
        lo, hi = self.low, self.high
        if self.log_scale:
            value = math.log10(max(value, 1e-30))
            lo, hi = math.log10(lo), math.log10(hi)
        t = 2.0 * (value - lo) / (hi - lo) - 1.0
        return float(np.clip(t, -3.0, 3.0))

    def denormalize(self, t: float) -> float:
        """Inverse of :meth:`normalize` (for t within [-1, 1])."""
        lo, hi = self.low, self.high
        if self.log_scale:
            lo, hi = math.log10(lo), math.log10(hi)
        value = lo + (t + 1.0) / 2.0 * (hi - lo)
        return float(10.0 ** value) if self.log_scale else float(value)

    # -- sampling -----------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one random target uniformly over the (possibly log) range."""
        if self.log_scale:
            return float(10.0 ** rng.uniform(math.log10(self.low),
                                             math.log10(self.high)))
        return float(rng.uniform(self.low, self.high))


def failure_measurements(spec_space: "SpecSpace") -> dict[str, float]:
    """Pessimistic spec values charged to designs that produced none.

    Non-convergent solves, measurement failures and quarantined poison
    designs (see :mod:`repro.sim.faults`) all pay the same penalty: each
    lower-bound spec reports far below its sampling range, each
    upper-bound/minimise spec far above it, and range specs report zero
    — so optimisers always receive a numeric, heavily penalised result
    and the reward surface stays finite.  This is the single source of
    the penalty row; :meth:`repro.topologies.base.Topology.failure_measurement`
    and ``CircuitSimulator.failure_measurements`` both delegate here.
    """
    failed: dict[str, float] = {}
    for spec in spec_space:
        if spec.kind is SpecKind.LOWER_BOUND:
            failed[spec.name] = (spec.low * 1e-3 if spec.low > 0
                                 else -abs(spec.high))
        elif spec.kind is SpecKind.RANGE:
            failed[spec.name] = 0.0
        else:
            failed[spec.name] = spec.high * 1e3
    return failed


class SpecSpace:
    """An ordered collection of :class:`Spec` axes.

    Provides vectorised normalisation for observations, uniform random
    target sampling (the paper's ``O*`` construction) and pretty reporting.
    """

    def __init__(self, specs: list[Spec] | tuple[Spec, ...]):
        if not specs:
            raise SpaceError("spec space needs at least one spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate spec names: {names}")
        self.specs: tuple[Spec, ...] = tuple(specs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __getitem__(self, name: str) -> Spec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def normalize(self, values: dict[str, float]) -> np.ndarray:
        """Normalise a measurement dict into an (M,) observation slice."""
        try:
            return np.array([s.normalize(values[s.name]) for s in self.specs])
        except KeyError as missing:
            raise SpaceError(f"measurement missing spec {missing}") from None

    def sample_target(self, rng: np.random.Generator) -> dict[str, float]:
        """Draw one random target specification o*."""
        return {s.name: s.sample(rng) for s in self.specs}

    def sample_targets(self, n: int, rng: np.random.Generator) -> list[dict[str, float]]:
        """Draw ``n`` independent random targets (the paper's O* with n=50)."""
        if n < 1:
            raise SpaceError("need at least one target")
        return [self.sample_target(rng) for _ in range(n)]

    def describe_target(self, target: dict[str, float]) -> str:
        """One-line human-readable rendering of a target spec."""
        parts = []
        relation = {SpecKind.LOWER_BOUND: ">=", SpecKind.UPPER_BOUND: "<=",
                    SpecKind.RANGE: "in", SpecKind.MINIMIZE: "<="}
        for spec in self.specs:
            value = target[spec.name]
            if spec.kind is SpecKind.RANGE:
                parts.append(f"{spec.name} in [{value:.4g}, "
                             f"{value + spec.range_width:.4g}]{spec.unit}")
            else:
                parts.append(f"{spec.name} {relation[spec.kind]} "
                             f"{value:.4g}{spec.unit}")
        return ", ".join(parts)
