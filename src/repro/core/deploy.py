"""Deployment: run a trained agent against unseen targets and count.

The paper's generalisation metric is the number of unseen random targets
the trained agent reaches (e.g. 963/1000 for the op-amp), and its sample
efficiency is the mean number of simulations needed for the targets it
does reach (27 for the op-amp — "near 40x faster than a traditional
genetic algorithm").
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.env import SizingEnv, SizingEnvConfig
from repro.core.reward import RewardSpec
from repro.rl.policy import ActorCritic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


@dataclasses.dataclass
class TrajectoryStep:
    """One step of a deployment trajectory (kept for Fig. 14-style plots)."""

    indices: np.ndarray
    specs: dict[str, float]
    reward: float


@dataclasses.dataclass
class TargetOutcome:
    """Result of chasing one target specification."""

    target: dict[str, float]
    success: bool
    steps: int
    sims_used: int
    final_specs: dict[str, float]
    final_indices: np.ndarray
    trajectory: list[TrajectoryStep] | None = None


@dataclasses.dataclass
class DeploymentReport:
    """Aggregate over a set of deployment targets."""

    outcomes: list[TargetOutcome]
    max_steps: int

    @property
    def n_targets(self) -> int:
        return len(self.outcomes)

    @property
    def n_reached(self) -> int:
        return sum(1 for o in self.outcomes if o.success)

    @property
    def generalization(self) -> float:
        """Fraction of targets reached (the paper's N/M generalisation)."""
        return self.n_reached / self.n_targets if self.outcomes else 0.0

    @property
    def mean_sims_to_success(self) -> float:
        """Mean simulations over reached targets (the paper's SE column)."""
        sims = [o.sims_used for o in self.outcomes if o.success]
        return float(np.mean(sims)) if sims else float("nan")

    @property
    def mean_steps_to_success(self) -> float:
        steps = [o.steps for o in self.outcomes if o.success]
        return float(np.mean(steps)) if steps else float("nan")

    def unreached_targets(self) -> list[dict[str, float]]:
        """Targets the agent failed to meet (the paper's Fig. 8 cloud)."""
        return [dict(o.target) for o in self.outcomes if not o.success]

    def reached_targets(self) -> list[dict[str, float]]:
        """Targets the agent met within the step budget."""
        return [dict(o.target) for o in self.outcomes if o.success]

    def summary(self) -> dict[str, float]:
        """The headline metrics as a JSON-friendly dict."""
        return {
            "n_targets": self.n_targets,
            "n_reached": self.n_reached,
            "generalization": self.generalization,
            "mean_sims_to_success": self.mean_sims_to_success,
            "mean_steps_to_success": self.mean_steps_to_success,
        }


def run_trajectory(policy: ActorCritic, env: SizingEnv,
                   target: dict[str, float], rng: np.random.Generator,
                   deterministic: bool = False,
                   keep_trajectory: bool = False) -> TargetOutcome:
    """Chase one target with the policy; one env step == one simulation."""
    obs = env.reset(target=target)
    sims = 1  # the reset evaluates the centre point
    trajectory: list[TrajectoryStep] | None = [] if keep_trajectory else None
    success = False
    info: dict = {}
    steps = 0
    while True:
        action = policy.act_single(obs, rng, deterministic=deterministic)
        obs, reward, done, info = env.step(action)
        sims += 1
        steps += 1
        if trajectory is not None:
            trajectory.append(TrajectoryStep(indices=info["indices"],
                                             specs=info["specs"],
                                             reward=reward))
        if done:
            success = bool(info["success"])
            break
    return TargetOutcome(target=dict(target), success=success, steps=steps,
                         sims_used=sims, final_specs=info["specs"],
                         final_indices=info["indices"], trajectory=trajectory)


def deploy_agent(policy: ActorCritic, simulator: "CircuitSimulator",
                 targets: list[dict[str, float]], *, max_steps: int = 30,
                 reward: RewardSpec | None = None, deterministic: bool = False,
                 keep_trajectories: bool = False,
                 seed: int = 0) -> DeploymentReport:
    """Run the trained ``policy`` against each target once.

    Note the environment used for deployment may wrap a *different*
    simulator than training (that is exactly the paper's transfer-learning
    experiment — see :mod:`repro.core.transfer`).
    """
    config = SizingEnvConfig(max_steps=max_steps,
                             reward=reward or RewardSpec())
    env = SizingEnv(simulator, training_targets=None, config=config, seed=seed)
    rng = np.random.default_rng(seed)
    outcomes = [run_trajectory(policy, env, target, rng,
                               deterministic=deterministic,
                               keep_trajectory=keep_trajectories)
                for target in targets]
    return DeploymentReport(outcomes=outcomes, max_steps=max_steps)
