"""Pareto-front analysis of the design space.

The paper reads its failure cases like a designer would: unreached
targets "attempt to meet the gain and bandwidth requirement while
minimizing for power" — i.e. they sit beyond the achievable gain /
bandwidth / power *trade-off surface*.  This module computes that surface
explicitly: given evaluated designs, extract the set not dominated on any
spec axis, where the improvement direction of each axis comes from its
:class:`~repro.core.specs.SpecKind` (LOWER_BOUND specs want more,
UPPER_BOUND/MINIMIZE specs want less, RANGE specs are constraints with no
direction and are ignored for dominance).

Used by the coverage analyses to separate "agent failed" from "target is
beyond the front" — the paper's Fig. 8 argument, made quantitative.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.specs import SpecKind, SpecSpace
from repro.errors import SpaceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topologies.base import CircuitSimulator


def _directed_axes(space: SpecSpace) -> list[tuple[str, float]]:
    """(name, sign) per spec with a dominance direction; sign +1 means
    larger-is-better."""
    axes = []
    for spec in space:
        if spec.kind is SpecKind.LOWER_BOUND:
            axes.append((spec.name, +1.0))
        elif spec.kind in (SpecKind.UPPER_BOUND, SpecKind.MINIMIZE):
            axes.append((spec.name, -1.0))
        # RANGE: a window constraint, no improvement direction.
    if not axes:
        raise SpaceError("spec space has no directed axes for dominance")
    return axes


def dominates(a: dict[str, float], b: dict[str, float],
              space: SpecSpace) -> bool:
    """True when design ``a`` is at least as good as ``b`` on every
    directed spec axis and strictly better on at least one."""
    at_least_as_good = True
    strictly_better = False
    for name, sign in _directed_axes(space):
        va, vb = sign * a[name], sign * b[name]
        if va < vb:
            at_least_as_good = False
            break
        if va > vb:
            strictly_better = True
    return at_least_as_good and strictly_better


@dataclasses.dataclass
class ParetoFront:
    """The non-dominated subset of a set of evaluated designs."""

    spec_space: SpecSpace
    designs: list[dict[str, float]]          # non-dominated specs
    indices: list[int]                       # positions in the input list

    def __len__(self) -> int:
        return len(self.designs)

    def trade_off(self, x: str, y: str) -> tuple[np.ndarray, np.ndarray]:
        """The front projected onto two axes, sorted by ``x`` — ready to
        plot (e.g. gain vs. bias current)."""
        xs = np.array([d[x] for d in self.designs])
        ys = np.array([d[y] for d in self.designs])
        order = np.argsort(xs)
        return xs[order], ys[order]

    def covers(self, target: dict[str, float]) -> bool:
        """True when some front design meets ``target`` on every directed
        axis — i.e. the target is on the achievable side of the front.

        A target not covered by the front of a *dense* design sample is
        evidence it is genuinely unreachable (the paper's hypothesis for
        its Fig. 8 failures).
        """
        axes = _directed_axes(self.spec_space)
        for design in self.designs:
            if all(sign * design[name] >= sign * target[name]
                   for name, sign in axes):
                return True
        return False


def pareto_front(designs: Sequence[dict[str, float]],
                 space: SpecSpace) -> ParetoFront:
    """Extract the non-dominated subset of ``designs``.

    O(n^2) pairwise sweep on the directed axes — fine for the
    thousands-of-points samples the analyses use.
    """
    if not designs:
        raise SpaceError("pareto_front needs at least one design")
    axes = _directed_axes(space)
    # Matrix of directed values: row per design, column per axis.
    mat = np.array([[sign * d[name] for name, sign in axes]
                    for d in designs], dtype=float)
    n = len(designs)
    dominated = np.zeros(n, dtype=bool)
    for i in range(n):
        if dominated[i]:
            continue
        geq = np.all(mat >= mat[i], axis=1)
        gt = np.any(mat > mat[i], axis=1)
        dominators = geq & gt
        dominators[i] = False
        if dominators.any():
            dominated[i] = True
            continue
        # i is on the front: everything i dominates can be marked now.
        leq = np.all(mat <= mat[i], axis=1)
        lt = np.any(mat < mat[i], axis=1)
        victims = leq & lt
        victims[i] = False
        dominated |= victims
    keep = [i for i in range(n) if not dominated[i]]
    return ParetoFront(spec_space=space,
                       designs=[dict(designs[i]) for i in keep],
                       indices=keep)


def sample_front(simulator: "CircuitSimulator", n_samples: int = 500,
                 seed: int = 0) -> ParetoFront:
    """Monte-Carlo approximation of a simulator's achievable front.

    Evaluates ``n_samples`` uniform random sizings and extracts the
    non-dominated subset.  The front sharpens as ``n_samples`` grows;
    500-2000 points give a usable picture for the analyses here.
    """
    if n_samples < 1:
        raise SpaceError("sample_front needs n_samples >= 1")
    rng = np.random.default_rng(seed)
    designs = [simulator.evaluate(simulator.parameter_space.sample(rng))
               for _ in range(n_samples)]
    return pareto_front(designs, simulator.spec_space)
