"""Linearised (small-signal) time-domain step response.

Settling time is measured on the small-signal step response of the circuit
linearised at its operating point: ``C dx/dt + G x = b_ac * u(t)``.  The
trapezoidal rule is A-stable, and because the system is linear the
iteration matrix is constant, so we LU-factor once and back-substitute per
step — thousands of time points cost a few milliseconds.

This is exactly how a designer measures small-signal settling in SPICE
(step the input source by a small amount around the bias point); the
nonlinear large-signal engine lives in :mod:`repro.sim.transient`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AnalysisError
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem


@dataclasses.dataclass
class StepResponse:
    """Small-signal step response waveforms."""

    system: MnaSystem
    time: np.ndarray       # (T,)
    solutions: np.ndarray  # (T, size)

    def voltage(self, node: str) -> np.ndarray:
        """Node-voltage waveform of the step response."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.time))
        return self.solutions[:, i]

    def final_value(self, node: str) -> float:
        """DC asymptote of the step response at ``node`` (from G x = b)."""
        i = self.system.node_index[node]
        if i < 0:
            return 0.0
        return float(self._x_inf[i])

    _x_inf: np.ndarray = dataclasses.field(default=None, repr=False)  # type: ignore[assignment]


def linear_step_response(system: MnaSystem, op: OperatingPoint, *,
                         duration: float, n_steps: int = 2000) -> StepResponse:
    """Integrate the linearised system's response to a unit step of the AC
    excitation over ``[0, duration]`` with the trapezoidal rule.

    ``duration`` should be several times the slowest expected settling
    time; callers usually derive it from the AC bandwidth.
    """
    if duration <= 0.0:
        raise AnalysisError("step response duration must be positive")
    if n_steps < 2:
        raise AnalysisError("step response needs at least 2 steps")
    if not np.any(system.b_ac):
        raise AnalysisError("step response needs an AC excitation on a source")

    G, C = system.small_signal_matrices(op)
    b = np.real(system.b_ac).astype(float)
    h = duration / n_steps

    lhs = C / h + 0.5 * G
    rhs_matrix = C / h - 0.5 * G
    try:
        M = np.linalg.solve(lhs, rhs_matrix)
        v = np.linalg.solve(lhs, b)
        # The trapezoidal rule is only marginally stable on the algebraic
        # (capacitance-free) MNA rows: starting from the inconsistent state
        # x = 0 excites an undamped +/- oscillation.  One tiny backward-
        # Euler step is L-stable and snaps the algebraic variables onto a
        # consistent manifold while leaving capacitor voltages ~ 0.
        h_init = h * 1e-6
        x0 = np.linalg.solve(C / h_init + G, b) if n_steps > 0 else np.zeros_like(b)
    except np.linalg.LinAlgError:
        raise AnalysisError("step response: trapezoidal iteration matrix singular")

    times = np.linspace(0.0, duration, n_steps + 1)
    states = _iterate_affine(M, v, n_steps, x0=x0)

    try:
        x_inf = np.linalg.solve(G, b)
    except np.linalg.LinAlgError:
        x_inf = states[-1].copy()
    response = StepResponse(system=system, time=times, solutions=states)
    response._x_inf = x_inf
    return response


def _iterate_affine(M: np.ndarray, v: np.ndarray, n_steps: int,
                    x0: np.ndarray | None = None) -> np.ndarray:
    """All iterates of ``x_{k+1} = M x_k + v`` from ``x_0``.

    Computed in closed form through the eigendecomposition of ``M``:
    with fixed point ``x* = (I-M)^-1 v``,
    ``x_k = x* + V diag(w^k) V^-1 (x_0 - x*)`` — one small eigensolve
    instead of ``n_steps`` back-substitutions, a ~10x speed-up on the
    sizing hot path.  Falls back to the plain iteration when ``M`` is
    defective, badly conditioned, or ``I - M`` is singular.
    """
    size = len(v)
    if x0 is None:
        x0 = np.zeros(size)
    try:
        x_star = np.linalg.solve(np.eye(size) - M, v)
        w, V = np.linalg.eig(M)
        c = np.linalg.solve(V, (x0 - x_star).astype(complex))
        # w^k for k = 0..n via a cumulative product: one C-loop pass
        # instead of n_steps complex pow() evaluations.
        with np.errstate(over="ignore", invalid="ignore"):
            wk = np.empty((n_steps + 1, size), dtype=complex)
            wk[0] = 1.0
            np.cumprod(np.broadcast_to(w, (n_steps, size)), axis=0,
                       out=wk[1:])
        states = x_star[None, :] + np.real(wk * c[None, :] @ V.T)
        if np.all(np.isfinite(states)):
            # Validate the decomposition against one explicit iterate.
            x1 = M @ states[-2] + v if n_steps >= 1 else x0
            scale = float(np.max(np.abs(states[-1]))) + 1e-12
            if np.allclose(states[-1], x1, rtol=1e-6, atol=1e-9 * scale):
                return states
    except np.linalg.LinAlgError:
        pass
    states = np.empty((n_steps + 1, size))
    x = x0.copy()
    states[0] = x
    for i in range(1, n_steps + 1):
        x = M @ x + v
        states[i] = x
    return states
