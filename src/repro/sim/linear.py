"""Linearised (small-signal) time-domain step response.

Settling time is measured on the small-signal step response of the circuit
linearised at its operating point: ``C dx/dt + G x = b_ac * u(t)``.  The
trapezoidal rule is A-stable, and because the system is linear the
iteration matrix is constant, so we LU-factor once and back-substitute per
step — thousands of time points cost a few milliseconds.

This is exactly how a designer measures small-signal settling in SPICE
(step the input source by a small amount around the bias point); the
nonlinear large-signal engine lives in :mod:`repro.sim.transient`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AnalysisError
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem


@dataclasses.dataclass
class StepResponse:
    """Small-signal step response waveforms."""

    system: MnaSystem
    time: np.ndarray       # (T,)
    solutions: np.ndarray  # (T, size)

    def voltage(self, node: str) -> np.ndarray:
        """Node-voltage waveform of the step response."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.time))
        return self.solutions[:, i]

    def final_value(self, node: str) -> float:
        """DC asymptote of the step response at ``node`` (from G x = b)."""
        i = self.system.node_index[node]
        if i < 0:
            return 0.0
        return float(self._x_inf[i])

    _x_inf: np.ndarray = dataclasses.field(default=None, repr=False)  # type: ignore[assignment]


def linear_step_response(system: MnaSystem, op: OperatingPoint, *,
                         duration: float, n_steps: int = 2000) -> StepResponse:
    """Integrate the linearised system's response to a unit step of the AC
    excitation over ``[0, duration]`` with the trapezoidal rule.

    ``duration`` should be several times the slowest expected settling
    time; callers usually derive it from the AC bandwidth.
    """
    if duration <= 0.0:
        raise AnalysisError("step response duration must be positive")
    if n_steps < 2:
        raise AnalysisError("step response needs at least 2 steps")
    if not np.any(system.b_ac):
        raise AnalysisError("step response needs an AC excitation on a source")

    G, C = system.small_signal_matrices(op)
    b = np.real(system.b_ac).astype(float)
    h = duration / n_steps

    lhs = C / h + 0.5 * G
    rhs_matrix = C / h - 0.5 * G
    try:
        M = np.linalg.solve(lhs, rhs_matrix)
        v = np.linalg.solve(lhs, b)
        # The trapezoidal rule is only marginally stable on the algebraic
        # (capacitance-free) MNA rows: starting from the inconsistent state
        # x = 0 excites an undamped +/- oscillation.  One tiny backward-
        # Euler step is L-stable and snaps the algebraic variables onto a
        # consistent manifold while leaving capacitor voltages ~ 0.
        h_init = h * 1e-6
        x0 = np.linalg.solve(C / h_init + G, b) if n_steps > 0 else np.zeros_like(b)
    except np.linalg.LinAlgError:
        raise AnalysisError("step response: trapezoidal iteration matrix singular")

    times = np.linspace(0.0, duration, n_steps + 1)
    states = _iterate_affine(M, v, n_steps, x0=x0)

    try:
        x_inf = np.linalg.solve(G, b)
    except np.linalg.LinAlgError:
        x_inf = states[-1].copy()
    response = StepResponse(system=system, time=times, solutions=states)
    response._x_inf = x_inf
    return response


def step_response_node_batch(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                             durations: np.ndarray, node_index: int,
                             n_steps: int = 2000
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked small-signal step responses projected onto one node.

    The batched counterpart of :func:`linear_step_response` for stacked
    operators ``G``/``C`` of shape ``(B, n, n)`` with per-design step
    ``durations``: per-design trapezoidal iteration matrices are built and
    solved in closed form through one stacked eigendecomposition, and the
    resulting waveforms are validated per design against one explicit
    iterate (failed designs fall back to the plain iteration).

    Returns ``(times, waves, finals)`` with shapes ``(B, T+1)``,
    ``(B, T+1)``, ``(B,)``; designs whose iteration matrix is singular get
    NaN waveforms (callers map them to failure measurements).
    """
    if n_steps < 2:
        raise AnalysisError("step response needs at least 2 steps")
    durations = np.asarray(durations, dtype=float)
    if np.any(durations <= 0.0):
        raise AnalysisError("step response durations must be positive")
    B, n = G.shape[0], G.shape[1]
    h = durations / n_steps
    times = durations[:, None] * np.linspace(0.0, 1.0, n_steps + 1)[None, :]
    Ch = C / h[:, None, None]
    lhs = Ch + 0.5 * G
    waves = np.full((B, n_steps + 1), np.nan)
    finals = np.full(B, np.nan)
    try:
        M = np.linalg.solve(lhs, Ch - 0.5 * G)
        v = np.linalg.solve(lhs, b[..., None])[..., 0]
        # One tiny backward-Euler step for a consistent algebraic start
        # (see linear_step_response).
        x0 = np.linalg.solve(C / (h * 1e-6)[:, None, None] + G,
                             b[..., None])[..., 0]
        x_inf = np.linalg.solve(G, b[..., None])[..., 0]
    except np.linalg.LinAlgError:
        # Rare: isolate per design with the scalar path.
        for i in range(B):
            try:
                sys_like = _ScalarAffine(G[i], C[i], b[i], h[i])
                waves[i], finals[i] = sys_like.run(n_steps, node_index)
            except AnalysisError:
                pass
        return times, waves, finals
    waves[:] = _iterate_affine_node_batch(M, v, n_steps, x0, node_index)
    finals[:] = x_inf[:, node_index]
    return times, waves, finals


class _ScalarAffine:
    """Per-design fallback of :func:`step_response_node_batch`."""

    def __init__(self, G, C, b, h):
        try:
            lhs = C / h + 0.5 * G
            self.M = np.linalg.solve(lhs, C / h - 0.5 * G)
            self.v = np.linalg.solve(lhs, b)
            self.x0 = np.linalg.solve(C / (h * 1e-6) + G, b)
            self.x_inf = np.linalg.solve(G, b)
        except np.linalg.LinAlgError:
            raise AnalysisError("step response iteration matrix singular")

    def run(self, n_steps, node_index):
        states = _iterate_affine(self.M, self.v, n_steps, x0=self.x0)
        return states[:, node_index], float(self.x_inf[node_index])


def _iterate_affine_node_batch(M: np.ndarray, v: np.ndarray, n_steps: int,
                               x0: np.ndarray, node: int) -> np.ndarray:
    """Stacked closed-form iterates of ``x_{k+1} = M x_k + v``, projected
    onto one unknown.

    One batched eigendecomposition replaces B × n_steps back-substitutions;
    only the requested node's waveform is materialised over time (the full
    ``(B, T, n)`` state tensor is never built — the validation compares
    the final *full* state against one explicit iterate).  Designs failing
    validation fall back to the plain iteration individually.
    """
    B, n = v.shape
    waves = np.empty((B, n_steps + 1))
    good = np.zeros(B, dtype=bool)
    try:
        x_star = np.linalg.solve(np.eye(n)[None] - M, v[..., None])[..., 0]
        w, V = np.linalg.eig(M)
        c = np.linalg.solve(V, (x0 - x_star).astype(complex)[..., None])[..., 0]
        with np.errstate(over="ignore", invalid="ignore"):
            wk = np.empty((B, n_steps + 1, n), dtype=complex)
            wk[:, 0] = 1.0
            np.cumprod(np.broadcast_to(w[:, None, :], (B, n_steps, n)),
                       axis=1, out=wk[:, 1:])
            cand = x_star[:, None, node] + np.real(
                np.einsum("btj,bj->bt", wk, c * V[:, node, :]))
            # Validate the decomposition with the last two *full* states.
            last2 = x_star[:, None, :] + np.real(
                (wk[:, -2:, :] * c[:, None, :]) @ np.swapaxes(V, 1, 2))
        x1 = (M @ last2[:, 0, :, None])[..., 0] + v
        scale = np.abs(last2[:, 1]).max(axis=1) + 1e-12
        close = (np.abs(last2[:, 1] - x1).max(axis=1)
                 <= 1e-6 * np.abs(x1).max(axis=1) + 1e-9 * scale)
        good = (np.isfinite(cand).all(axis=1)
                & np.isfinite(last2).all(axis=(1, 2)) & close)
        waves[good] = cand[good]
    except np.linalg.LinAlgError:
        pass
    for i in np.nonzero(~good)[0]:
        waves[i] = _iterate_affine(M[i], v[i], n_steps, x0=x0[i])[:, node]
    return waves


def _iterate_affine(M: np.ndarray, v: np.ndarray, n_steps: int,
                    x0: np.ndarray | None = None) -> np.ndarray:
    """All iterates of ``x_{k+1} = M x_k + v`` from ``x_0``.

    Computed in closed form through the eigendecomposition of ``M``:
    with fixed point ``x* = (I-M)^-1 v``,
    ``x_k = x* + V diag(w^k) V^-1 (x_0 - x*)`` — one small eigensolve
    instead of ``n_steps`` back-substitutions, a ~10x speed-up on the
    sizing hot path.  Falls back to the plain iteration when ``M`` is
    defective, badly conditioned, or ``I - M`` is singular.
    """
    size = len(v)
    if x0 is None:
        x0 = np.zeros(size)
    try:
        x_star = np.linalg.solve(np.eye(size) - M, v)
        w, V = np.linalg.eig(M)
        c = np.linalg.solve(V, (x0 - x_star).astype(complex))
        # w^k for k = 0..n via a cumulative product: one C-loop pass
        # instead of n_steps complex pow() evaluations.
        with np.errstate(over="ignore", invalid="ignore"):
            wk = np.empty((n_steps + 1, size), dtype=complex)
            wk[0] = 1.0
            np.cumprod(np.broadcast_to(w, (n_steps, size)), axis=0,
                       out=wk[1:])
        states = x_star[None, :] + np.real(wk * c[None, :] @ V.T)
        if np.all(np.isfinite(states)):
            # Validate the decomposition against one explicit iterate.
            x1 = M @ states[-2] + v if n_steps >= 1 else x0
            scale = float(np.max(np.abs(states[-1]))) + 1e-12
            if np.allclose(states[-1], x1, rtol=1e-6, atol=1e-9 * scale):
                return states
    except np.linalg.LinAlgError:
        pass
    states = np.empty((n_steps + 1, size))
    x = x0.copy()
    states[0] = x
    for i in range(1, n_steps + 1):
        x = M @ x + v
        states[i] = x
    return states
