"""DC operating-point solver.

Newton-Raphson with per-iteration voltage damping, plus the two classic
SPICE fallbacks when plain Newton diverges:

* **gmin stepping** — solve with a large conductance to ground on every
  node, then relax it geometrically towards zero, warm-starting each stage;
* **source stepping** — ramp all independent sources from 0 to 100 %.

The result object, :class:`OperatingPoint`, carries node voltages, branch
currents and the linearised :class:`~repro.circuits.mosfet.MosfetState` of
every transistor, which the AC/noise/transient analyses consume.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.elements import VoltageSource
from repro.circuits.mosfet import MosfetState
from repro.errors import ConvergenceError
from repro.sim.system import MnaSystem

try:  # Low-overhead LAPACK handles (the Newton step solve is called ~2-4x
    # per evaluation; numpy's wrapper costs as much as the 15x15
    # factorisation).  getrf/getrs keep the LU factors around so the next
    # warm solve can take a chord (stale-Jacobian) first step.
    from scipy.linalg import get_lapack_funcs
    _DGETRF, _DGETRS = get_lapack_funcs(
        ("getrf", "getrs"), (np.empty((1, 1)), np.empty(1)))
except ImportError:  # pragma: no cover - scipy is present in the toolchain
    _DGETRF = _DGETRS = None


def _lu_factor(A):
    """LU-factor ``A`` (overwritten); None when singular.

    Accepts a dense array (LAPACK getrf), a scipy CSC matrix from the
    sparse engine (:func:`scipy.sparse.linalg.splu`), or a
    :class:`~repro.sim.krylov.KrylovOperator` from the iterative engine
    (duck-typed via its ``krylov_factor`` attribute); the Newton driver
    never needs to know which backend assembled its Jacobian.
    """
    krylov = getattr(A, "krylov_factor", None)
    if krylov is not None:             # iterative engine: ILU + GMRES
        factor = krylov()
        return ("krylov", factor) if factor is not None else None
    if not isinstance(A, np.ndarray):  # sparse engine: CSC + SuperLU
        try:
            from scipy.sparse.linalg import splu
            return ("sparse", splu(A))
        except RuntimeError:
            return None
    if _DGETRF is not None:
        lu, piv, info = _DGETRF(A, overwrite_a=True)
        return (lu, piv) if info == 0 else None
    try:  # numpy fallback: keep the dense inverse as the "factorisation".
        return (np.linalg.inv(A),)
    except np.linalg.LinAlgError:
        return None


def _lu_solve(lu, b: np.ndarray) -> np.ndarray:
    """Solve with factors from :func:`_lu_factor`."""
    if isinstance(lu[0], str):     # ("sparse", SuperLU)/("krylov", factor)
        return lu[1].solve(b)
    if len(lu) == 2:
        x, _ = _DGETRS(lu[0], lu[1], b)
        return x
    return lu[0] @ b


@dataclasses.dataclass
class OperatingPoint:
    """Solved DC state of a circuit.

    Device states are evaluated once, vectorised over all MOSFETs
    (:meth:`MnaSystem.mosfet_state_arrays`); the per-device
    :class:`MosfetState` objects are materialised lazily since many
    measurement routines only consume the stacked arrays.
    """

    system: MnaSystem
    x: np.ndarray
    iterations: int
    residual_norm: float

    def __post_init__(self):
        # The system may be restamped to another sizing later (StampPlan
        # reuses one MnaSystem), so snapshot its device constants now;
        # DeviceArrays is replaced — never mutated — on restamp, which
        # makes the reference a valid lazy-evaluation anchor.
        self._dev = self.system.device_arrays
        self._state_arrays: dict[str, np.ndarray] | None = None
        self._mosfet_states: dict[str, MosfetState] | None = None

    @property
    def state_arrays(self) -> dict[str, np.ndarray]:
        """All device-state fields as stacked arrays (lazily evaluated)."""
        if self._state_arrays is None:
            self._state_arrays = self.system.state_arrays_for(
                self._dev, self.x)
        return self._state_arrays

    def _states(self) -> dict[str, MosfetState]:
        if self._mosfet_states is None:
            self._mosfet_states = self.system.states_from_arrays(
                self.state_arrays)
        return self._mosfet_states

    @property
    def temperature(self) -> float:
        return self.system.temperature

    def voltage(self, node: str) -> float:
        """DC voltage of ``node`` (ground returns 0)."""
        i = self.system.node_index[node]
        return 0.0 if i < 0 else float(self.x[i])

    def branch_current(self, element_name: str) -> float:
        """Current through a voltage-defined element (V source, VCVS, L)."""
        return float(self.x[self.system.branch_index[element_name]])

    def mosfet_state(self, name: str) -> MosfetState:
        """Small-signal state of the named MOSFET at this operating point."""
        return self._states()[name]

    @property
    def mosfet_states(self) -> dict[str, MosfetState]:
        return dict(self._states())

    def supply_current(self, source_name: str | None = None) -> float:
        """Magnitude of the DC current delivered by ``source_name`` (or by
        the first voltage source in the netlist when omitted).  This is the
        paper's "bias current" (power proxy) measurement."""
        if source_name is None:
            sources = self.system.netlist.elements_of(VoltageSource)
            if not sources:
                raise ConvergenceError("no voltage source to measure supply current")
            source_name = sources[0].name
        return abs(self.branch_current(source_name))

    def saturation_margins(self) -> dict[str, float]:
        """Per-MOSFET ``vds - vov`` margin [V]; positive means saturated."""
        return {name: st.vds - st.vov_eff
                for name, st in self._states().items()}


#: Newton-step size [V] below which an iterate counts as *stagnated*:
#: quadratic convergence puts its error at ~step^2, i.e. the machine
#: floor, so further polishing cannot move the endpoint.
_POLISH_STAG = 1e-9

#: Extra full Newton iterations taken after the ``itol`` residual gate
#: passes (see :func:`_newton`).  One step from the ``vtol`` trust
#: region (error <= ~1e-6 V) lands at ~1e-12 V.
_POLISH_ITERS = 1


def _newton(system: MnaSystem, x0: np.ndarray, gmin: float, source_scale: float,
            max_iter: int, vtol: float, itol: float,
            damping: float) -> tuple[np.ndarray, int, float, bool]:
    """Damped Newton iteration; returns (x, iterations, |F|, converged).

    Convergence is decided by the KCL residual (``|F| < itol``); ``vtol``
    is the Newton-step size below which the residual test is worth
    running.  With quadratic convergence a small step means the iterate is
    already far more accurate than the step itself, so testing early (at
    millivolt-scale steps) routinely saves a whole assemble+solve
    iteration per warm evaluation without weakening the ``itol`` quality
    gate.

    Converged iterates are *polished* with up to :data:`_POLISH_ITERS`
    extra Newton steps (skipped once the step is below
    :data:`_POLISH_STAG`).  Polish pins the endpoint to the root at
    machine precision, which makes the solved operating point a function
    of the circuit alone — two solves from different seeds (canonical,
    trajectory or a :mod:`repro.sim.store` warm start) return the same
    specs to <= 1e-9, the store's cold-equivalence contract.  Polish can
    only tighten an already-converged iterate; it never un-converges one.
    """
    x = x0.copy()
    polish = -1          # -1: still converging; >= 0: polish steps left
    fnorm = np.inf
    for iteration in range(1, max_iter + 1):
        A, rhs = system.newton_matrices(x, gmin=gmin, source_scale=source_scale)
        lu = _lu_factor(A)
        if lu is None:
            if polish >= 0:
                return x, iteration, fnorm, True
            return x, iteration, np.inf, False
        x_new = _lu_solve(lu, rhs)
        dx = np.subtract(x_new, x, out=x_new)
        step = np.max(np.abs(dx)) if dx.size else 0.0
        if step > damping:
            dx *= damping / step
        np.add(x, dx, out=x)
        if polish >= 0:
            polish -= 1
            if polish < 0 or step < _POLISH_STAG:
                return x, iteration, fnorm, True
            continue
        if step < vtol:
            f = system.residual(x, source_scale=source_scale)
            if gmin > 0.0:
                f[:system.n_nodes] += gmin * x[:system.n_nodes]
            fnorm = float(np.max(np.abs(f))) if f.size else 0.0
            if fnorm < itol:
                if _POLISH_ITERS <= 0 or step < _POLISH_STAG:
                    return x, iteration, fnorm, True
                polish = _POLISH_ITERS
    if polish >= 0:
        return x, max_iter, fnorm, True
    f = system.residual(x, source_scale=source_scale)
    return x, max_iter, float(np.max(np.abs(f))), False


def solve_dc(system: MnaSystem, x0: np.ndarray | None = None, *,
             max_iter: int = 120, vtol: float = 1e-3, itol: float = 1e-9,
             damping: float = 0.4) -> OperatingPoint:
    """Find the DC operating point of ``system``.

    Parameters
    ----------
    x0:
        Optional initial solution vector (warm start).  Sizing trajectories
        change one grid step at a time, so warm-starting from the previous
        design's operating point typically converges in a few iterations.
    vtol:
        Newton step size [V] below which convergence is *tested*; the
        test itself is the KCL residual bound ``itol`` (1 nA), which is
        the physical solution-quality criterion.  Quadratic convergence
        means an iterate reached by a millivolt step already has a
        sub-microvolt error, so an early test saves one assemble+solve
        per warm evaluation (SPICE's vntol plays the same role).
    damping:
        Maximum per-iteration change of any unknown [V or A].

    Raises
    ------
    ConvergenceError
        If Newton, gmin stepping and source stepping all fail.
    """
    if x0 is None:
        x0 = np.zeros(system.size)
    elif x0.shape != (system.size,):
        raise ValueError(f"x0 has shape {x0.shape}, expected ({system.size},)")

    # Plain (damped) Newton from the provided starting point.
    x, iters, fnorm, ok = _newton(system, x0, 0.0, 1.0, max_iter, vtol, itol, damping)
    if ok:
        return OperatingPoint(system, x, iters, fnorm)

    # gmin stepping.
    x = x0.copy()
    total_iters = iters
    converged_chain = True
    for gmin in (1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 0.0):
        x, iters, fnorm, ok = _newton(system, x, gmin, 1.0,
                                      max_iter, vtol, itol, damping)
        total_iters += iters
        if not ok:
            converged_chain = False
            break
    if converged_chain and ok:
        return OperatingPoint(system, x, total_iters, fnorm)

    # Source stepping.
    x = np.zeros(system.size)
    for scale in (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        x, iters, fnorm, ok = _newton(system, x, 0.0, scale,
                                      max_iter, vtol, itol, damping)
        total_iters += iters
        if not ok:
            raise ConvergenceError(
                f"DC operating point of {system.netlist.title!r} did not "
                f"converge (source stepping stalled at {scale:.0%}, "
                f"|F| = {fnorm:.3e})", residual=fnorm)
    return OperatingPoint(system, x, total_iters, fnorm)
