"""Multicore batch-evaluation sharding (the production-scale axis).

The batched engine amortises Python/numpy dispatch within one process;
this module spreads stacked evaluation across *processes*.  A
:class:`ShardPool` owns N persistent workers, each holding its own
simulator replica built from a picklable factory (spawn-safe — nothing
relies on forked closures).  Work travels through
``multiprocessing.shared_memory`` blocks: the parent writes the stacked
sizing-value array into one block, workers write their spec rows into
another, and only tiny ``("eval", bounds)`` control messages cross the
pipes — no per-call pickling of the stacked arrays.

The knob is the ``REPRO_SHARDS`` environment variable (default 1 =
single-process, no workers are ever spawned).  ``CircuitSimulator``
consults it inside ``evaluate_batch``, so ``VectorEnv`` rollouts, the
CEM/GA/random-search population loops and plain batched evaluation all
scale across cores without code changes; results are bitwise identical
to the in-process engine because every worker runs the same batched
solve from the same canonical warm seeds.  With the persistent result
store enabled (``REPRO_CACHE``, :mod:`repro.sim.store`) workers consult
the shared store before solving: exact hits replay bitwise and are
reported per row in the ``ok`` reply's provenance vector, store-warm
Newton seeds keep results spec-equivalent (≤1e-9) rather than bitwise
(same contract as the in-process store path).

Two evaluation surfaces share the plumbing:

* :meth:`ShardPool.evaluate_values` — the blocking call (one batch in,
  one spec array out), unchanged since PR 2;
* :meth:`ShardPool.submit_values` / :meth:`ShardPool.collect` — the
  non-blocking split behind the async rollout pipeline
  (:mod:`repro.rl.async_env`, knob ``REPRO_ASYNC``).  ``submit`` writes
  the batch into a shared block pair drawn from a small pool and fires
  the ``eval`` commands without waiting; ``collect`` reaps the replies.
  Several :class:`ShardTicket` batches may be in flight at once (the
  double-buffered steady state is two), queued FIFO in each worker's
  pipe, so the workers stay saturated while the parent runs policy
  inference or reward bookkeeping between ``collect`` calls.

Failure contract (the supervised pool): a worker that dies mid-batch
(OOM, native crash, SIGKILL) is detected at ``collect`` — the
supervisor respawns the worker slot, re-queues everything the dead
worker still owed, and re-runs the lost shard.  Because every worker
computes from the same canonical warm seeds, the re-run is bitwise
identical to what the dead worker would have produced, so callers never
see the fault in their results.  A shard that *keeps* failing is
bisected until the offending design is isolated and quarantined: its
spec row is charged the simulator's pessimistic
``failure_measurements()`` (the same penalty a non-convergent design
pays) and the rest of the batch completes normally.  Per-attempt
deadlines (``REPRO_TIMEOUT``) turn hangs into retryable timeouts; retry
counts and backoff come from ``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF``
(:class:`~repro.sim.faults.SupervisorConfig`).  Every supervision event
is recorded on the ticket's :class:`~repro.sim.faults.BatchReport`.
Only unrecoverable infrastructure failures (a worker slot that cannot
be respawned, protocol corruption) still tear the pool down — and
tearing down a pool with tickets in flight raises
:class:`~repro.errors.TicketAbandonedError` naming the abandoned
tickets instead of dropping them silently.

Deterministic chaos testing rides the same wire: the ``REPRO_FAULTS``
profile (:mod:`repro.sim.faults`) tells a specific worker to kill
itself, hang, delay or raise on a specific eval request, so every
recovery path above is pinned by ordinary unit tests.

:class:`WorkerGroup` is the generic pipe/process plumbing, shared with
:class:`repro.rl.parallel.ParallelVectorEnv`; it owns per-slot
:meth:`WorkerGroup.respawn` and an always-clean idempotent
:meth:`WorkerGroup.close`.

Workers need not be local: with ``addresses`` the pool supervises
socket-backed workers on other hosts through
:class:`repro.sim.remote.RemoteWorkerGroup`, which duck-types the
worker group (a dropped connection is a dead worker, a reconnect is a
respawn) so every supervision path above applies to the distributed
transport unchanged.  The ``REPRO_WORKERS`` knob selects it (see
:mod:`repro.sim.remote`).
"""

from __future__ import annotations

import atexit
import collections
import itertools
import math
import multiprocessing as mp
import os
import time
import weakref
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from repro.errors import (ConnectionDropFault, TicketAbandonedError,
                          TrainingError)
from repro.sim.faults import (FAULTS_ENV, BatchReport, FaultInjector,
                              FaultRecord, SupervisorConfig, active_profile,
                              worker_directives)

#: Environment variable selecting the worker count (1 = in-process).
SHARDS_ENV = "REPRO_SHARDS"

#: Seconds a (re)spawned worker gets to report ready before the pool
#: declares the slot unrecoverable (generous: spawn-method workers
#: re-import the package from scratch).
_HANDSHAKE_TIMEOUT = 120.0


def shard_count(default: int = 1) -> int:
    """Worker count requested via ``REPRO_SHARDS`` (>= 1)."""
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        return max(int(raw), 1)
    except ValueError:
        return max(default, 1)


def resolve_context(name: str | None = None) -> str:
    """Pick a multiprocessing start method.

    ``fork`` where the platform offers it (cheapest, tolerates closure
    factories), ``spawn`` otherwise — and any explicit ``fork`` request is
    downgraded to ``spawn`` on fork-less platforms instead of failing.
    """
    available = mp.get_all_start_methods()
    if name:
        if name == "fork" and "fork" not in available:
            return "spawn"
        return name
    return "fork" if "fork" in available else "spawn"


class WorkerGroup:
    """Daemon worker processes, one pipe each, with orderly shutdown.

    The shared plumbing behind :class:`ShardPool` and
    :class:`repro.rl.parallel.ParallelVectorEnv`: workers receive
    ``(pipe_end, *args)`` and speak a ``(command, payload)`` protocol in
    which ``("close", None)`` is answered once and ends the worker.
    ``args_list`` must be picklable under the resolved start method.

    The group keeps its spawn recipe, so a supervisor can
    :meth:`respawn` a dead slot in place; :meth:`close` is idempotent
    and never raises on already-dead children (every per-worker step is
    individually guarded, with a terminate/kill escalation for stuck or
    hung workers).
    """

    def __init__(self, target, args_list, context: str | None = None):
        if not args_list:
            raise TrainingError("WorkerGroup needs at least one worker")
        self._target = target
        self._args_list = list(args_list)
        self._ctx = mp.get_context(resolve_context(context))
        self.remotes = []
        self.processes = []
        for args in self._args_list:
            remote, process = self._spawn(args)
            self.remotes.append(remote)
            self.processes.append(process)
        self.closed = False

    def _spawn(self, args):
        """Start one worker process; returns its (remote, process)."""
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(target=self._target,
                                    args=(child, *args), daemon=True)
        process.start()
        child.close()
        return parent, process

    def __len__(self) -> int:
        return len(self.remotes)

    def respawn(self, index: int, args=None):
        """Replace worker ``index`` with a fresh process (same recipe).

        The old process is reaped (terminate, then kill if stuck) and
        its pipe closed — any replies it buffered die with the pipe, so
        a respawned slot can never deliver stale acknowledgements.
        ``args`` optionally replaces the slot's spawn arguments (the
        shard supervisor uses this to strip one-shot fault directives
        from replacement workers).  Returns the new parent pipe end.
        """
        if self.closed:
            raise TrainingError("cannot respawn a worker in a closed group")
        try:
            self.remotes[index].close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._reap(self.processes[index])
        if args is not None:
            self._args_list[index] = args
        remote, process = self._spawn(self._args_list[index])
        self.remotes[index] = remote
        self.processes[index] = process
        return remote

    @staticmethod
    def _reap(process) -> None:
        """Join a worker process, escalating terminate -> kill."""
        process.join(timeout=5.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stuck worker guard
            process.kill()
            process.join(timeout=2.0)

    def close(self) -> None:
        """Shut every worker down and reap it (idempotent, never raises).

        Every per-worker step is guarded individually: a child that
        already died (so its pipe raises on send), never answers the
        close handshake (hung in a solve), or ignores SIGTERM cannot
        prevent the remaining workers from being torn down cleanly.
        """
        if self.closed:
            return
        self.closed = True
        for remote in self.remotes:
            try:
                remote.send(("close", None))
            except (BrokenPipeError, OSError):
                continue
        for remote in self.remotes:
            try:
                if remote.poll(1.0):   # hung workers never answer
                    remote.recv()
            except (EOFError, OSError):
                pass
            try:
                remote.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in self.processes:
            self._reap(process)


def _attach(cache: dict, name: str) -> shared_memory.SharedMemory:
    """Worker-side shared-memory attachment, cached by block name.

    The parent owns the block lifecycle (create/unlink); workers only
    attach and close.  Worker-side attachment must not reach any resource
    tracker: depending on spawn order the worker either shares the
    parent's tracker (whose registry the parent's ``unlink`` retires
    exactly once) or runs its own (which would mistake the parent's live
    block for a leak at worker exit) — so registration is suppressed for
    the duration of the attach (Python < 3.13 lacks ``track=False``)."""
    shm = cache.get(name)
    if shm is None:
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        cache[name] = shm
    return shm


#: Worker-side attachment-cache bound: the double-buffered steady state
#: keeps two block pairs live, regrowth retires a pair, so eight names
#: comfortably cover every in-flight pair plus the recently retired ones.
_ATTACH_CACHE_BLOCKS = 8


def _attach_pair(cache: dict, in_name: str, out_name: str):
    """Attach the request's block pair, bounding the attachment cache.

    The parent cycles work through a small pool of block pairs (several
    may be in flight at once under the async pipeline), so a name absent
    from the current request is not necessarily stale.  Eviction
    therefore only trims the cache once it outgrows
    :data:`_ATTACH_CACHE_BLOCKS`, and never touches the current pair:
    a closed block's ``.buf`` is gone, and ``np.ndarray`` over it would
    silently read unshared memory.  Evicting a still-live pair is safe —
    its next request simply re-attaches it."""
    shm_in, shm_out = _attach(cache, in_name), _attach(cache, out_name)
    if len(cache) > _ATTACH_CACHE_BLOCKS:
        for name in [n for n in cache if n not in (in_name, out_name)]:
            cache.pop(name).close()
    return shm_in, shm_out


def _shard_worker(remote, worker_index, factory, param_names, spec_names,
                  directives=()) -> None:
    """Worker loop: one simulator replica, evaluates value-array shards.

    Each ``eval`` request is tagged with a parent-issued ``req_id`` that
    is echoed in the ``("ok", (req_id, provenance))`` /
    ``("error", (req_id, text))`` reply, so the supervisor can
    sanity-check reply/job pairing across respawns; the provenance list
    marks rows the worker replayed from the persistent store or
    warm-started from it.  Fault injection (``directives``, parsed from the parent's
    ``REPRO_FAULTS`` profile) runs through a
    :class:`~repro.sim.faults.FaultInjector` before each solve; the
    worker's own environment copy of the profile is dropped so nested
    evaluation never double-injects.
    """
    os.environ[SHARDS_ENV] = "1"    # no nested sharding in workers
    os.environ.pop("REPRO_WORKERS", None)   # no nested remote evaluation
    os.environ.pop(FAULTS_ENV, None)   # injection comes via directives
    simulator = factory()
    injector = FaultInjector(tuple(directives))
    remote.send(("ready", tuple(simulator.spec_space.names)))
    attachments: dict[str, shared_memory.SharedMemory] = {}
    P, S = len(param_names), len(spec_names)
    try:
        while True:
            cmd, payload = remote.recv()
            if cmd == "eval":
                req_id, in_name, out_name, lo, hi, B = payload
                try:
                    shm_in, shm_out = _attach_pair(attachments, in_name,
                                                   out_name)
                    vals = np.ndarray((B, P), dtype=np.float64,
                                      buffer=shm_in.buf)
                    out = np.ndarray((B, S), dtype=np.float64,
                                     buffer=shm_out.buf)
                    delay = injector.on_eval(vals[lo:hi])
                    values_list = [
                        {name: float(v) for name, v in zip(param_names, row)}
                        for row in vals[lo:hi]]
                    # The raw engine, not the recovering wrapper: faults
                    # escape to the parent supervisor, which owns retry,
                    # bisection and quarantine policy.  The store-aware
                    # entry replays exact persistent-store hits (rows
                    # another process recorded since the parent's plan
                    # ran) and reports per-row provenance in the reply.
                    specs, prov = simulator._worker_batch(values_list)
                    for r, spec in zip(range(lo, hi), specs):
                        out[r] = [spec[name] for name in spec_names]
                    if delay > 0:
                        time.sleep(delay)
                    remote.send(("ok", (req_id, prov)))
                except ConnectionDropFault:
                    # Sever the transport abruptly (no error reply): the
                    # parent must see EOF and walk its worker-death
                    # path, exactly as with a remote connection drop.
                    break
                except Exception as exc:  # surface, don't kill the pool
                    remote.send(("error",
                                 (req_id, f"{type(exc).__name__}: {exc}")))
            elif cmd == "close":
                remote.send(None)
                break
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        for shm in attachments.values():
            shm.close()
        remote.close()


class _BlockPair:
    """One shared-memory (values-in, specs-out) block pair.

    Pairs are pooled by :class:`ShardPool`: a ticket borrows a pair for
    the submit-to-collect round trip and returns it to the free list, so
    the async pipeline's two in-flight batches never alias each other's
    memory."""

    def __init__(self, n_params: int, n_specs: int, rows: int):
        self.cap_rows = rows
        self.shm_in = shared_memory.SharedMemory(
            create=True, size=rows * n_params * 8)
        self.shm_out = shared_memory.SharedMemory(
            create=True, size=rows * n_specs * 8)

    def release(self) -> None:
        """Close and unlink both blocks (idempotent per block)."""
        for shm in (self.shm_in, self.shm_out):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class _ShardJob:
    """One dispatched contiguous row range ``[lo, hi)`` of a ticket.

    Jobs are the supervisor's unit of retry: a worker death, timeout or
    solve error fails exactly one job, which is then re-dispatched (with
    backoff) until its attempt budget runs out and it is bisected into
    two child jobs — down to single-row jobs, which quarantine instead.
    ``attempts`` counts failures so far; ``deadline`` is the wall-clock
    limit of the *running* attempt (infinite while the job waits behind
    others in the worker's pipe — it is re-armed on promotion to the
    queue head, so queueing time is never charged against the solve).
    ``not_before`` is the retry-backoff gate: a failed job parks on the
    pool's deferred list until this wall-clock time instead of blocking
    the service loop, so one flaky shard's backoff never delays replies
    from healthy workers.
    """

    __slots__ = ("ticket", "lo", "hi", "worker", "req_id", "attempts",
                 "deadline", "not_before")

    def __init__(self, ticket: "ShardTicket", lo: int, hi: int):
        self.ticket = ticket
        self.lo = lo
        self.hi = hi
        self.worker = -1
        self.req_id = -1
        self.attempts = 0
        self.deadline = math.inf
        self.not_before = 0.0


class ShardTicket:
    """Handle for one in-flight :meth:`ShardPool.submit_values` batch.

    Tickets are collected in submission order; ``report`` accumulates
    the batch's :class:`~repro.sim.faults.BatchReport` (faults, retries,
    respawns, per-row attempts/latency/quarantine) as the supervisor
    works.  A ticket whose pool was torn down before collection is
    marked ``abandoned`` and collecting it raises
    :class:`~repro.errors.TicketAbandonedError`."""

    __slots__ = ("id", "pair", "n_rows", "collected", "abandoned",
                 "unresolved", "submitted", "report")

    def __init__(self, ticket_id: int, pair: _BlockPair, n_rows: int):
        self.id = ticket_id
        self.pair = pair
        self.n_rows = n_rows
        self.collected = False
        self.abandoned = False
        self.unresolved = 0
        self.submitted = time.perf_counter()
        self.report = BatchReport(n_rows)


#: Free-list bound: the RL double buffer cycles two pairs and the
#: baselines' generation pipeline keeps up to four chunks in flight
#: (``iter_batch_specs``), so four parks every steady state without
#: per-generation allocate/unlink churn.
_FREE_PAIRS = 4


class ShardPool:
    """Persistent, supervised multicore shard pool over one simulator
    family.

    Parameters
    ----------
    factory:
        Picklable zero-argument callable building the worker's simulator
        (see ``CircuitSimulator.shard_factory``).
    n_shards:
        Worker count.
    param_names / spec_names:
        Wire format: sizing values and spec results travel as float64
        arrays in these column orders.
    context:
        Multiprocessing start method (None resolves portably).
    supervisor:
        Retry/timeout policy; defaults to
        :meth:`~repro.sim.faults.SupervisorConfig.from_env` (knobs
        ``REPRO_TIMEOUT`` / ``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF``).
    failure_row:
        Spec row (in ``spec_names`` order) written for quarantined
        designs — the simulator's pessimistic ``failure_measurements``.
        None (raw pools) quarantines to NaN rows.
    addresses:
        Remote worker addresses (``(host, port)`` tuples).  When given,
        the pool supervises socket-backed workers
        (:class:`~repro.sim.remote.RemoteWorkerGroup`) instead of
        spawning local processes; ``n_shards`` is ignored (one slot per
        address) and ``hello`` is required.
    hello:
        Handshake payload for remote workers (the simulator's
        ``_remote_hello()``: schema version, store-scope digest,
        parameter/spec names).  A worker hosting an incompatible
        simulator rejects it and construction raises.
    """

    def __init__(self, factory, n_shards: int, param_names, spec_names,
                 context: str | None = None,
                 supervisor: SupervisorConfig | None = None,
                 failure_row=None, addresses=None, hello=None):
        if addresses:
            addresses = tuple(tuple(address) for address in addresses)
            n_shards = len(addresses)
            if hello is None:
                raise TrainingError(
                    "a remote ShardPool needs the simulator's handshake "
                    "hello (see CircuitSimulator._remote_hello)")
        if n_shards < 1:
            raise TrainingError("ShardPool needs at least one shard")
        self.param_names = tuple(param_names)
        self.spec_names = tuple(spec_names)
        self.addresses = addresses or None
        self._supervisor = supervisor or SupervisorConfig.from_env()
        self._profile = active_profile()
        self._factory = factory
        self._failure_row = (None if failure_row is None else
                             np.asarray(failure_row, dtype=np.float64))
        if addresses:
            from repro.sim.remote import RemoteWorkerGroup
            self._group = RemoteWorkerGroup(
                addresses, self.param_names, self.spec_names, hello,
                self._profile)
        else:
            self._group = WorkerGroup(
                _shard_worker,
                [(w, factory, self.param_names, self.spec_names,
                  worker_directives(self._profile, w))
                 for w in range(n_shards)],
                context=context)
        for remote in self._group.remotes:
            try:
                if not remote.poll(_HANDSHAKE_TIMEOUT):
                    raise TrainingError(
                        "shard worker did not report ready in time")
                cmd, names = remote.recv()
            except (EOFError, OSError):
                self._group.close()
                raise TrainingError(
                    "shard worker died during the handshake") from None
            except TrainingError:
                self._group.close()
                raise
            if cmd != "ready" or names != self.spec_names:
                self._group.close()
                raise TrainingError(
                    f"shard worker handshake failed: {cmd} {names!r}")
        self._free: list[_BlockPair] = []
        self._inflight: collections.deque[ShardTicket] = collections.deque()
        #: Per-worker mirror of the jobs queued in its pipe, FIFO.
        self._pending: list[collections.deque[_ShardJob]] = [
            collections.deque() for _ in range(n_shards)]
        #: Jobs parked for retry backoff (dispatched once their
        #: ``not_before`` passes) — the non-blocking replacement for
        #: sleeping in the service loop.
        self._deferred: list[_ShardJob] = []
        self._req_ids = itertools.count(1)
        self._ticket_ids = itertools.count(1)
        self.respawns = 0
        self.retries = 0
        # Exit hook through a weak reference: the atexit registry must not
        # keep abandoned pools (and their workers) alive until exit —
        # dropped pools get reaped by __del__/GC, live ones at shutdown.
        atexit.register(ShardPool._atexit_close, weakref.ref(self))

    @staticmethod
    def _atexit_close(pool_ref) -> None:
        """Interpreter-exit cleanup through a weak reference."""
        pool = pool_ref()
        if pool is not None:
            pool.close(abandon_ok=True)

    def __len__(self) -> int:
        return len(self._group)

    @property
    def closed(self) -> bool:
        return self._group.closed

    @property
    def n_inflight(self) -> int:
        """Submitted-but-uncollected batch count (0, 1 or 2 in practice)."""
        return len(self._inflight)

    def _acquire_pair(self, rows: int) -> _BlockPair:
        """Borrow a block pair with capacity for ``rows`` (create if none)."""
        for i, pair in enumerate(self._free):
            if pair.cap_rows >= rows:
                return self._free.pop(i)
        return _BlockPair(len(self.param_names), len(self.spec_names),
                          max(rows, 64))

    def _release_pair(self, pair: _BlockPair) -> None:
        """Return a pair to the free list, retiring the smallest extras."""
        self._free.append(pair)
        self._free.sort(key=lambda p: p.cap_rows)
        while len(self._free) > _FREE_PAIRS:
            self._free.pop(0).release()

    # -- supervision core -----------------------------------------------------
    def _fatal(self, message: str):
        """Unrecoverable infrastructure failure: tear down and raise."""
        self.close(abandon_ok=True)
        raise TrainingError(message)

    def _deadline(self) -> float:
        """Wall-clock limit for an attempt starting now (inf = no limit)."""
        timeout = self._supervisor.timeout
        return time.perf_counter() + timeout if timeout > 0 else math.inf

    def _dispatch(self, worker: int, job: _ShardJob) -> None:
        """Send one job to ``worker`` and mirror it in the pending queue.

        A send that hits a dead pipe triggers a respawn of the slot and
        one resend; a second failure is unrecoverable.
        """
        job.worker = worker
        job.req_id = next(self._req_ids)
        pair = job.ticket.pair
        message = ("eval", (job.req_id, pair.shm_in.name, pair.shm_out.name,
                            int(job.lo), int(job.hi), job.ticket.n_rows))
        try:
            self._group.remotes[worker].send(message)
        except (BrokenPipeError, OSError):
            job.ticket.report.faults.append(FaultRecord(
                "worker-death", worker, tuple(range(job.lo, job.hi)),
                job.attempts, "shard worker died before accepting work"))
            self._respawn_worker(worker, extra_ticket=job.ticket)
            try:
                self._group.remotes[worker].send(message)
            except (BrokenPipeError, OSError):
                self._fatal("respawned shard worker died before accepting "
                            "work; pool closed")
        queue = self._pending[worker]
        job.deadline = self._deadline() if not queue else math.inf
        queue.append(job)

    def _respawn_worker(self, worker: int, extra_ticket=None) -> None:
        """Replace a dead/hung worker slot and re-queue what it owed.

        The replacement inherits only the content (poison) fault
        directives — one-shot event directives died with the original
        incarnation, so recovery cannot re-trigger the fault forever.
        Jobs the dead worker had queued are re-sent in order (same
        req_ids: the old pipe died with any stale replies).
        ``extra_ticket`` is charged the respawn when its failed job was
        already popped off the queue (death/timeout handling).
        """
        remote = self._group.respawn(
            worker, args=(worker, self._factory, self.param_names,
                          self.spec_names,
                          worker_directives(self._profile, worker,
                                            respawned=True)))
        if not remote.poll(_HANDSHAKE_TIMEOUT):
            self._fatal("respawned shard worker did not report ready")
        try:
            cmd, names = remote.recv()
        except (EOFError, OSError):
            self._fatal("respawned shard worker died during handshake")
        if cmd != "ready" or names != self.spec_names:
            self._fatal(f"respawned shard worker handshake failed: {cmd}")
        self.respawns += 1
        affected = {job.ticket for job in self._pending[worker]}
        if extra_ticket is not None:
            affected.add(extra_ticket)
        for ticket in affected:
            ticket.report.respawns += 1
        for job in self._pending[worker]:
            pair = job.ticket.pair
            remote.send(("eval", (job.req_id, pair.shm_in.name,
                                  pair.shm_out.name, int(job.lo),
                                  int(job.hi), job.ticket.n_rows)))
        self._promote(worker)

    def _promote(self, worker: int) -> None:
        """(Re-)arm the deadline of the worker's new queue head."""
        queue = self._pending[worker]
        if queue:
            queue[0].deadline = self._deadline()

    def _resolve(self, job: _ShardJob) -> None:
        """Mark one job done and record its rows' attempts/latency."""
        ticket = job.ticket
        ticket.unresolved -= 1
        now = time.perf_counter()
        ticket.report.latency[job.lo:job.hi] = now - ticket.submitted
        ticket.report.attempts[job.lo:job.hi] = job.attempts + 1

    def _quarantine(self, job: _ShardJob) -> None:
        """Charge a single-row job the failure row and resolve it."""
        ticket = job.ticket
        out = np.ndarray((ticket.n_rows, len(self.spec_names)),
                         dtype=np.float64, buffer=ticket.pair.shm_out.buf)
        row = (self._failure_row if self._failure_row is not None
               else np.full(len(self.spec_names), np.nan))
        out[job.lo] = row
        ticket.report.quarantined[job.lo] = True
        ticket.report.faults.append(FaultRecord(
            "quarantine", job.worker, (job.lo,), job.attempts,
            "design quarantined after repeated faults"))
        self._resolve(job)

    def _retry_or_split(self, job: _ShardJob) -> None:
        """Retry a failed job, bisect it, or quarantine its last row.

        Retry backoff never sleeps here: the job is parked on the
        deferred list with a ``not_before`` timestamp and re-dispatched
        by the service loop once it passes — replies from healthy
        workers keep being read (and their armed deadlines keep being
        honoured) while a flaky shard backs off."""
        ticket = job.ticket
        if job.attempts <= self._supervisor.retries:
            ticket.report.retries += 1
            self.retries += 1
            delay = self._supervisor.backoff_delay(job.attempts)
            if delay > 0:
                job.not_before = time.perf_counter() + delay
                self._deferred.append(job)
            else:
                self._dispatch(job.worker, job)
        elif job.hi - job.lo > 1:
            mid = (job.lo + job.hi) // 2
            ticket.unresolved += 1   # one job becomes two
            for lo, hi in ((job.lo, mid), (mid, job.hi)):
                self._dispatch(job.worker, _ShardJob(ticket, lo, hi))
        else:
            self._quarantine(job)

    def _handle_death(self, worker: int, kind: str, detail: str) -> None:
        """A worker died (or was killed on deadline): respawn and retry."""
        queue = self._pending[worker]
        failed = queue.popleft() if queue else None
        if failed is not None:
            failed.attempts += 1
            failed.ticket.report.faults.append(FaultRecord(
                kind, worker, tuple(range(failed.lo, failed.hi)),
                failed.attempts, detail))
        self._respawn_worker(
            worker,
            extra_ticket=failed.ticket if failed is not None else None)
        if failed is not None:   # the rest of the queue was re-sent above
            self._retry_or_split(failed)

    def _handle_solve_error(self, job: _ShardJob, detail: str) -> None:
        """A worker reported an exception for one job: retry/bisect it."""
        job.attempts += 1
        job.ticket.report.faults.append(FaultRecord(
            "solve-error", job.worker, tuple(range(job.lo, job.hi)),
            job.attempts, detail))
        self._retry_or_split(job)

    def _handle_reply(self, worker: int) -> None:
        """Process whatever the worker's pipe holds: reply or EOF."""
        remote = self._group.remotes[worker]
        try:
            cmd, payload = remote.recv()
        except (EOFError, OSError):
            self._handle_death(worker, "worker-death",
                               "shard worker died mid-evaluation")
            return
        queue = self._pending[worker]
        if not queue:
            self._fatal(f"unexpected reply {cmd!r} from idle shard worker "
                        f"{worker}; pool closed")
        job = queue.popleft()
        self._promote(worker)
        if cmd == "ok":
            # Reply carries (req_id, per-row provenance) — a bare req_id
            # is tolerated for protocol compatibility (no provenance).
            req_id, prov = (payload if isinstance(payload, tuple)
                            else (payload, None))
            if req_id == job.req_id:
                if prov is not None:
                    job.ticket.report.provenance[job.lo:job.hi] = prov
                self._resolve(job)
                return
            self._fatal(f"shard worker {worker} protocol corruption "
                        f"(ok for req {req_id!r}); pool closed")
        elif cmd == "error" and payload[0] == job.req_id:
            self._handle_solve_error(job, payload[1])
        else:
            self._fatal(f"shard worker {worker} protocol corruption "
                        f"({cmd!r}); pool closed")

    def _handle_timeout(self, worker: int) -> None:
        """The worker's running attempt blew its deadline: kill + retry.

        One last zero-timeout poll first — the reply may have raced the
        deadline, in which case it is simply taken (killing a worker
        that just delivered would waste a clean result)."""
        remote = self._group.remotes[worker]
        if remote.poll(0):
            self._handle_reply(worker)
            return
        process = self._group.processes[worker]
        process.kill()
        process.join(timeout=5.0)
        self._handle_death(
            worker, "timeout",
            f"shard worker blew the {self._supervisor.timeout:.3g}s "
            f"per-attempt deadline")

    def _flush_deferred(self, now: float) -> None:
        """Dispatch every backoff-parked job whose ``not_before`` passed."""
        if not self._deferred:
            return
        due = [job for job in self._deferred if job.not_before <= now]
        for job in due:
            self._deferred.remove(job)
            self._dispatch(job.worker, job)

    def _service(self, ticket: ShardTicket) -> None:
        """One supervision step towards resolving ``ticket``.

        Waits on every worker whose queue contains any of the ticket's
        jobs and processes whatever arrives first — replies for *other*
        (earlier or later) tickets are resolved on the spot, which is
        what keeps the FIFO pipes drained when a retry re-queues one of
        this ticket's jobs behind another ticket's work.  Backoff-parked
        jobs are flushed on the way in and bound the wait, so a retry
        becomes due promptly without ever blocking the loop."""
        self._flush_deferred(time.perf_counter())
        workers = [w for w, queue in enumerate(self._pending)
                   if any(job.ticket is ticket for job in queue)]
        if not workers:
            deferred = [job for job in self._deferred
                        if job.ticket is ticket]
            if not deferred:  # pragma: no cover - invariant guard
                self._fatal("shard ticket lost its jobs; pool closed")
            # Everything this ticket still owes is parked for backoff:
            # nothing can arrive before the earliest gate, so sleep to
            # it and re-dispatch.
            wake = min(job.not_before for job in deferred)
            time.sleep(max(0.0, wake - time.perf_counter()))
            self._flush_deferred(time.perf_counter())
            return
        conns = {self._group.remotes[w]: w for w in workers}
        timeout = None
        if self._supervisor.timeout > 0:
            deadline = min(self._pending[w][0].deadline for w in workers)
            if deadline < math.inf:
                timeout = max(0.0, deadline - time.perf_counter())
        if self._deferred:
            wake = min(job.not_before for job in self._deferred)
            until_wake = max(0.0, wake - time.perf_counter())
            timeout = (until_wake if timeout is None
                       else min(timeout, until_wake))
        ready = mp_connection.wait(list(conns), timeout)
        if ready:
            for conn in ready:
                self._handle_reply(conns[conn])
            return
        now = time.perf_counter()
        self._flush_deferred(now)
        for worker in workers:
            queue = self._pending[worker]
            if queue and queue[0].deadline <= now:
                self._handle_timeout(worker)

    # -- public API -----------------------------------------------------------
    def submit_values(self, values_array: np.ndarray) -> ShardTicket:
        """Dispatch ``(B, P)`` stacked sizing values without waiting.

        Rows are split into contiguous shards, one per worker, exactly as
        :meth:`evaluate_values` splits them; the value and spec arrays
        live in a borrowed shared block pair until :meth:`collect` reaps
        the replies.  Batches queue FIFO in the worker pipes, so several
        tickets may be outstanding — collect them in submission order.
        A worker found dead at submit time is respawned transparently.
        An empty batch (``B`` = 0) short-circuits: no shared blocks are
        created (zero-size blocks are illegal) and no work is dispatched
        — its ticket collects to an empty spec array with a clean,
        well-formed report.
        """
        if self._group.closed:
            raise TrainingError("ShardPool is closed")
        values_array = np.ascontiguousarray(values_array, dtype=np.float64)
        if values_array.ndim != 2:
            raise TrainingError(
                f"submit_values needs a (B, P) array, got shape "
                f"{values_array.shape}")
        B, P = values_array.shape
        if B == 0:
            ticket = ShardTicket(next(self._ticket_ids), None, 0)
            self._inflight.append(ticket)
            return ticket
        if P != len(self.param_names):
            raise TrainingError(
                f"got {P} parameters, expected {len(self.param_names)}")
        pair = self._acquire_pair(B)
        vals = np.ndarray((B, P), dtype=np.float64, buffer=pair.shm_in.buf)
        vals[:] = values_array
        ticket = ShardTicket(next(self._ticket_ids), pair, B)
        bounds = np.linspace(0, B, len(self._group) + 1).astype(int)
        spans = [(w, int(lo), int(hi))
                 for w, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
                 if hi > lo]
        ticket.unresolved = len(spans)
        self._inflight.append(ticket)
        for worker, lo, hi in spans:
            self._dispatch(worker, _ShardJob(ticket, lo, hi))
        return ticket

    def collect(self, ticket: ShardTicket) -> np.ndarray:
        """Supervise a ticket to completion; returns its ``(B, S)`` specs.

        Tickets must be collected in submission order (worker pipes are
        FIFO, so an out-of-order collect would hand one batch another
        batch's acknowledgements).  Worker deaths, timeouts and solve
        errors encountered on the way are healed per the supervisor
        policy and recorded on ``ticket.report`` — only unrecoverable
        infrastructure failures raise.
        """
        if ticket.abandoned:
            raise TicketAbandonedError(
                f"shard ticket #{ticket.id} ({ticket.n_rows} designs) was "
                "abandoned when its pool closed")
        if ticket.collected:
            raise TrainingError("shard ticket already collected")
        if self._group.closed:
            raise TrainingError("ShardPool is closed")
        if not self._inflight or self._inflight[0] is not ticket:
            raise TrainingError(
                "shard tickets must be collected in submission order")
        while ticket.unresolved > 0:
            self._service(ticket)
        self._inflight.popleft()
        ticket.collected = True
        if ticket.pair is None:   # empty batch: nothing was dispatched
            return np.zeros((0, len(self.spec_names)), dtype=np.float64)
        out = np.ndarray((ticket.n_rows, len(self.spec_names)),
                         dtype=np.float64, buffer=ticket.pair.shm_out.buf
                         ).copy()
        self._release_pair(ticket.pair)
        return out

    def evaluate_values(self, values_array: np.ndarray) -> np.ndarray:
        """Evaluate ``(B, P)`` stacked sizing values; returns ``(B, S)``.

        The blocking convenience around :meth:`submit_values` +
        :meth:`collect`.  Requires no other batch in flight (enforced:
        the FIFO collect order would otherwise hand this batch another
        batch's acknowledgements) — callers mixing the async and
        blocking surfaces must collect their outstanding tickets first.
        """
        if self._inflight:
            names = ", ".join(f"#{t.id} ({t.n_rows} designs)"
                              for t in self._inflight)
            raise TrainingError(
                "evaluate_values requires no other batch in flight, but "
                f"these tickets are outstanding: {names}; collect them "
                "first (or use submit_values/collect)")
        return self.collect(self.submit_values(values_array))

    def close(self, abandon_ok: bool = False) -> None:
        """Shut the workers down and release every shared block.

        Teardown is always completed; afterwards, if tickets were still
        in flight, they are marked abandoned and (unless ``abandon_ok``)
        a :class:`~repro.errors.TicketAbandonedError` names them — the
        caller learns exactly which designs were dropped instead of
        inferring it from missing results.
        """
        if self._group.closed:
            return
        abandoned = [t for t in self._inflight if not t.collected]
        for ticket in abandoned:
            ticket.abandoned = True
        self._group.close()
        for ticket in self._inflight:
            if ticket.pair is not None:
                self._release_pair(ticket.pair)
        self._inflight.clear()
        for queue in self._pending:
            queue.clear()
        self._deferred.clear()
        for pair in self._free:
            pair.release()
        self._free = []
        if abandoned and not abandon_ok:
            names = ", ".join(f"#{t.id} ({t.n_rows} designs)"
                              for t in abandoned)
            raise TicketAbandonedError(
                f"ShardPool closed with tickets in flight: {names}")

    def __del__(self):  # pragma: no cover - interpreter teardown best effort
        try:
            self.close(abandon_ok=True)
        except Exception:
            pass
