"""Multicore batch-evaluation sharding (the production-scale axis).

The batched engine amortises Python/numpy dispatch within one process;
this module spreads stacked evaluation across *processes*.  A
:class:`ShardPool` owns N persistent workers, each holding its own
simulator replica built from a picklable factory (spawn-safe — nothing
relies on forked closures).  Work travels through
``multiprocessing.shared_memory`` blocks: the parent writes the stacked
sizing-value array into one block, workers write their spec rows into
another, and only tiny ``("eval", bounds)`` control messages cross the
pipes — no per-call pickling of the stacked arrays.

The knob is the ``REPRO_SHARDS`` environment variable (default 1 =
single-process, no workers are ever spawned).  ``CircuitSimulator``
consults it inside ``evaluate_batch``, so ``VectorEnv`` rollouts, the
CEM/GA/random-search population loops and plain batched evaluation all
scale across cores without code changes; results are bitwise identical
to the in-process engine because every worker runs the same batched
solve from the same canonical warm seeds.

:class:`WorkerGroup` is the generic pipe/process plumbing, shared with
:class:`repro.rl.parallel.ParallelVectorEnv`.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.errors import TrainingError

#: Environment variable selecting the worker count (1 = in-process).
SHARDS_ENV = "REPRO_SHARDS"


def shard_count(default: int = 1) -> int:
    """Worker count requested via ``REPRO_SHARDS`` (>= 1)."""
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        return max(int(raw), 1)
    except ValueError:
        return max(default, 1)


def resolve_context(name: str | None = None) -> str:
    """Pick a multiprocessing start method.

    ``fork`` where the platform offers it (cheapest, tolerates closure
    factories), ``spawn`` otherwise — and any explicit ``fork`` request is
    downgraded to ``spawn`` on fork-less platforms instead of failing.
    """
    available = mp.get_all_start_methods()
    if name:
        if name == "fork" and "fork" not in available:
            return "spawn"
        return name
    return "fork" if "fork" in available else "spawn"


class WorkerGroup:
    """Daemon worker processes, one pipe each, with orderly shutdown.

    The shared plumbing behind :class:`ShardPool` and
    :class:`repro.rl.parallel.ParallelVectorEnv`: workers receive
    ``(pipe_end, *args)`` and speak a ``(command, payload)`` protocol in
    which ``("close", None)`` is answered once and ends the worker.
    ``args_list`` must be picklable under the resolved start method.
    """

    def __init__(self, target, args_list, context: str | None = None):
        if not args_list:
            raise TrainingError("WorkerGroup needs at least one worker")
        ctx = mp.get_context(resolve_context(context))
        self.remotes = []
        self.processes = []
        for args in args_list:
            parent, child = ctx.Pipe()
            process = ctx.Process(target=target, args=(child, *args),
                                  daemon=True)
            process.start()
            child.close()
            self.remotes.append(parent)
            self.processes.append(process)
        self.closed = False

    def __len__(self) -> int:
        return len(self.remotes)

    def close(self) -> None:
        """Send ``("close", None)`` everywhere and reap (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for remote in self.remotes:
            try:
                remote.send(("close", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                continue
        for remote in self.remotes:
            try:
                remote.recv()
            except (EOFError, OSError):  # pragma: no cover
                pass
            remote.close()
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker guard
                process.terminate()


def _attach(cache: dict, name: str) -> shared_memory.SharedMemory:
    """Worker-side shared-memory attachment, cached by block name.

    The parent owns the block lifecycle (create/unlink); workers only
    attach and close.  Worker-side attachment must not reach any resource
    tracker: depending on spawn order the worker either shares the
    parent's tracker (whose registry the parent's ``unlink`` retires
    exactly once) or runs its own (which would mistake the parent's live
    block for a leak at worker exit) — so registration is suppressed for
    the duration of the attach (Python < 3.13 lacks ``track=False``)."""
    shm = cache.get(name)
    if shm is None:
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        cache[name] = shm
    return shm


def _attach_pair(cache: dict, in_name: str, out_name: str):
    """Attach the request's block pair, evicting every *other* stale block.

    The parent regrows both blocks together, so only the current pair is
    ever live; closing must happen strictly before the new attaches are
    used and must never touch them (a closed block's ``.buf`` is gone, and
    ``np.ndarray`` over it would silently read unshared memory)."""
    for name in [n for n in cache if n not in (in_name, out_name)]:
        cache.pop(name).close()
    return _attach(cache, in_name), _attach(cache, out_name)


def _shard_worker(remote, factory, param_names, spec_names) -> None:
    """Worker loop: one simulator replica, evaluates value-array shards."""
    os.environ[SHARDS_ENV] = "1"    # no nested sharding in workers
    simulator = factory()
    remote.send(("ready", tuple(simulator.spec_space.names)))
    attachments: dict[str, shared_memory.SharedMemory] = {}
    P, S = len(param_names), len(spec_names)
    try:
        while True:
            cmd, payload = remote.recv()
            if cmd == "eval":
                in_name, out_name, lo, hi, B = payload
                try:
                    shm_in, shm_out = _attach_pair(attachments, in_name,
                                                   out_name)
                    vals = np.ndarray((B, P), dtype=np.float64,
                                      buffer=shm_in.buf)
                    out = np.ndarray((B, S), dtype=np.float64,
                                     buffer=shm_out.buf)
                    values_list = [
                        {name: float(v) for name, v in zip(param_names, row)}
                        for row in vals[lo:hi]]
                    specs = simulator._fresh_batch(values_list)
                    for r, spec in zip(range(lo, hi), specs):
                        out[r] = [spec[name] for name in spec_names]
                    remote.send(("ok", None))
                except Exception as exc:  # surface, don't kill the pool
                    remote.send(("error", f"{type(exc).__name__}: {exc}"))
            elif cmd == "close":
                remote.send(None)
                break
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        for shm in attachments.values():
            shm.close()
        remote.close()


class ShardPool:
    """Persistent multicore shard pool over one simulator family.

    Parameters
    ----------
    factory:
        Picklable zero-argument callable building the worker's simulator
        (see ``CircuitSimulator.shard_factory``).
    n_shards:
        Worker count.
    param_names / spec_names:
        Wire format: sizing values and spec results travel as float64
        arrays in these column orders.
    """

    def __init__(self, factory, n_shards: int, param_names, spec_names,
                 context: str | None = None):
        if n_shards < 1:
            raise TrainingError("ShardPool needs at least one shard")
        self.param_names = tuple(param_names)
        self.spec_names = tuple(spec_names)
        self._group = WorkerGroup(
            _shard_worker,
            [(factory, self.param_names, self.spec_names)] * n_shards,
            context=context)
        for remote in self._group.remotes:
            cmd, names = remote.recv()
            if cmd != "ready" or names != self.spec_names:
                self._group.close()
                raise TrainingError(
                    f"shard worker handshake failed: {cmd} {names!r}")
        self._shm_in: shared_memory.SharedMemory | None = None
        self._shm_out: shared_memory.SharedMemory | None = None
        self._cap_rows = 0
        # Exit hook through a weak reference: the atexit registry must not
        # keep abandoned pools (and their workers) alive until exit —
        # dropped pools get reaped by __del__/GC, live ones at shutdown.
        atexit.register(ShardPool._atexit_close, weakref.ref(self))

    @staticmethod
    def _atexit_close(pool_ref) -> None:
        """Interpreter-exit cleanup through a weak reference."""
        pool = pool_ref()
        if pool is not None:
            pool.close()

    def __len__(self) -> int:
        return len(self._group)

    @property
    def closed(self) -> bool:
        return self._group.closed

    def _release_shm(self) -> None:
        for shm in (self._shm_in, self._shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._shm_in = self._shm_out = None
        self._cap_rows = 0

    def _ensure_capacity(self, rows: int) -> None:
        if rows <= self._cap_rows:
            return
        self._release_shm()
        cap = max(rows, 64)
        self._shm_in = shared_memory.SharedMemory(
            create=True, size=cap * len(self.param_names) * 8)
        self._shm_out = shared_memory.SharedMemory(
            create=True, size=cap * len(self.spec_names) * 8)
        self._cap_rows = cap

    def evaluate_values(self, values_array: np.ndarray) -> np.ndarray:
        """Evaluate ``(B, P)`` stacked sizing values; returns ``(B, S)``.

        Rows are split into contiguous shards, one per worker; the value
        and spec arrays live in shared memory for the round trip.
        """
        if self._group.closed:
            raise TrainingError("ShardPool is closed")
        values_array = np.ascontiguousarray(values_array, dtype=np.float64)
        B, P = values_array.shape
        if P != len(self.param_names):
            raise TrainingError(
                f"got {P} parameters, expected {len(self.param_names)}")
        self._ensure_capacity(B)
        vals = np.ndarray((B, P), dtype=np.float64, buffer=self._shm_in.buf)
        vals[:] = values_array
        out = np.ndarray((B, len(self.spec_names)), dtype=np.float64,
                         buffer=self._shm_out.buf)
        bounds = np.linspace(0, B, len(self._group) + 1).astype(int)
        busy = []
        for remote, lo, hi in zip(self._group.remotes, bounds, bounds[1:]):
            if hi > lo:
                remote.send(("eval", (self._shm_in.name, self._shm_out.name,
                                      int(lo), int(hi), B)))
                busy.append(remote)
        errors = []
        dead = False
        for remote in busy:
            try:
                cmd, payload = remote.recv()
            except (EOFError, OSError):
                # A worker died mid-eval (OOM, native crash): the pool is
                # mid-protocol and unrecoverable — tear it down so the
                # caller's next attempt rebuilds a fresh one.
                dead = True
                continue
            if cmd != "ok":
                errors.append(payload)
        if dead:
            self.close()
            raise TrainingError("shard worker died mid-evaluation; "
                                "pool closed")
        if errors:
            raise TrainingError(f"shard worker failed: {errors[0]}")
        return out.copy()

    def close(self) -> None:
        """Shut the workers down and release the shared blocks."""
        self._group.close()
        self._release_shm()

    def __del__(self):  # pragma: no cover - interpreter teardown best effort
        try:
            self.close()
        except Exception:
            pass
