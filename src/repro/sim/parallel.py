"""Multicore batch-evaluation sharding (the production-scale axis).

The batched engine amortises Python/numpy dispatch within one process;
this module spreads stacked evaluation across *processes*.  A
:class:`ShardPool` owns N persistent workers, each holding its own
simulator replica built from a picklable factory (spawn-safe — nothing
relies on forked closures).  Work travels through
``multiprocessing.shared_memory`` blocks: the parent writes the stacked
sizing-value array into one block, workers write their spec rows into
another, and only tiny ``("eval", bounds)`` control messages cross the
pipes — no per-call pickling of the stacked arrays.

The knob is the ``REPRO_SHARDS`` environment variable (default 1 =
single-process, no workers are ever spawned).  ``CircuitSimulator``
consults it inside ``evaluate_batch``, so ``VectorEnv`` rollouts, the
CEM/GA/random-search population loops and plain batched evaluation all
scale across cores without code changes; results are bitwise identical
to the in-process engine because every worker runs the same batched
solve from the same canonical warm seeds.

Two evaluation surfaces share the plumbing:

* :meth:`ShardPool.evaluate_values` — the blocking call (one batch in,
  one spec array out), unchanged since PR 2;
* :meth:`ShardPool.submit_values` / :meth:`ShardPool.collect` — the
  non-blocking split behind the async rollout pipeline
  (:mod:`repro.rl.async_env`, knob ``REPRO_ASYNC``).  ``submit`` writes
  the batch into a shared block pair drawn from a small pool and fires
  the ``eval`` commands without waiting; ``collect`` reaps the replies.
  Several :class:`ShardTicket` batches may be in flight at once (the
  double-buffered steady state is two), queued FIFO in each worker's
  pipe, so the workers stay saturated while the parent runs policy
  inference or reward bookkeeping between ``collect`` calls.

Failure contract: a worker that dies mid-batch (OOM, native crash) is
detected at the next send or receive — the pool tears itself down and
raises :class:`~repro.errors.TrainingError` instead of hanging; the
caller's next evaluation rebuilds a fresh pool.

:class:`WorkerGroup` is the generic pipe/process plumbing, shared with
:class:`repro.rl.parallel.ParallelVectorEnv`.
"""

from __future__ import annotations

import atexit
import collections
import multiprocessing as mp
import os
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.errors import TrainingError

#: Environment variable selecting the worker count (1 = in-process).
SHARDS_ENV = "REPRO_SHARDS"


def shard_count(default: int = 1) -> int:
    """Worker count requested via ``REPRO_SHARDS`` (>= 1)."""
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        return max(int(raw), 1)
    except ValueError:
        return max(default, 1)


def resolve_context(name: str | None = None) -> str:
    """Pick a multiprocessing start method.

    ``fork`` where the platform offers it (cheapest, tolerates closure
    factories), ``spawn`` otherwise — and any explicit ``fork`` request is
    downgraded to ``spawn`` on fork-less platforms instead of failing.
    """
    available = mp.get_all_start_methods()
    if name:
        if name == "fork" and "fork" not in available:
            return "spawn"
        return name
    return "fork" if "fork" in available else "spawn"


class WorkerGroup:
    """Daemon worker processes, one pipe each, with orderly shutdown.

    The shared plumbing behind :class:`ShardPool` and
    :class:`repro.rl.parallel.ParallelVectorEnv`: workers receive
    ``(pipe_end, *args)`` and speak a ``(command, payload)`` protocol in
    which ``("close", None)`` is answered once and ends the worker.
    ``args_list`` must be picklable under the resolved start method.
    """

    def __init__(self, target, args_list, context: str | None = None):
        if not args_list:
            raise TrainingError("WorkerGroup needs at least one worker")
        ctx = mp.get_context(resolve_context(context))
        self.remotes = []
        self.processes = []
        for args in args_list:
            parent, child = ctx.Pipe()
            process = ctx.Process(target=target, args=(child, *args),
                                  daemon=True)
            process.start()
            child.close()
            self.remotes.append(parent)
            self.processes.append(process)
        self.closed = False

    def __len__(self) -> int:
        return len(self.remotes)

    def close(self) -> None:
        """Send ``("close", None)`` everywhere and reap (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for remote in self.remotes:
            try:
                remote.send(("close", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                continue
        for remote in self.remotes:
            try:
                remote.recv()
            except (EOFError, OSError):  # pragma: no cover
                pass
            remote.close()
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker guard
                process.terminate()


def _attach(cache: dict, name: str) -> shared_memory.SharedMemory:
    """Worker-side shared-memory attachment, cached by block name.

    The parent owns the block lifecycle (create/unlink); workers only
    attach and close.  Worker-side attachment must not reach any resource
    tracker: depending on spawn order the worker either shares the
    parent's tracker (whose registry the parent's ``unlink`` retires
    exactly once) or runs its own (which would mistake the parent's live
    block for a leak at worker exit) — so registration is suppressed for
    the duration of the attach (Python < 3.13 lacks ``track=False``)."""
    shm = cache.get(name)
    if shm is None:
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        cache[name] = shm
    return shm


#: Worker-side attachment-cache bound: the double-buffered steady state
#: keeps two block pairs live, regrowth retires a pair, so eight names
#: comfortably cover every in-flight pair plus the recently retired ones.
_ATTACH_CACHE_BLOCKS = 8


def _attach_pair(cache: dict, in_name: str, out_name: str):
    """Attach the request's block pair, bounding the attachment cache.

    The parent cycles work through a small pool of block pairs (several
    may be in flight at once under the async pipeline), so a name absent
    from the current request is not necessarily stale.  Eviction
    therefore only trims the cache once it outgrows
    :data:`_ATTACH_CACHE_BLOCKS`, and never touches the current pair:
    a closed block's ``.buf`` is gone, and ``np.ndarray`` over it would
    silently read unshared memory.  Evicting a still-live pair is safe —
    its next request simply re-attaches it."""
    shm_in, shm_out = _attach(cache, in_name), _attach(cache, out_name)
    if len(cache) > _ATTACH_CACHE_BLOCKS:
        for name in [n for n in cache if n not in (in_name, out_name)]:
            cache.pop(name).close()
    return shm_in, shm_out


def _shard_worker(remote, factory, param_names, spec_names) -> None:
    """Worker loop: one simulator replica, evaluates value-array shards."""
    os.environ[SHARDS_ENV] = "1"    # no nested sharding in workers
    simulator = factory()
    remote.send(("ready", tuple(simulator.spec_space.names)))
    attachments: dict[str, shared_memory.SharedMemory] = {}
    P, S = len(param_names), len(spec_names)
    try:
        while True:
            cmd, payload = remote.recv()
            if cmd == "eval":
                in_name, out_name, lo, hi, B = payload
                try:
                    shm_in, shm_out = _attach_pair(attachments, in_name,
                                                   out_name)
                    vals = np.ndarray((B, P), dtype=np.float64,
                                      buffer=shm_in.buf)
                    out = np.ndarray((B, S), dtype=np.float64,
                                     buffer=shm_out.buf)
                    values_list = [
                        {name: float(v) for name, v in zip(param_names, row)}
                        for row in vals[lo:hi]]
                    specs = simulator._fresh_batch(values_list)
                    for r, spec in zip(range(lo, hi), specs):
                        out[r] = [spec[name] for name in spec_names]
                    remote.send(("ok", None))
                except Exception as exc:  # surface, don't kill the pool
                    remote.send(("error", f"{type(exc).__name__}: {exc}"))
            elif cmd == "close":
                remote.send(None)
                break
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown command {cmd!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        for shm in attachments.values():
            shm.close()
        remote.close()


class _BlockPair:
    """One shared-memory (values-in, specs-out) block pair.

    Pairs are pooled by :class:`ShardPool`: a ticket borrows a pair for
    the submit-to-collect round trip and returns it to the free list, so
    the async pipeline's two in-flight batches never alias each other's
    memory."""

    def __init__(self, n_params: int, n_specs: int, rows: int):
        self.cap_rows = rows
        self.shm_in = shared_memory.SharedMemory(
            create=True, size=rows * n_params * 8)
        self.shm_out = shared_memory.SharedMemory(
            create=True, size=rows * n_specs * 8)

    def release(self) -> None:
        """Close and unlink both blocks (idempotent per block)."""
        for shm in (self.shm_in, self.shm_out):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShardTicket:
    """Handle for one in-flight :meth:`ShardPool.submit_values` batch.

    Tickets are collected in submission order (the worker pipes are
    FIFO queues, so replies arrive in exactly that order)."""

    __slots__ = ("pair", "busy", "n_rows", "collected")

    def __init__(self, pair: _BlockPair, busy: list, n_rows: int):
        self.pair = pair
        self.busy = busy
        self.n_rows = n_rows
        self.collected = False


#: Free-list bound: the RL double buffer cycles two pairs and the
#: baselines' generation pipeline keeps up to four chunks in flight
#: (``iter_batch_specs``), so four parks every steady state without
#: per-generation allocate/unlink churn.
_FREE_PAIRS = 4


class ShardPool:
    """Persistent multicore shard pool over one simulator family.

    Parameters
    ----------
    factory:
        Picklable zero-argument callable building the worker's simulator
        (see ``CircuitSimulator.shard_factory``).
    n_shards:
        Worker count.
    param_names / spec_names:
        Wire format: sizing values and spec results travel as float64
        arrays in these column orders.
    """

    def __init__(self, factory, n_shards: int, param_names, spec_names,
                 context: str | None = None):
        if n_shards < 1:
            raise TrainingError("ShardPool needs at least one shard")
        self.param_names = tuple(param_names)
        self.spec_names = tuple(spec_names)
        self._group = WorkerGroup(
            _shard_worker,
            [(factory, self.param_names, self.spec_names)] * n_shards,
            context=context)
        for remote in self._group.remotes:
            cmd, names = remote.recv()
            if cmd != "ready" or names != self.spec_names:
                self._group.close()
                raise TrainingError(
                    f"shard worker handshake failed: {cmd} {names!r}")
        self._free: list[_BlockPair] = []
        self._inflight: collections.deque[ShardTicket] = collections.deque()
        # Exit hook through a weak reference: the atexit registry must not
        # keep abandoned pools (and their workers) alive until exit —
        # dropped pools get reaped by __del__/GC, live ones at shutdown.
        atexit.register(ShardPool._atexit_close, weakref.ref(self))

    @staticmethod
    def _atexit_close(pool_ref) -> None:
        """Interpreter-exit cleanup through a weak reference."""
        pool = pool_ref()
        if pool is not None:
            pool.close()

    def __len__(self) -> int:
        return len(self._group)

    @property
    def closed(self) -> bool:
        return self._group.closed

    @property
    def n_inflight(self) -> int:
        """Submitted-but-uncollected batch count (0, 1 or 2 in practice)."""
        return len(self._inflight)

    def _acquire_pair(self, rows: int) -> _BlockPair:
        """Borrow a block pair with capacity for ``rows`` (create if none)."""
        for i, pair in enumerate(self._free):
            if pair.cap_rows >= rows:
                return self._free.pop(i)
        return _BlockPair(len(self.param_names), len(self.spec_names),
                          max(rows, 64))

    def _release_pair(self, pair: _BlockPair) -> None:
        """Return a pair to the free list, retiring the smallest extras."""
        self._free.append(pair)
        self._free.sort(key=lambda p: p.cap_rows)
        while len(self._free) > _FREE_PAIRS:
            self._free.pop(0).release()

    def submit_values(self, values_array: np.ndarray) -> ShardTicket:
        """Dispatch ``(B, P)`` stacked sizing values without waiting.

        Rows are split into contiguous shards, one per worker, exactly as
        :meth:`evaluate_values` splits them; the value and spec arrays
        live in a borrowed shared block pair until :meth:`collect` reaps
        the replies.  Batches queue FIFO in the worker pipes, so several
        tickets may be outstanding — collect them in submission order.
        """
        if self._group.closed:
            raise TrainingError("ShardPool is closed")
        values_array = np.ascontiguousarray(values_array, dtype=np.float64)
        B, P = values_array.shape
        if P != len(self.param_names):
            raise TrainingError(
                f"got {P} parameters, expected {len(self.param_names)}")
        pair = self._acquire_pair(B)
        vals = np.ndarray((B, P), dtype=np.float64, buffer=pair.shm_in.buf)
        vals[:] = values_array
        bounds = np.linspace(0, B, len(self._group) + 1).astype(int)
        busy = []
        try:
            for remote, lo, hi in zip(self._group.remotes, bounds, bounds[1:]):
                if hi > lo:
                    remote.send(("eval", (pair.shm_in.name, pair.shm_out.name,
                                          int(lo), int(hi), B)))
                    busy.append(remote)
        except (BrokenPipeError, OSError):
            # A worker died before accepting work: the pool is mid-protocol
            # and unrecoverable — tear it down so the caller's next attempt
            # rebuilds a fresh one.  The borrowed pair goes back to the
            # free list first so close() unlinks it.
            self._release_pair(pair)
            self.close()
            raise TrainingError(
                "shard worker died before accepting work; pool closed"
            ) from None
        ticket = ShardTicket(pair, busy, B)
        self._inflight.append(ticket)
        return ticket

    def collect(self, ticket: ShardTicket) -> np.ndarray:
        """Wait for a ticket's workers and return its ``(B, S)`` specs.

        Tickets must be collected in submission order (worker pipes are
        FIFO, so an out-of-order collect would hand one batch another
        batch's acknowledgements).
        """
        if ticket.collected:
            raise TrainingError("shard ticket already collected")
        if self._group.closed:
            raise TrainingError("ShardPool is closed")
        if not self._inflight or self._inflight[0] is not ticket:
            raise TrainingError(
                "shard tickets must be collected in submission order")
        errors = []
        dead = False
        for remote in ticket.busy:
            try:
                cmd, payload = remote.recv()
            except (EOFError, OSError):
                # A worker died mid-eval (OOM, native crash): the pool is
                # mid-protocol and unrecoverable — tear it down so the
                # caller's next attempt rebuilds a fresh one.
                dead = True
                continue
            if cmd != "ok":
                errors.append(payload)
        self._inflight.popleft()
        ticket.collected = True
        if dead:
            self._release_pair(ticket.pair)
            self.close()
            raise TrainingError("shard worker died mid-evaluation; "
                                "pool closed")
        out = np.ndarray((ticket.n_rows, len(self.spec_names)),
                         dtype=np.float64, buffer=ticket.pair.shm_out.buf
                         ).copy()
        self._release_pair(ticket.pair)
        if errors:
            raise TrainingError(f"shard worker failed: {errors[0]}")
        return out

    def evaluate_values(self, values_array: np.ndarray) -> np.ndarray:
        """Evaluate ``(B, P)`` stacked sizing values; returns ``(B, S)``.

        The blocking convenience around :meth:`submit_values` +
        :meth:`collect` (requires no other batch in flight, so the FIFO
        collect order is trivially respected).
        """
        return self.collect(self.submit_values(values_array))

    def close(self) -> None:
        """Shut the workers down and release every shared block."""
        self._group.close()
        for ticket in self._inflight:
            self._release_pair(ticket.pair)
            ticket.collected = True
        self._inflight.clear()
        for pair in self._free:
            pair.release()
        self._free = []

    def __del__(self):  # pragma: no cover - interpreter teardown best effort
        try:
            self.close()
        except Exception:
            pass
