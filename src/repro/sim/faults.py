"""Deterministic fault injection and supervision records (chaos plane).

The supervised :class:`~repro.sim.parallel.ShardPool` promises that a
dead, hung or crashing worker never costs the caller a batch: the work
is retried on a respawned worker, poison designs are bisected out and
quarantined, and everything else comes back bitwise identical to the
fault-free run.  Those recovery paths are worthless untested — and
untestable with real faults, which strike nondeterministically.  This
module is the deterministic stand-in: a ``REPRO_FAULTS`` profile names
exactly which worker misbehaves, how, and on which evaluation, so the
chaos suite can pin every recovery path in ordinary unit tests.

Profile syntax (comma-separated directives)::

    REPRO_FAULTS="kill@1"            # worker 0 SIGKILLs itself on eval 1
    REPRO_FAULTS="exc@2#1"           # worker 1 raises on its 2nd eval
    REPRO_FAULTS="hang@1"            # worker 0 sleeps forever on eval 1
    REPRO_FAULTS="delay@1:0.2"       # worker 0 delays reply 1 by 0.2 s
    REPRO_FAULTS="drop@1"            # worker 0 severs its transport on eval 1
    REPRO_FAULTS="poison@3f2a9c0d11ee"   # design digest always raises

``kill``/``exc``/``hang``/``delay``/``drop`` are *event* directives: they count a
worker's ``eval`` requests (1-based) and fire once — a respawned worker
does not inherit them, otherwise recovery would re-trigger the fault
forever.  ``poison`` is a *content* directive: it follows the design
(matched by :func:`design_digest` of its sizing-value row) wherever the
supervisor moves it, which is exactly how a genuinely crashing design
behaves.  Directives default to worker 0; suffix ``#W`` targets worker
``W``.  The profile applies only to shard workers — the parent pops the
variable before evaluating in process, except for ``poison`` entries,
which the in-process recovery path honours too (so quarantine is
testable without any pool).

Alongside injection this module holds the supervision data plane shared
by the pool and the in-process fallback: :class:`SupervisorConfig` (the
``REPRO_TIMEOUT`` / ``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF`` knobs),
per-fault :class:`FaultRecord` entries and the per-batch
:class:`BatchReport` that ``CircuitSimulator`` republishes as
``last_batch_report``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import signal
import time

import numpy as np

from repro.errors import (ConnectionDropFault, PoisonDesignFault, SolveFault,
                          TrainingError)

#: Environment variable holding the fault-injection profile (default none).
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable: per-attempt shard deadline in seconds (0 = off).
TIMEOUT_ENV = "REPRO_TIMEOUT"

#: Environment variable: extra attempts per shard node before bisection.
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable: base backoff (seconds) between retry attempts.
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Event directive kinds (one-shot, per original worker incarnation).
_EVENT_KINDS = ("kill", "exc", "hang", "delay", "drop")

#: Per-row result provenance codes (``BatchReport.provenance``): a cold
#: Newton solve from the canonical seed, a solve seeded from the
#: persistent warm-start store, an exact hit replayed from the
#: persistent result store, and a per-simulator memo hit.
PROV_COLD = 0
PROV_WARM = 1
PROV_HIT = 2
PROV_MEMO = 3


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout policy of the supervised shard pool.

    Parameters
    ----------
    timeout:
        Per-attempt deadline in seconds, measured from dispatch of a
        shard to the worker; 0 disables deadline enforcement (the
        default — healthy solves vary too much across machines for a
        universal number).
    retries:
        Extra attempts granted to each shard node before the supervisor
        bisects it (a node's children start with a fresh attempt
        budget, so an N-row shard gets O(log N) * (retries+1) chances
        before any single design is quarantined).
    backoff:
        Base sleep between attempts; attempt *k* of a node waits
        ``backoff * 2**(k-1)`` seconds (exponential).
    """

    timeout: float = 0.0
    retries: int = 2
    backoff: float = 0.05

    def __post_init__(self):
        """Reject negative policy values."""
        if self.timeout < 0 or self.retries < 0 or self.backoff < 0:
            raise TrainingError(
                "supervisor timeout/retries/backoff must be >= 0")

    @classmethod
    def from_env(cls) -> "SupervisorConfig":
        """Policy from ``REPRO_TIMEOUT``/``REPRO_RETRIES``/
        ``REPRO_RETRY_BACKOFF`` (malformed values fall back to defaults).
        """
        def _read(env: str, default: float, cast) -> float:
            raw = os.environ.get(env, "").strip()
            if not raw:
                return default
            try:
                value = cast(raw)
            except ValueError:
                return default
            return value if value >= 0 else default

        return cls(timeout=_read(TIMEOUT_ENV, cls.timeout, float),
                   retries=int(_read(RETRIES_ENV, cls.retries, int)),
                   backoff=_read(BACKOFF_ENV, cls.backoff, float))

    def backoff_delay(self, attempt: int) -> float:
        """Seconds of exponential backoff before retry ``attempt``
        (1-based); 0.0 when backoff is disabled.  The shard supervisor
        turns this into a per-job ``not_before`` timestamp instead of
        sleeping, so one flaky shard's backoff never stalls replies from
        healthy workers."""
        if self.backoff > 0 and attempt >= 1:
            return self.backoff * (2.0 ** (attempt - 1))
        return 0.0

    def sleep_before(self, attempt: int) -> None:
        """Exponential backoff before retry ``attempt`` (1-based).

        The blocking convenience for single-threaded callers; the shard
        supervisor uses the non-blocking :meth:`backoff_delay` form."""
        delay = self.backoff_delay(attempt)
        if delay > 0:
            time.sleep(delay)


@dataclasses.dataclass(frozen=True)
class FaultDirective:
    """One parsed ``REPRO_FAULTS`` token.

    ``kind`` is one of ``kill``/``exc``/``hang``/``delay``/``drop``
    (event directives firing once on the ``at``-th eval of worker
    ``worker``)
    or ``poison`` (content directive matching the design whose sizing
    row hashes to ``digest``).  ``arg`` carries the delay seconds for
    ``delay`` directives.
    """

    kind: str
    at: int = 0
    worker: int = 0
    arg: float = 0.0
    digest: str = ""


def parse_fault_profile(text: str) -> tuple[FaultDirective, ...]:
    """Parse a ``REPRO_FAULTS`` profile string into directives.

    Raises :class:`TrainingError` on malformed tokens — a chaos profile
    that silently parses to nothing would make the chaos CI leg
    vacuous.
    """
    directives = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            head, _, tail = token.partition("@")
            kind = head.strip()
            if kind == "poison":
                digest = tail.strip()
                if not digest:
                    raise ValueError("poison needs a digest")
                directives.append(FaultDirective("poison", digest=digest))
                continue
            if kind not in _EVENT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            tail, _, worker_part = tail.partition("#")
            worker = int(worker_part) if worker_part else 0
            at_part, _, arg_part = tail.partition(":")
            at = int(at_part)
            if at < 1 or worker < 0:
                raise ValueError("eval index must be >= 1, worker >= 0")
            arg = float(arg_part) if arg_part else 0.0
            if kind == "delay" and arg <= 0:
                raise ValueError("delay needs seconds, e.g. delay@1:0.2")
            directives.append(FaultDirective(kind, at=at, worker=worker,
                                             arg=arg))
        except ValueError as exc:
            raise TrainingError(
                f"bad {FAULTS_ENV} token {token!r}: {exc}") from None
    return tuple(directives)


def active_profile() -> tuple[FaultDirective, ...]:
    """Directives of the current ``REPRO_FAULTS`` value (empty if unset)."""
    raw = os.environ.get(FAULTS_ENV, "")
    if not raw.strip():
        return ()
    return parse_fault_profile(raw)


def worker_directives(profile: tuple[FaultDirective, ...], worker: int,
                      respawned: bool = False) -> tuple[FaultDirective, ...]:
    """Directives worker slot ``worker`` should enforce.

    Event directives bind to the worker's *original* incarnation only —
    a respawned worker inherits just the poison (content) directives, so
    recovery cannot re-trigger the fault that killed its predecessor.
    """
    return tuple(d for d in profile
                 if d.kind == "poison"
                 or (not respawned and d.worker == worker))


def design_digest(row: np.ndarray) -> str:
    """Content digest of one sizing-value row (12 hex chars).

    Hashes the float64 byte representation of the physical sizing
    values, so the digest follows the design through any shard
    decomposition, retry, or bisection — and is the same in process and
    in a worker.
    """
    row = np.ascontiguousarray(row, dtype=np.float64)
    return hashlib.sha1(row.tobytes()).hexdigest()[:12]


def check_poison(rows: np.ndarray,
                 directives: tuple[FaultDirective, ...]) -> None:
    """Raise :class:`PoisonDesignFault` if any row is a poisoned design."""
    poisons = {d.digest for d in directives if d.kind == "poison"}
    if not poisons:
        return
    for row in np.atleast_2d(rows):
        digest = design_digest(row)
        if digest in poisons:
            raise PoisonDesignFault(
                f"injected poison design {digest}")


class FaultInjector:
    """Per-worker fault enforcement, driven by parsed directives.

    One instance lives in each shard worker (and one in the parent for
    the in-process recovery path, poison directives only).  The worker
    loop calls :meth:`on_eval` with the sizing rows of every ``eval``
    request *before* solving; the injector counts requests, fires
    matching one-shot event directives, and checks the rows against the
    poison set.  The return value is the reply delay in seconds
    requested by a ``delay`` directive (0.0 otherwise).
    """

    def __init__(self, directives: tuple[FaultDirective, ...]):
        self._events = [d for d in directives if d.kind != "poison"]
        self._poison = tuple(d for d in directives if d.kind == "poison")
        self._count = 0

    def on_eval(self, rows: np.ndarray) -> float:
        """Apply directives for one eval request; returns reply delay."""
        self._count += 1
        delay = 0.0
        for directive in list(self._events):
            if directive.at != self._count:
                continue
            self._events.remove(directive)   # one-shot
            if directive.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif directive.kind == "hang":
                time.sleep(3600.0)
            elif directive.kind == "exc":
                raise SolveFault(
                    f"injected solve exception at eval {self._count}")
            elif directive.kind == "drop":
                # The worker loop catches this *before* its generic
                # error reply and severs its transport instead — the
                # supervisor must see a dead connection, not an error.
                raise ConnectionDropFault(
                    f"injected connection drop at eval {self._count}")
            elif directive.kind == "delay":
                delay = directive.arg
        check_poison(rows, self._poison)
        return delay


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """One supervision event: what failed, where, and what it cost.

    ``kind`` is ``"worker-death"``, ``"timeout"``, ``"solve-error"`` or
    ``"quarantine"``; ``worker`` is the shard-worker slot (-1 for the
    in-process path); ``rows`` are the affected design rows in
    fresh-batch coordinates; ``attempt`` is the attempt number that
    failed; ``detail`` carries the worker's error text when there is
    one.
    """

    kind: str
    worker: int
    rows: tuple[int, ...]
    attempt: int
    detail: str = ""


@dataclasses.dataclass
class BatchReport:
    """Structured supervision record for one batched evaluation.

    Arrays are indexed by design row: ``attempts`` counts solve
    attempts that touched the row (1 = clean first try), ``latency``
    is seconds from submit to the row's final result, ``quarantined``
    marks rows charged pessimistic failure measurements, and
    ``provenance`` records how each row's result was obtained
    (:data:`PROV_COLD` / :data:`PROV_WARM` / :data:`PROV_HIT` /
    :data:`PROV_MEMO` — cold solve, store-warm-started solve, exact
    store hit, memo hit).  ``faults`` lists every supervision event in
    occurrence order; ``respawns`` and ``retries`` count worker
    replacements and re-dispatches.

    Iterative-engine batches additionally account their linear solves:
    ``krylov_solves`` / ``krylov_iterations`` count preconditioned
    Krylov solves and their summed inner iterations,
    ``krylov_fallbacks`` the solves that degraded to the direct sparse
    path (non-convergence), and ``krylov_residual`` the worst relative
    true residual accepted.  All zero on the dense/sparse legs, and for
    work dispatched to shard/remote workers (whose solve counters live
    in their own processes).
    """

    n_designs: int
    faults: list[FaultRecord] = dataclasses.field(default_factory=list)
    respawns: int = 0
    retries: int = 0
    attempts: np.ndarray = None
    latency: np.ndarray = None
    quarantined: np.ndarray = None
    provenance: np.ndarray = None
    krylov_solves: int = 0
    krylov_iterations: int = 0
    krylov_fallbacks: int = 0
    krylov_residual: float = 0.0

    def __post_init__(self):
        """Allocate the per-row arrays when not provided."""
        if self.attempts is None:
            self.attempts = np.zeros(self.n_designs, dtype=np.int64)
        if self.latency is None:
            self.latency = np.zeros(self.n_designs, dtype=np.float64)
        if self.quarantined is None:
            self.quarantined = np.zeros(self.n_designs, dtype=bool)
        if self.provenance is None:
            self.provenance = np.zeros(self.n_designs, dtype=np.int8)

    @property
    def clean(self) -> bool:
        """True when the batch saw no fault of any kind."""
        return (not self.faults and self.respawns == 0
                and self.retries == 0 and not self.quarantined.any())

    @property
    def n_quarantined(self) -> int:
        """Number of designs charged failure measurements."""
        return int(self.quarantined.sum())

    def translate(self, row_map: dict[int, list[int]],
                  n_designs: int) -> "BatchReport":
        """Re-index a fresh-batch report into caller-batch coordinates.

        The cache front-end dedupes before evaluation, so fresh row
        ``i`` may serve several caller rows; ``row_map`` maps each fresh
        row to its caller rows.  Rows served purely from cache keep
        zeroed entries (they were never at risk).
        """
        out = BatchReport(n_designs, respawns=self.respawns,
                          retries=self.retries,
                          krylov_solves=self.krylov_solves,
                          krylov_iterations=self.krylov_iterations,
                          krylov_fallbacks=self.krylov_fallbacks,
                          krylov_residual=self.krylov_residual)
        for i in range(self.n_designs):
            for r in row_map.get(i, ()):
                out.attempts[r] = self.attempts[i]
                out.latency[r] = self.latency[i]
                out.quarantined[r] = self.quarantined[i]
                out.provenance[r] = self.provenance[i]
        for fault in self.faults:
            rows = tuple(sorted(r for i in fault.rows
                                for r in row_map.get(i, ())))
            out.faults.append(dataclasses.replace(fault, rows=rows))
        return out
