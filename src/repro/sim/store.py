"""Content-addressed evaluation store and Newton warm-start cache.

The paper's end-user promise is answering "size this spec" queries
cheaply, and its headline metric is simulations-to-success.  At
production traffic most sizing queries are near-duplicates: RL
trajectories move one grid step at a time and the population baselines
resample the same neighbourhoods.  The per-simulator LRU memo
(:mod:`repro.sim.cache`) already exploits *exact* repeats within one
process; this module promotes that idea into a store that survives
across processes and runs, and adds a *near*-hit tier that turns the
step-to-step delta structure of rollout traces into solver throughput.

Two tiers, one content-addressed key space:

* **Exact results** — measured spec rows keyed by a digest of
  ``(store schema version, topology structure signature, corner,
  technology, engine backend, quantized sizing vector)``.  A hit
  returns the recorded float64 spec row bit for bit, without any
  solve, and is charged to ``SimulationCounter.cached`` exactly like a
  memo hit.
* **Newton warm starts** — converged DC operating points keyed by the
  same scope.  On an exact miss, the *nearest* stored sizing (L1
  distance on the quantized grid) seeds the damped-Newton solve
  instead of the canonical grid-centre operating point; callers fall
  back to the canonical seed whenever a warm attempt fails, so results
  stay spec-equivalent (<= 1e-9) to cold solves.

Knobs
-----
``REPRO_CACHE`` selects the tier backing: ``off`` (default — nothing
is ever stored, the historical behaviour bit for bit), ``mem``
(process-wide in-memory store shared by every simulator in the
process) or ``disk`` (SQLite file under ``REPRO_CACHE_DIR``, shared by
concurrent processes and surviving across runs).  Malformed values
fall back to ``off``.  The disk tier opens in WAL mode with a busy
timeout so concurrent ShardPool workers read and write safely; a
corrupted or truncated store file is detected, discarded and rebuilt
instead of crashing, and a directory that cannot host the file
degrades to the in-memory tier.  Both tiers are bounded: results are
LRU-evicted beyond :data:`RESULT_CAPACITY` and warm seeds ring-buffer
beyond :data:`WARM_CAPACITY` per scope.

Consistency
-----------
The scope digest pins everything that could change a result: store
schema version, topology class and netlist structure signature,
corner/temperature/technology, spec names, parameter grids and the
*resolved* engine backend — so a dense and a sparse run never exchange
rows, and any code change that bumps :data:`SCHEMA_VERSION` starts
from an empty namespace.  Exact hits are bitwise replays of the
recorded solve; warm-started solves are spec-equivalent to cold
solves, not bitwise (the Newton endpoint depends on the seed at
solver tolerance), which is the same contract the async pipeline
documents for its knob.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import sqlite3
import time
from collections import OrderedDict

import numpy as np

#: Environment variable selecting the store backing (off | mem | disk).
CACHE_ENV = "REPRO_CACHE"

#: Environment variable: directory of the disk tier's SQLite file.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default disk-tier directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Store format/namespace version: part of every scope digest and
#: pinned in the SQLite file's meta table, so schema changes can never
#: replay stale rows — they simply start a fresh namespace.
SCHEMA_VERSION = 1

#: LRU bound on stored exact-result rows (per store).
RESULT_CAPACITY = 200_000

#: Ring-buffer bound on warm-start seeds per scope.
WARM_CAPACITY = 4096

#: Disk eviction cadence: capacity is enforced every this many puts.
_EVICT_EVERY = 256

#: SQLite file name inside ``REPRO_CACHE_DIR``.
_DB_NAME = "store.sqlite"


def cache_mode() -> str:
    """The store backing selected by ``REPRO_CACHE``.

    Returns ``"off"``, ``"mem"`` or ``"disk"``; anything malformed
    falls back to ``"off"`` (the reproducible baseline), mirroring how
    ``REPRO_ENGINE`` treats typos in environment values.
    """
    raw = os.environ.get(CACHE_ENV, "").strip().lower()
    return raw if raw in ("mem", "disk") else "off"


def cache_dir() -> pathlib.Path:
    """Directory of the disk tier (``REPRO_CACHE_DIR``, or a default)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    return pathlib.Path(raw) if raw else pathlib.Path(DEFAULT_CACHE_DIR)


def scope_digest(parts) -> str:
    """Content digest of a store scope (16 hex chars).

    ``parts`` is an iterable of strings pinning everything that could
    change a result — see the module docstring.  The digest is the
    namespace under which exact rows and warm seeds are filed.
    """
    payload = "\x1f".join(str(p) for p in parts)
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def result_digest(scope: str, key: tuple) -> str:
    """Digest addressing one exact result: scope plus quantized sizing."""
    payload = scope + "|" + ",".join(str(int(k)) for k in key)
    return hashlib.sha1(payload.encode()).hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Counters of one :class:`EvaluationStore` (diagnostics surface)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    warm_hits: int = 0
    warm_misses: int = 0
    seeds: int = 0
    rebuilds: int = 0
    dropped_writes: int = 0

    def snapshot(self) -> dict[str, int]:
        """Current counters as a plain dict."""
        return dataclasses.asdict(self)


class _WarmIndex:
    """In-process nearest-neighbour index of one scope's warm seeds.

    Quantized sizing keys live in one ``(N, P)`` int64 matrix so the
    nearest lookup is a single vectorised L1 scan; seeds beyond
    :data:`WARM_CAPACITY` overwrite ring-buffer style, and recording an
    already-present key replaces its seed in place (trajectories
    revisit sizings constantly — duplicates would starve the ring).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.keys: np.ndarray | None = None
        self.xs: list[np.ndarray | None] = []
        self.n = 0
        self._cursor = 0
        self._slots: dict[tuple, int] = {}

    def record(self, key: tuple, x: np.ndarray) -> None:
        """Insert (or replace) the seed for one quantized sizing."""
        slot = self._slots.get(key)
        if slot is not None:
            self.xs[slot] = x
            return
        if self.keys is None:
            self.keys = np.zeros((min(64, self.capacity), len(key)),
                                 dtype=np.int64)
        if self.n < self.capacity:
            slot = self.n
            if slot >= len(self.keys):
                grown = np.zeros((min(len(self.keys) * 2, self.capacity),
                                  self.keys.shape[1]), dtype=np.int64)
                grown[:self.n] = self.keys[:self.n]
                self.keys = grown
            self.xs.append(x)
            self.n += 1
        else:           # ring overwrite: retire the oldest slot
            slot = self._cursor
            self._cursor = (self._cursor + 1) % self.capacity
            old = tuple(int(k) for k in self.keys[slot])
            self._slots.pop(old, None)
            self.xs[slot] = x
        self.keys[slot] = key
        self._slots[key] = slot

    def nearest(self, key: tuple, size: int) -> tuple[np.ndarray, int] | None:
        """Seed of the closest stored sizing (L1 grid distance), or None.

        ``size`` guards against stale seeds whose solution length no
        longer matches the MNA system (cannot happen within one scope,
        but a mismatched seed would poison the Newton iteration, so the
        check is cheap insurance).
        """
        if self.n == 0:
            return None
        d = np.abs(self.keys[:self.n]
                   - np.asarray(key, dtype=np.int64)).sum(axis=1)
        for slot in np.argsort(d, kind="stable"):
            x = self.xs[int(slot)]
            if x is not None and x.shape == (size,):
                return x, int(d[int(slot)])
        return None


class EvaluationStore:
    """Two-tier content-addressed store: exact spec rows + warm seeds.

    Parameters
    ----------
    mode:
        ``"mem"`` (in-process only) or ``"disk"`` (SQLite under
        ``directory``, shared across processes and runs).
    directory:
        Disk-tier directory; created on demand.  Ignored for ``mem``.
    capacity / warm_capacity:
        LRU bound on exact rows and per-scope ring bound on seeds.

    The disk tier is a single SQLite file in WAL mode with a busy
    timeout, safe under concurrent readers/writers (ShardPool workers,
    parallel runs).  Every write is individually guarded: a locked or
    failing write drops that entry (counted in
    ``stats.dropped_writes``) instead of raising — losing a cache
    write is always acceptable.  A corrupted/truncated file or a
    schema-version mismatch is discarded and rebuilt on open.
    """

    def __init__(self, mode: str, directory: pathlib.Path | None = None,
                 capacity: int = RESULT_CAPACITY,
                 warm_capacity: int = WARM_CAPACITY):
        if mode not in ("mem", "disk"):
            raise ValueError(f"store mode must be mem|disk, got {mode!r}")
        self.mode = mode
        self.capacity = capacity
        self.warm_capacity = warm_capacity
        self.stats = StoreStats()
        self._results: OrderedDict[str, bytes] = OrderedDict()
        self._warm: dict[str, _WarmIndex] = {}
        self._warm_loaded: set[str] = set()
        self._conn: sqlite3.Connection | None = None
        self._path: pathlib.Path | None = None
        self._puts_since_evict = 0
        if mode == "disk":
            self._path = pathlib.Path(directory or cache_dir()) / _DB_NAME
            self._conn = self._open()

    # -- disk plumbing ------------------------------------------------------
    def _open(self) -> sqlite3.Connection | None:
        """Open (and if needed rebuild) the SQLite file.

        A corrupted/truncated file or a meta schema mismatch is
        unlinked and recreated once; if the second attempt also fails
        (unwritable directory, filesystem trouble) the store degrades
        to the in-memory tier rather than crashing the evaluation.
        """
        for attempt in range(2):
            try:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(str(self._path), timeout=5.0)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA busy_timeout=5000")
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(k TEXT PRIMARY KEY, v TEXT)")
                row = conn.execute(
                    "SELECT v FROM meta WHERE k='schema'").fetchone()
                if row is not None and row[0] != str(SCHEMA_VERSION):
                    raise sqlite3.DatabaseError(
                        f"store schema {row[0]} != {SCHEMA_VERSION}")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('schema', ?)",
                    (str(SCHEMA_VERSION),))
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    "digest TEXT PRIMARY KEY, specs BLOB NOT NULL, "
                    "used REAL NOT NULL)")
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS warm ("
                    "digest TEXT PRIMARY KEY, scope TEXT NOT NULL, "
                    "key BLOB NOT NULL, x BLOB NOT NULL, "
                    "used REAL NOT NULL)")
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS warm_scope ON warm(scope)")
                conn.commit()
                return conn
            except sqlite3.Error:
                if attempt == 0:
                    self.stats.rebuilds += 1
                    self._discard_file()
                    continue
                return None   # degrade to the in-memory tier
        return None  # pragma: no cover - loop always returns

    def _discard_file(self) -> None:
        """Unlink a corrupted store file (plus its WAL sidecars)."""
        for suffix in ("", "-wal", "-shm"):
            try:
                pathlib.Path(str(self._path) + suffix).unlink()
            except OSError:
                pass

    def close(self) -> None:
        """Release the SQLite connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - teardown guard
                pass
            self._conn = None

    # -- exact tier ---------------------------------------------------------
    def get_result(self, scope: str, key: tuple) -> np.ndarray | None:
        """Recorded spec row for an exact sizing, or None on miss.

        Hits refresh LRU recency; disk hits are promoted into the
        in-process map so repeated hits within one process skip SQLite.
        """
        digest = result_digest(scope, key)
        blob = self._results.get(digest)
        if blob is not None:
            self._results.move_to_end(digest)
            self.stats.hits += 1
            return np.frombuffer(blob, dtype=np.float64).copy()
        if self._conn is not None:
            try:
                row = self._conn.execute(
                    "SELECT specs FROM results WHERE digest=?",
                    (digest,)).fetchone()
                if row is not None:
                    self._conn.execute(
                        "UPDATE results SET used=? WHERE digest=?",
                        (time.time(), digest))
                    self._conn.commit()
                    self._remember(digest, bytes(row[0]))
                    self.stats.hits += 1
                    return np.frombuffer(row[0], dtype=np.float64).copy()
            except sqlite3.Error:
                pass
        self.stats.misses += 1
        return None

    def put_result(self, scope: str, key: tuple, row: np.ndarray) -> None:
        """Record the spec row of one solved sizing (idempotent upsert)."""
        digest = result_digest(scope, key)
        blob = np.ascontiguousarray(row, dtype=np.float64).tobytes()
        self._remember(digest, blob)
        self.stats.puts += 1
        if self._conn is not None:
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
                    (digest, blob, time.time()))
                self._conn.commit()
                self._maybe_evict()
            except sqlite3.Error:
                self.stats.dropped_writes += 1

    def _remember(self, digest: str, blob: bytes) -> None:
        """Insert into the in-process LRU map, evicting beyond capacity."""
        self._results[digest] = blob
        self._results.move_to_end(digest)
        if len(self._results) > self.capacity:
            self._results.popitem(last=False)

    def _maybe_evict(self) -> None:
        """Enforce the disk capacity bound every :data:`_EVICT_EVERY` puts."""
        self._puts_since_evict += 1
        if self._puts_since_evict < _EVICT_EVERY:
            return
        self._puts_since_evict = 0
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()
        excess = count - self.capacity
        if excess > 0:
            self._conn.execute(
                "DELETE FROM results WHERE digest IN (SELECT digest FROM "
                "results ORDER BY used ASC LIMIT ?)", (excess,))
            self._conn.commit()

    # -- warm tier ----------------------------------------------------------
    def _warm_index(self, scope: str) -> _WarmIndex:
        """The scope's in-process seed index, lazily loaded from disk.

        The disk rows recorded by *other* processes before this one
        first touched the scope are folded in on first access; records
        made elsewhere afterwards are picked up by fresh processes, not
        retroactively — warm seeds are a throughput hint, not a
        consistency surface.
        """
        index = self._warm.get(scope)
        if index is None:
            index = self._warm[scope] = _WarmIndex(self.warm_capacity)
        if self._conn is not None and scope not in self._warm_loaded:
            self._warm_loaded.add(scope)
            try:
                rows = self._conn.execute(
                    "SELECT key, x FROM warm WHERE scope=? "
                    "ORDER BY used DESC LIMIT ?",
                    (scope, self.warm_capacity)).fetchall()
                for key_blob, x_blob in reversed(rows):
                    key = tuple(np.frombuffer(key_blob, dtype=np.int64)
                                .tolist())
                    index.record(key, np.frombuffer(x_blob,
                                                    dtype=np.float64).copy())
            except sqlite3.Error:
                pass
        return index

    def nearest_seed(self, scope: str, key: tuple,
                     size: int) -> tuple[np.ndarray, int] | None:
        """Nearest stored operating point for a sizing, or None.

        Returns ``(x, distance)`` where ``distance`` is the L1 grid
        distance to the stored sizing (0 = the sizing itself was solved
        before).  ``size`` must match the MNA system's unknown count.
        The returned array is a copy — callers may write into seeds.
        """
        found = self._warm_index(scope).nearest(key, size)
        if found is None:
            self.stats.warm_misses += 1
            return None
        self.stats.warm_hits += 1
        return found[0].copy(), found[1]

    def record_seed(self, scope: str, key: tuple, x: np.ndarray) -> None:
        """Record one converged operating point for warm-start reuse."""
        x = np.ascontiguousarray(x, dtype=np.float64).copy()
        self._warm_index(scope).record(tuple(int(k) for k in key), x)
        self.stats.seeds += 1
        if self._conn is not None:
            try:
                key_blob = np.asarray(key, dtype=np.int64).tobytes()
                self._conn.execute(
                    "INSERT OR REPLACE INTO warm VALUES (?, ?, ?, ?, ?)",
                    (result_digest(scope, key), scope, key_blob,
                     x.tobytes(), time.time()))
                self._conn.commit()
            except sqlite3.Error:
                self.stats.dropped_writes += 1


#: Process-wide stores, one per (mode, directory) configuration.
_STORES: dict[tuple[str, str], EvaluationStore] = {}

#: Pid that populated :data:`_STORES` — a forked child inherits the
#: dict (and the parent's open SQLite connections) by copy, and using an
#: inherited connection from two processes is undefined behavior.
_STORES_PID = os.getpid()

#: Stores inherited from a parent process, parked instead of closed:
#: closing (or garbage-collecting) an inherited connection object would
#: finalise the parent's live handle from the child, so the child keeps
#: a reference forever and simply never uses it.
_ORPHANS: list[EvaluationStore] = []


def _guard_fork() -> None:
    """Retire stores inherited across a fork before any use.

    Pid-stamps the cache: the first :func:`get_store` call in a forked
    child moves every inherited instance to :data:`_ORPHANS` (never
    closed — the SQLite handle belongs to the parent) and restamps, so
    each process always opens its own connections."""
    global _STORES_PID
    if _STORES_PID != os.getpid():
        _ORPHANS.extend(_STORES.values())
        _STORES.clear()
        _STORES_PID = os.getpid()


def get_store() -> EvaluationStore | None:
    """The process-wide store for the current knob values (None = off).

    Resolved from the environment on every call (like the shard pool
    resolves ``REPRO_SHARDS`` per batch), so tests and long-lived
    processes can flip the knobs without rebuilding simulators; the
    same configuration always returns the same store instance, which
    is what makes the ``mem`` tier process-wide.  The cache is
    pid-guarded: a forked worker never reuses connections it inherited
    from its parent (see :func:`_guard_fork`).
    """
    mode = cache_mode()
    if mode == "off":
        return None
    _guard_fork()
    directory = str(cache_dir()) if mode == "disk" else ""
    store = _STORES.get((mode, directory))
    if store is None:
        store = EvaluationStore(
            mode, pathlib.Path(directory) if directory else None)
        _STORES[(mode, directory)] = store
    return store


def reset_store() -> None:
    """Drop every process-wide store (test isolation hook).

    Stores inherited across a fork are parked, not closed — only
    connections this process opened itself are finalised."""
    global _STORES_PID
    if _STORES_PID == os.getpid():
        for store in _STORES.values():
            store.close()
    else:
        _ORPHANS.extend(_STORES.values())
    _STORES.clear()
    _STORES_PID = os.getpid()
