"""DC sweep analysis (SPICE's ``.dc``).

Steps one independent source across a range of values, re-solving the
operating point at each step (warm-started from the previous solution, so
a whole voltage-transfer curve costs little more than one cold solve).
This is the analysis behind large-signal input/output characteristics:
voltage-transfer curves, output swing, systematic offset, and the
large-signal gain that AC analysis (a linearisation at one point) cannot
see.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.elements import CurrentSource, VoltageSource
from repro.circuits.netlist import Netlist
from repro.errors import AnalysisError, ConvergenceError
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.system import MnaSystem
from repro.units import ROOM_TEMPERATURE


@dataclasses.dataclass
class DcSweepResult:
    """Operating points along a swept source value."""

    source: str
    values: np.ndarray                 # swept source values, shape (P,)
    operating_points: list[OperatingPoint]
    #: Indices (into ``values``) of sweep points that failed to converge.
    failed: list[int]

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the sweep [V]."""
        return np.array([op.voltage(node) for op in self.operating_points])

    def supply_current(self, source_name: str) -> np.ndarray:
        """Current through a voltage source across the sweep [A]."""
        return np.array([abs(op.branch_current(source_name))
                         for op in self.operating_points])

    def transfer_gain(self, node: str) -> np.ndarray:
        """Numerical large-signal gain d v(node) / d v(source) per point."""
        if len(self.values) < 2:
            raise AnalysisError("gain needs at least two sweep points")
        return np.gradient(self.voltage(node), self.values)

    def output_swing(self, node: str, gain_fraction: float = 0.1) -> tuple[float, float]:
        """Output range over which |gain| exceeds ``gain_fraction`` of its
        peak — the usable output swing read off a voltage-transfer curve.

        Returns ``(v_low, v_high)`` at ``node``.
        """
        if not 0.0 < gain_fraction < 1.0:
            raise AnalysisError("gain_fraction must be in (0, 1)")
        gain = np.abs(self.transfer_gain(node))
        peak = float(gain.max())
        if peak == 0.0:
            raise AnalysisError(f"node {node!r} does not respond to the sweep")
        active = gain >= gain_fraction * peak
        vout = self.voltage(node)[active]
        return float(vout.min()), float(vout.max())

    def crossing(self, node: str, level: float) -> float:
        """Swept-source value where ``v(node)`` first crosses ``level``
        (linearly interpolated); the trip point of a VTC."""
        vout = self.voltage(node)
        above = vout >= level
        if above.all() or not above.any():
            raise AnalysisError(
                f"v({node}) never crosses {level} within the sweep")
        i = int(np.argmax(above != above[0]))
        v0, v1 = vout[i - 1], vout[i]
        t = (level - v0) / (v1 - v0) if v1 != v0 else 0.0
        return float(self.values[i - 1]
                     + t * (self.values[i] - self.values[i - 1]))


def dc_sweep(netlist: Netlist, source: str, values: np.ndarray, *,
             temperature: float = ROOM_TEMPERATURE,
             max_failures: int | None = None) -> DcSweepResult:
    """Sweep the DC value of ``source`` over ``values``.

    Each point warm-starts from the previous solution.  Points that fail
    to converge are recorded in ``failed`` and skipped (their operating
    points are omitted, and ``values`` is filtered to match) unless the
    failure count exceeds ``max_failures`` (default: fail the sweep only
    if *every* point fails).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 1:
        raise AnalysisError("DC sweep needs a non-empty 1-D value array")
    element = netlist[source]
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            f"{source!r} is not an independent source (got "
            f"{type(element).__name__})")

    original = element.dc
    ops: list[OperatingPoint] = []
    kept: list[float] = []
    failed: list[int] = []
    x_prev: np.ndarray | None = None
    try:
        for i, v in enumerate(values):
            element.dc = float(v)
            system = MnaSystem(netlist, temperature=temperature)
            op = None
            if x_prev is not None:
                try:
                    op = solve_dc(system, x0=x_prev)
                except ConvergenceError:
                    op = None
            if op is None:
                try:
                    op = solve_dc(system)
                except ConvergenceError:
                    failed.append(i)
                    if (max_failures is not None
                            and len(failed) > max_failures):
                        raise AnalysisError(
                            f"DC sweep of {source!r}: more than "
                            f"{max_failures} non-convergent points")
                    continue
            x_prev = op.x.copy()
            ops.append(op)
            kept.append(float(v))
    finally:
        element.dc = original
    if not ops:
        raise AnalysisError(f"DC sweep of {source!r}: no point converged")
    return DcSweepResult(source=source, values=np.asarray(kept),
                         operating_points=ops, failed=failed)
