"""ILU-preconditioned Krylov solves — the third engine leg.

The sparse-direct engine (:mod:`repro.sim.sparse`) wins an order of
magnitude over dense LAPACK at a few hundred unknowns, but SuperLU's
ordering and fill-in costs grow superlinearly: on the 2-D power-grid
meshes of :class:`~repro.topologies.power_grid.PowerGridOta` (5k–50k
unknowns) every Newton step and every AC frequency point pays a full
re-factorisation.  This module keeps the structure-cached CSC *assembly*
of :class:`~repro.sim.sparse.SparseState` — one master sparsity pattern,
``O(nnz)`` data refreshes — and replaces the ``splu`` factorisations
with preconditioned Krylov iteration:

* **DC Newton** — :class:`KrylovState` holds one incomplete-LU
  preconditioner per system, re-factored only when the Jacobian data
  drifts past :data:`DRIFT_TOL` (relative L1).  Consecutive Newton
  steps — and consecutive *evaluations* in a sizing loop, since the
  cache deliberately survives restamps — reuse the same ILU; each step
  then costs a handful of matvecs instead of a fresh factorisation.
  Every solve warm-starts from the current Newton iterate, so the
  result-store seeds that already cut Newton step counts
  (``REPRO_CACHE``) cut Krylov iterations the same way: a near-converged
  seed makes ``x0`` almost the solution and GMRES needs one or two
  restart-free sweeps.
* **AC sweeps and the noise adjoint** — :class:`KrylovSweep` mirrors the
  ``solve(b, adjoint=)`` contract of
  :class:`~repro.sim.sparse.SweepFactorization`: the shifted operators
  ``G + j w C`` of a whole frequency grid share one ILU anchor
  (re-anchored adaptively when a point needs too many iterations), each
  point warm-starts from its neighbour's solution, and the noise
  adjoint's transpose solves ride the same factors through
  ``ilu.solve(trans="T")``.
* **Fallback** — a solve that fails to converge degrades to the direct
  sparse path (``splu`` for Newton steps, a full
  :class:`~repro.sim.sparse.SweepFactorization` for sweeps), bitwise
  identical to what the ``sparse`` engine would have produced, and the
  event is counted.  Per-solve iteration/residual/fallback counters
  accumulate in :class:`KrylovStats` and surface through
  :class:`~repro.sim.faults.BatchReport`.

Engine selection routes systems here via
``REPRO_ENGINE=iterative`` (or ``auto`` above
:data:`~repro.sim.engine.ITERATIVE_AUTO_THRESHOLD` unknowns); see
:mod:`repro.sim.engine`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sim.sparse import HAVE_SCIPY, SparseState, SweepFactorization

if HAVE_SCIPY:
    from scipy.sparse.linalg import (LinearOperator as _LinOp,
                                     bicgstab as _bicgstab, gmres as _gmres,
                                     spilu as _spilu, splu as _splu)
else:  # pragma: no cover - scipy is present in the toolchain
    _LinOp = _bicgstab = _gmres = _spilu = _splu = None

#: Residual reduction target of the *initial* Krylov iteration (vs
#: ``|b|``).  Deliberately tight: the first pass is *warm-started* and
#: each extra decade costs only ~2 preconditioned iterations there,
#: whereas an iterative-refinement round is a cold correction solve that
#: routinely costs more than the whole warm pass — so the first pass
#: aims straight for the rounding plateau and refinement only mops up
#: the stragglers.
RTOL = 1e-12

#: Floor on the residual-reduction target of an iterative-refinement
#: correction solve.  Each round only needs to contract the backward
#: error from its current ``eta`` down past the refinement target, so
#: the correction tolerance is chosen *adaptively* as
#: ``0.25 * target / eta`` — a first pass that lands one decade short
#: buys its last decade in two or three iterations instead of the 15+
#: a fixed eight-decade correction solve would burn (corrections are
#: cold: no warm start to cheapen them).  The floor caps the work of
#: any single round when the gap is genuinely large; classic IR closes
#: the rest over the remaining rounds.
REFINE_RTOL = 1e-8

#: Maximum iterative-refinement rounds after the initial solve.
REFINE_MAX = 3

#: Acceptance threshold on the normwise backward error
#: ``|b - A x| / (|A| |x| + |b|)`` (max-norms).  MNA Newton systems mix
#: units (siemens rows, voltage-source rows) and can be conditioned at
#: 1e10, where a small *residual* still leaves percent-level *solution*
#: error — enough to kick a diverging Newton trajectory into a different
#: basin than the direct engines.  Backward error is the honest
#: criterion: direct ``splu`` delivers ~n*eps, iterative refinement
#: reaches the same plateau in one or two rounds, and accepting at
#: 1e-13 keeps the iterative leg's trajectories tracking the direct
#: legs' as closely as dense tracks sparse.
BACKWARD_TOL = 1e-13

#: Refinement target: the rounding plateau of a backward-stable direct
#: solve (~n*eps).  Every accepted solution — DC Newton step or AC
#: frequency point — is driven here so the iterative leg's results stay
#: within the spec-parity bar (1e-8 of sparse) even through
#: condition-number amplification; with the tight :data:`RTOL` first
#: pass the refinement rounds this gate triggers are rare.
PLATEAU_TOL = 1e-15


#: Newton-step size [V] below which a Krylov DC solve is *trusted*.
#: Steps this size sit well inside the device exponentials' quadratic
#: basin (the curvature scale is the thermal voltage, ~26 mV), so Newton
#: is contracting and solver-level forward differences shrink step over
#: step until polish pins the same root the direct engines find;
#: measured warm-evaluation trails contract 1.5e-3 -> 2e-5 -> 4e-9 V.
#: Above it Newton is wandering (damped excursions up to the 0.4 V
#: cap) — chaotic amplification could land a different basin — so the
#: step is redone with direct ``splu``, bitwise the sparse leg.
TRUST_STEP = 1e-2

#: Newton-step size [V] below which a *direct* step restores trust.
#: Restoration is deliberately an order stricter than acceptance
#: (hysteresis): chaotic cold trajectories approach *repelling*
#: pseudo-roots, contracting to ~2e-3 steps — the direct solver's own
#: forward-error floor on cond ~1e12 Jacobians — before jumping away by
#: ~0.1 V, and accepting a Krylov answer inside such a stall swaps the
#: final root.  Genuine quadratic endgames plunge through 1e-3 within a
#: step or two, so the stricter re-entry only delays Krylov by one
#: direct solve after a wander; warm sizing loops never drop trust and
#: never pay it.
TRUST_RESTORE = 1e-3

#: Step-contraction ratio a *direct* Newton step must additionally beat
#: (versus the previous step) before trust is restored.  A single small
#: step is not endgame evidence: chaotic cold trajectories drift along
#: plateaus (step ratios ~0.95) whose small-step tail still amplifies
#: percent-level solver differences into a different DC root.  Genuine
#: quadratic contraction shrinks steps superlinearly (measured trails:
#: 1.5e-3 -> 2e-5 -> 4e-9 V, ratios < 0.02), so requiring a direct step
#: below 0.3x its predecessor admits every real endgame on the first or
#: second step while plateaus never re-enable Krylov.
TRUST_CONTRACTION = 0.3

#: Krylov subspace dimension between GMRES restarts.
RESTART = 80

#: Maximum restart cycles before a solve is declared non-convergent and
#: degraded to the direct path.
MAXITER = 5

#: Relative L1 Jacobian-data drift above which the cached Newton ILU is
#: re-factored.  Sizing loops move a few device stamps per step while
#: the (linear) mesh dominates the data vector, so warm trajectories
#: stay far below this and reuse one factorisation for many solves.
DRIFT_TOL = 0.1

#: Iteration count above which the sweep preconditioner is re-anchored
#: at the *next* frequency point (shifted-system reuse stops paying once
#: the shift has walked too far from the anchor).  A re-anchor costs
#: roughly 15 preconditioned iterations' worth of ``spilu`` time on the
#: 5k-unknown meshes, so refreshing just above that keeps every point in
#: the few-iteration regime.
SWEEP_REFRESH_ITERS = 20

#: ``spilu`` dropping parameters.  Deliberately *tight*: SuperLU's
#: symbolic/ordering work dominates incomplete factorisation on MNA
#: mesh patterns, so a loose ILU costs nearly as much to build as a
#: tight one while buying several times the iteration count.  The engine
#: wins by amortising one near-exact factorisation across many solves
#: (Newton steps, sizing-loop evaluations, sweep shifts), not by
#: cheapening the factorisation itself.
DROP_TOL = 1e-6
FILL_FACTOR = 30.0

#: Krylov method: ``"gmres"`` (default) or ``"bicgstab"``.
METHOD = "gmres"


@dataclasses.dataclass
class KrylovStats:
    """Per-solve accounting of one Krylov-engine consumer.

    ``solves`` counts completed linear solves (one AC frequency point is
    one solve), ``iterations`` the summed inner Krylov iterations,
    ``fallbacks`` the solves that degraded to the direct sparse path,
    and ``max_residual`` the worst normwise backward error accepted.
    Counters accumulate across solves and are drained by :meth:`take`
    into :class:`~repro.sim.faults.BatchReport` fields at publish time.
    """

    solves: int = 0
    iterations: int = 0
    fallbacks: int = 0
    max_residual: float = 0.0

    def record(self, iterations: int, residual: float,
               fallback: bool = False) -> None:
        """Account one linear solve."""
        self.solves += 1
        self.iterations += int(iterations)
        if fallback:
            self.fallbacks += 1
        if residual > self.max_residual:
            self.max_residual = float(residual)

    def take(self) -> dict:
        """Drain the counters (returns them and resets to zero)."""
        out = {"solves": self.solves, "iterations": self.iterations,
               "fallbacks": self.fallbacks,
               "max_residual": self.max_residual}
        self.solves = self.iterations = self.fallbacks = 0
        self.max_residual = 0.0
        return out


def _krylov(A, b, M, x0, rtol):
    """One raw preconditioned Krylov iteration; ``(x, inner_iterations)``."""
    count = [0]

    def _tick(_arg):
        count[0] += 1

    if METHOD == "bicgstab":
        x, _info = _bicgstab(A, b, x0=x0, rtol=rtol, atol=0.0,
                             maxiter=RESTART * MAXITER, M=M, callback=_tick)
    else:
        x, _info = _gmres(A, b, x0=x0, rtol=rtol, atol=0.0, restart=RESTART,
                          maxiter=MAXITER, M=M, callback=_tick,
                          callback_type="pr_norm")
    return x, count[0]


def _solve_once(A, b, M, x0, target: float = PLATEAU_TOL):
    """One refined preconditioned Krylov solve of ``A x = b``.

    The initial iteration targets :data:`RTOL`; iterative-refinement
    rounds (residual recomputed in full precision, correction solved
    through the same preconditioner) then drive the normwise backward
    error ``|b - A x| / (|A| |x| + |b|)`` below ``target``
    (:data:`PLATEAU_TOL`, where a direct factorisation would land).
    Returns ``(x, iterations, backward_error, converged)``.
    """
    if b.size == 0:
        return np.zeros_like(b), 0, 0.0, True
    bnorm = float(np.max(np.abs(b)))
    Anorm = float(np.max(np.abs(A).sum(axis=1)))

    def _eta(xk):
        denom = Anorm * float(np.max(np.abs(xk))) + bnorm
        err = float(np.max(np.abs(b - A @ xk)))
        return err / denom if denom > 0.0 else err

    x, iters = _krylov(A, b, M, x0, RTOL)
    eta = _eta(x)
    # Refinement rounds are *cold* correction solves (no warm start) and
    # routinely cost more iterations than the warm first pass, so stop
    # the moment the target is met — with a tight ILU and a warm start
    # the first pass usually lands there on its own.
    for _round in range(REFINE_MAX):
        if eta <= target:
            break   # good enough for this solve's consumer
        d, extra = _krylov(A, b - A @ x, M, None,
                           max(REFINE_RTOL, 0.25 * target / eta))
        iters += extra
        x_new = x + d
        eta_new = _eta(x_new)
        if eta_new >= eta * 0.5:
            if eta_new < eta:
                x, eta = x_new, eta_new
            break   # contraction stalled: at the plateau
        x, eta = x_new, eta_new
    return x, iters, eta, eta <= BACKWARD_TOL


def _ilu_operator(ilu, n: int, dtype, adjoint: bool = False):
    """The ILU factors as a preconditioning :class:`LinearOperator`.

    ``adjoint`` preconditions transpose systems (``A^T x = b``) through
    the same factors via ``trans="T"`` — the sweep's noise-adjoint path.
    """
    trans = "T" if adjoint else "N"
    return _LinOp((n, n), matvec=lambda v: ilu.solve(v, trans=trans),
                  dtype=dtype)


class _IluCache:
    """One drift-gated incomplete-LU slot (Newton-step reuse).

    Holds the ILU factors and the data vector they were computed at;
    :meth:`get` returns the cached factors while the relative L1 drift
    of the master-pattern data stays below :data:`DRIFT_TOL`, otherwise
    re-factors.  A failed ``spilu`` (structurally singular iterate) is
    memoised as None for the same data so retries are not paid per
    Newton step.
    """

    def __init__(self):
        self._ilu = None
        self._data: np.ndarray | None = None
        self._scale = 0.0
        self._gmin: float | None = None

    def get(self, state: SparseState, data: np.ndarray,
            gmin: float = 0.0):
        """Cached-or-fresh ILU factors of the master-pattern ``data``.

        ``gmin`` is part of the cache key even though it also appears in
        ``data``: a continuation rung adds ``gmin`` to every node
        diagonal, which is invisible to the global L1 drift metric (the
        mesh dominates the data sum) yet changes the operator's
        *inverse* by O(gmin * cond) on ill-conditioned Newton systems —
        factors anchored on the wrong rung precondition poorly and cost
        extra iterations on every solve of the new rung.
        """
        if (self._data is not None and self._scale > 0.0
                and self._gmin == gmin):
            drift = float(np.abs(data - self._data).sum()) / self._scale
            if drift <= DRIFT_TOL:
                return self._ilu
        try:
            self._ilu = _spilu(state.matrix(data), drop_tol=DROP_TOL,
                               fill_factor=FILL_FACTOR)
        except RuntimeError:
            self._ilu = None
        self._data = np.array(data, copy=True)
        self._scale = float(np.abs(self._data).sum())
        self._gmin = gmin
        return self._ilu


class KrylovFactor:
    """The iterative engine's stand-in for one LU factorisation.

    Produced by :meth:`KrylovState.factor` and consumed through the
    backend-agnostic ``("krylov", factor)`` branch of
    :func:`repro.sim.dc._lu_factor` / ``_lu_solve``.  :meth:`solve`
    implements the trust gate described on :class:`KrylovState`: in
    trusted (endgame) mode it runs refined preconditioned GMRES
    warm-started from the Newton iterate, discards the result — and
    drops trust — if the implied Newton step is larger than
    :data:`TRUST_STEP` or the iteration failed; any discarded or
    untrusted solve goes through direct ``splu``, bitwise the
    sparse-direct Newton step.
    """

    def __init__(self, kstate: "KrylovState", A, data: np.ndarray,
                 x0: np.ndarray | None, direct=None, gmin: float = 0.0):
        self._kstate = kstate
        self._A = A
        self._data = data
        self._x0 = x0
        self._direct = direct
        self._gmin = gmin

    def _step(self, x: np.ndarray) -> float:
        """Size of the Newton step this solution implies (inf without a
        reference iterate)."""
        if self._x0 is None or not x.size:
            return np.inf
        return float(np.max(np.abs(x - self._x0)))

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (trusted Krylov or bitwise-direct)."""
        ks = self._kstate
        stats = ks.stats
        if ks.trusted:
            ilu = ks._ilu.get(ks.state, self._data, self._gmin)
            if ilu is not None:
                M = _ilu_operator(ilu, ks.state.n, self._A.dtype)
                x, iters, eta, ok = _solve_once(self._A, b, M, self._x0)
                step = self._step(x)
                if ok and step <= TRUST_STEP:
                    ks.last_step = step
                    stats.record(iters, eta)
                    return x
                # Large step (wandering) or non-convergence: discard and
                # degrade this and the following solves to direct.  The
                # cost of the discarded attempt is bounded by the trust
                # state machine — wandering phases skip Krylov entirely
                # until a contracting small direct step restores trust.
                ks.trusted = False
                stats.record(iters, eta, fallback=True)
            else:
                ks.trusted = False
                stats.record(0, 0.0, fallback=True)
        else:
            stats.record(0, 0.0)
        if self._direct is None:
            try:
                self._direct = _splu(self._A)
            except RuntimeError:
                # Singular at solve time: hand the Newton driver a
                # zero step so its residual gate rejects the iterate
                # instead of crashing the factorisation contract.
                return np.zeros_like(b) if self._x0 is None else \
                    np.array(self._x0, dtype=float, copy=True)
        xd = self._direct.solve(b)
        step = self._step(xd)
        if step <= TRUST_RESTORE and \
                step <= TRUST_CONTRACTION * ks.last_step:
            ks.trusted = True   # contracting endgame: re-enter Krylov
        ks.last_step = step
        return xd


class KrylovOperator:
    """Duck-typed "matrix" returned by the iterative engine's
    :meth:`~repro.sim.system.MnaSystem.newton_matrices`.

    Carries the master-pattern data and the Newton iterate (the warm
    start); :func:`repro.sim.dc._lu_factor` recognises the
    :meth:`krylov_factor` attribute and treats the result like LU
    factors.
    """

    def __init__(self, kstate: "KrylovState", data: np.ndarray,
                 x0: np.ndarray | None, gmin: float = 0.0):
        self._kstate = kstate
        self._data = data
        self._x0 = x0
        self._gmin = gmin

    def krylov_factor(self) -> KrylovFactor | None:
        """The solve handle for this operator (None when unusable)."""
        return self._kstate.factor(self._data, self._x0, gmin=self._gmin)


class KrylovState:
    """Per-system Krylov solve state: trust gate, drift-gated ILU,
    counters.

    One instance lives on each iterative :class:`~repro.sim.system.
    MnaSystem` (and on each :class:`~repro.sim.sparse.SparseSlice` of an
    iterative stack, sharing the template's :class:`KrylovStats`).  It
    deliberately survives restamps — GMRES iterates on the *true*
    current operator, so a stale preconditioner can only cost
    iterations, never correctness, and sizing-loop evaluations reuse one
    ILU across many solves.

    The *trust gate* keeps the iterative leg's Newton trajectories in
    the same basin as the direct engines'.  MNA Newton systems can be
    conditioned at 1e12+ mid-trajectory, where every backward-stable
    solver's answer carries percent-level forward uncertainty; while
    Newton is *wandering* (damped large steps, continuation ladders)
    those differences amplify chaotically and can land a different —
    equally converged — operating point.  So Krylov answers are accepted
    only in the contractive endgame (implied step below
    :data:`TRUST_STEP`, where Newton's quadratic contraction absorbs
    solver-level differences and polish pins the same root); wandering
    solves run direct ``splu``, which makes them *bitwise* the sparse
    leg's and guarantees identical ladder decisions.  Warm-started
    evaluations — a sizing loop's deltas, ``REPRO_CACHE`` seeds — start
    inside the endgame, which is exactly where the iterative win lives.
    """

    def __init__(self, state: SparseState, stats: KrylovStats | None = None):
        self.state = state
        self.stats = stats if stats is not None else KrylovStats()
        self._ilu = _IluCache()
        #: Optimistic start: warm evaluations begin near the solution.
        #: The first oversized step drops trust; a *contracting* small
        #: direct step (see :data:`TRUST_CONTRACTION`) restores it.
        self.trusted = True
        #: Most recent Newton-step size, the contraction reference for
        #: trust restoration.  Starts at inf so the first solve can only
        #: restore trust via an (automatically contracting) small step.
        self.last_step = np.inf

    def operator(self, data: np.ndarray, x0: np.ndarray | None = None,
                 gmin: float = 0.0) -> KrylovOperator:
        """Wrap master-pattern Newton ``data`` (warm start ``x0``,
        continuation rung ``gmin``) for the DC driver's factorisation
        layer."""
        return KrylovOperator(self, data, x0, gmin=gmin)

    def factor(self, data: np.ndarray, x0: np.ndarray | None,
               gmin: float = 0.0) -> KrylovFactor | None:
        """A :class:`KrylovFactor` over ``data``; None when untrusted
        and the matrix is directly singular (the sparse leg's failed
        ``splu``, surfaced identically so ladder decisions match)."""
        A = self.state.matrix(data)
        if not self.trusted:
            # Wandering phase: factor direct *eagerly* so a singular
            # iterate returns None exactly where the sparse leg's
            # ``_lu_factor`` does.
            try:
                direct = _splu(A)
            except RuntimeError:
                return None
            return KrylovFactor(self, A, data, x0, direct=direct,
                                gmin=gmin)
        return KrylovFactor(self, A, data, x0, gmin=gmin)


class KrylovSweep:
    """Iterative frequency sweep with the
    :class:`~repro.sim.sparse.SweepFactorization` ``solve`` contract.

    The shifted operators ``G + j w C`` share one ILU anchor: the first
    point factors it, later points reuse it (the shift walks slowly on a
    log grid) and re-anchor when a point needed more than
    :data:`SWEEP_REFRESH_ITERS` iterations.  Within one ``solve`` call
    each frequency warm-starts from its neighbour's solution; the noise
    adjoint (``adjoint=True``) solves ``A^T x = b`` through the same
    anchor via transpose preconditioning.  Any non-convergent point
    degrades the *whole* request to a lazily-built direct
    :class:`SweepFactorization` — bitwise the sparse engine's answer.
    """

    def __init__(self, state: SparseState, G_data: np.ndarray,
                 C_data: np.ndarray, omega: np.ndarray,
                 stats: KrylovStats | None = None):
        self._state = state
        self._Gd = np.asarray(G_data, dtype=complex)
        self._Cd = np.asarray(C_data)
        self._omega = np.asarray(omega, dtype=float)
        self.F = len(self._omega)
        self.n = state.n
        self.stats = stats if stats is not None else KrylovStats()
        self._ilu = None
        self._direct: SweepFactorization | None = None

    def _refactor(self, data: np.ndarray) -> None:
        """Anchor the shared ILU at the operator ``data``."""
        try:
            self._ilu = _spilu(self._state.matrix(data), drop_tol=DROP_TOL,
                               fill_factor=FILL_FACTOR)
        except RuntimeError:
            self._ilu = None

    def _direct_solve(self, b: np.ndarray, adjoint: bool) -> np.ndarray:
        """Direct block-diagonal ``splu`` fallback for the whole sweep."""
        if self._direct is None:
            self._direct = SweepFactorization(
                self._state, np.real(self._Gd), self._Cd, self._omega)
        return self._direct.solve(b, adjoint=adjoint)

    def solve(self, b: np.ndarray, adjoint: bool = False) -> np.ndarray:
        """Solve every frequency point against one RHS -> ``(F, n)``.

        ``adjoint`` solves ``A^T x = b`` (the noise-adjoint transpose
        path; callers conjugate, as with the direct factorisation).
        """
        bc = np.asarray(b, dtype=complex)
        out = np.empty((self.F, self.n), dtype=complex)
        prev: np.ndarray | None = None
        for i in range(self.F):
            data = self._Gd + (1j * self._omega[i]) * self._Cd
            A = self._state.matrix(data)
            A_op = A.T if adjoint else A
            if self._ilu is None:
                self._refactor(data)
            x = None
            for attempt in range(2):
                if self._ilu is None:
                    break
                M = _ilu_operator(self._ilu, self.n, A.dtype,
                                  adjoint=adjoint)
                x, iters, resid, ok = _solve_once(A_op, bc, M, prev)
                if ok:
                    break
                # Re-anchor once at this frequency and retry before
                # giving up on the iterative path.
                x = None
                if attempt == 0:
                    self._refactor(data)
            if x is None:
                self.stats.record(0, 0.0, fallback=True)
                return self._direct_solve(bc, adjoint)
            self.stats.record(iters, resid)
            out[i] = x
            prev = x
            if iters > SWEEP_REFRESH_ITERS:
                self._ilu = None   # re-anchor at the next shift
        return out


def stack_sweep_factors_krylov(stack, rows: np.ndarray, g3: np.ndarray,
                               c4: np.ndarray, omega: np.ndarray,
                               stats: KrylovStats | None = None
                               ) -> list[KrylovSweep]:
    """Per-design :class:`KrylovSweep` list for iterative stack slices.

    The iterative counterpart of
    :func:`repro.sim.sparse.stack_sweep_factors` — same per-design
    small-signal assembly on the master pattern, iterative sweeps
    instead of block-diagonal ``splu`` factors.  Duck-typing keeps every
    stacked-measurement consumer unchanged.
    """
    st = stack.template.sparse_state
    facts = []
    for j, r in enumerate(rows):
        Gd, Cd = st.ss_data(stack.G_pat[r], stack.C_pat[r], g3[j], c4[j])
        facts.append(KrylovSweep(st, Gd, Cd, omega, stats=stats))
    return facts
