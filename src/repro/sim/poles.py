"""Pole analysis of the linearised circuit.

The natural frequencies of ``C dx/dt + G x = 0`` are the finite
generalised eigenvalues ``s`` of the pencil ``(-G, C)``: nontrivial
solutions ``x e^{st}`` exist iff ``det(sC + G) = 0``.  MNA systems always
carry algebraic rows (capacitor-free KCL equations, source branch rows),
which show up as infinite eigenvalues and are filtered out.

A designer reads three things off the pole set, and this module computes
all of them:

* stability — any pole in the right half plane means the bias point is
  unstable (the negative-g_m OTA of paper §III-C lives near this edge);
* the dominant pole — sets the -3 dB bandwidth of an amplifier;
* pole Q — complex pairs with high Q mean peaking/ringing, which is what
  the phase-margin spec guards against.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import linalg as scipy_linalg

from repro.errors import AnalysisError
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem


@dataclasses.dataclass(frozen=True)
class PoleSet:
    """Finite natural frequencies of a linearised circuit [rad/s]."""

    poles: np.ndarray  # complex, sorted by |Re| ascending

    def __len__(self) -> int:
        return len(self.poles)

    @property
    def stable(self) -> bool:
        """True when every finite pole lies in the open left half plane."""
        return bool(np.all(np.real(self.poles) < 0.0))

    @property
    def dominant(self) -> complex:
        """The pole closest to the imaginary axis (slowest dynamics)."""
        if len(self.poles) == 0:
            raise AnalysisError("circuit has no finite poles")
        return complex(self.poles[np.argmin(np.abs(np.real(self.poles)))])

    def frequencies_hz(self) -> np.ndarray:
        """Pole magnitudes as ordinary frequencies [Hz]."""
        return np.abs(self.poles) / (2.0 * np.pi)

    def dominant_frequency_hz(self) -> float:
        """|dominant pole| / 2 pi — the single-pole bandwidth estimate."""
        return float(abs(self.dominant) / (2.0 * np.pi))

    def q_factors(self) -> list[float]:
        """Q of each complex-conjugate pair (0.5 for real poles).

        ``Q = |p| / (2 |Re p|)``; pairs are reported once.
        """
        qs = []
        seen = set()
        for i, p in enumerate(self.poles):
            if i in seen:
                continue
            if abs(p.imag) > 1e-9 * abs(p):
                # find the conjugate partner and skip it
                for j in range(i + 1, len(self.poles)):
                    if j not in seen and np.isclose(self.poles[j], np.conj(p),
                                                    rtol=1e-6, atol=1e-3):
                        seen.add(j)
                        break
            denom = 2.0 * abs(p.real)
            qs.append(float(abs(p) / denom) if denom > 0.0 else float("inf"))
        return qs

    def max_q(self) -> float:
        """Worst (highest) pole Q — the ringing indicator."""
        qs = self.q_factors()
        return max(qs) if qs else 0.5


def circuit_poles(system: MnaSystem, op: OperatingPoint, *,
                  max_abs: float = 1e15) -> PoleSet:
    """Finite poles of the circuit linearised at ``op``.

    ``max_abs`` [rad/s] separates genuine fast poles from the numerically-
    infinite eigenvalues of the algebraic MNA rows.
    """
    G, C = system.small_signal_matrices(op)
    if G.shape[0] == 0:
        raise AnalysisError("empty system has no poles")
    # Generalised problem: s C x = -G x.
    alphas, betas = scipy_linalg.eig(-G, C, right=False,
                                     homogeneous_eigvals=True)
    poles = []
    for a, b in zip(alphas, betas):
        if abs(b) < 1e-300:         # infinite eigenvalue (algebraic row)
            continue
        s = a / b
        if not np.isfinite(s) or abs(s) > max_abs:
            continue
        poles.append(s)
    arr = np.asarray(poles, dtype=complex)
    arr = arr[np.argsort(np.abs(np.real(arr)))]
    return PoleSet(poles=arr)
