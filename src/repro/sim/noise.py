"""Small-signal noise analysis.

For every noise current source ``k`` (resistor thermal noise, MOSFET
channel and flicker noise) the transfer impedance to the designated output
node is computed with one *adjoint* solve per frequency:

    ``A(w)^T y = e_out``  =>  ``Z_k(w) = y[p_k] - y[n_k]``

so the output voltage noise PSD is ``S_out(f) = sum_k S_k(f) |Z_k(f)|^2``.
Input-referred noise divides by the squared magnitude of the signal
transfer function from the circuit's AC input.  This is the textbook
adjoint-network method used by SPICE's ``.noise`` analysis.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AnalysisError
from repro.sim.ac import ac_solutions, ac_sweep, small_signal_operator
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem


@dataclasses.dataclass
class NoiseResult:
    """Noise spectra over a frequency sweep."""

    frequencies: np.ndarray          # (F,)
    output_psd: np.ndarray           # (F,) [V^2/Hz] at the output node
    input_psd: np.ndarray | None     # (F,) referred to the AC input, or None
    gain_squared: np.ndarray | None  # (F,) |H|^2 used for input referral
    contributions: dict[str, np.ndarray]  # per-element output PSD [V^2/Hz]

    def integrated_output_rms(self, f_low: float | None = None,
                              f_high: float | None = None) -> float:
        """Total output noise [V rms] over the (sub)band, trapezoid rule."""
        return _integrate_rms(self.frequencies, self.output_psd, f_low, f_high)

    def integrated_input_rms(self, f_low: float | None = None,
                             f_high: float | None = None) -> float:
        """Total input-referred noise [V rms] over the (sub)band."""
        if self.input_psd is None:
            raise AnalysisError("noise analysis was run without an input reference")
        return _integrate_rms(self.frequencies, self.input_psd, f_low, f_high)


def _integrate_rms(freqs: np.ndarray, psd: np.ndarray,
                   f_low: float | None, f_high: float | None) -> float:
    mask = np.ones(len(freqs), dtype=bool)
    if f_low is not None:
        mask &= freqs >= f_low
    if f_high is not None:
        mask &= freqs <= f_high
    if mask.sum() < 2:
        raise AnalysisError("noise integration band contains fewer than 2 points")
    return float(np.sqrt(np.trapezoid(psd[mask], freqs[mask])))


def _psd_over(psd_fn, frequencies: np.ndarray) -> np.ndarray:
    """Evaluate a PSD callable over the sweep, vectorised when supported.

    The built-in element PSDs accept arrays; user-supplied scalar-only
    callables fall back to a Python loop.
    """
    try:
        vals = np.asarray(psd_fn(frequencies), dtype=float)
        if vals.shape == frequencies.shape:
            return vals
    except Exception:
        pass
    return np.array([float(psd_fn(f)) for f in frequencies])


def output_noise_rms_batch(stack, rows: np.ndarray, gm: np.ndarray,
                           G: np.ndarray, C: np.ndarray,
                           frequencies: np.ndarray,
                           out_idx: int) -> np.ndarray:
    """Integrated output noise [V rms] of stacked designs.

    The batched counterpart of ``noise_analysis(...).integrated_output_rms``
    for a :class:`~repro.sim.batch.SystemStack`: the adjoint solves of all
    designs run as one stacked AC sweep of the transposed operators, and
    the per-source PSDs are rebuilt from the constants the stack captured
    at snapshot time — resistor ``4 k T / R`` entries and the MOSFET
    channel thermal/flicker coefficients (``gamma_noise``, ``kf``) stored
    in the stacked device bank — with ``gm`` the ``(B, K)`` stacked
    transconductances at each design's operating point.

    ``G``/``C`` are the stacked small-signal matrices of designs ``rows``
    (as produced by ``Topology.batch_small_signal``).
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if np.any(frequencies <= 0.0):
        raise AnalysisError("noise frequencies must be positive")
    if out_idx < 0:
        raise AnalysisError("noise output node cannot be ground")
    B, n = G.shape[0], G.shape[1]
    e_out = np.zeros(n, dtype=complex)
    e_out[out_idx] = 1.0
    GT = np.ascontiguousarray(np.swapaxes(G, 1, 2))
    CT = np.ascontiguousarray(np.swapaxes(C, 1, 2))
    y = np.conjugate(ac_solutions(GT, CT, np.tile(e_out, (B, 1)),
                                  frequencies))            # (B, F, n)
    return output_noise_rms_from_adjoint(stack, rows, gm, y, frequencies)


def output_noise_rms_from_adjoint(stack, rows: np.ndarray, gm: np.ndarray,
                                  y: np.ndarray,
                                  frequencies: np.ndarray) -> np.ndarray:
    """Integrated output noise [V rms] from stacked adjoint solutions.

    The PSD-accumulation half of :func:`output_noise_rms_batch`, shared
    with the sparse stacked path (which produces its adjoint solutions
    ``y`` of shape ``(B, F, n)`` through per-design
    :class:`~repro.sim.sparse.SweepFactorization` transpose solves
    instead of a dense stacked sweep): resistor thermal PSDs and the
    MOSFET channel thermal/flicker PSDs are rebuilt from the constants
    the stack captured at snapshot time and weighted by the adjoint
    transfer impedances.
    """
    from repro.units import BOLTZMANN

    B, n = y.shape[0], y.shape[2]
    # Ground (-1) routes to a zero padding column.
    y_pad = np.concatenate([y, np.zeros((B, len(frequencies), 1))], axis=-1)

    psd_out = np.zeros((B, len(frequencies)))
    res_idx = np.where(stack.noise_res_idx < 0, n, stack.noise_res_idx)
    if len(res_idx):
        Z = y_pad[..., res_idx[:, 0]] - y_pad[..., res_idx[:, 1]]  # (B, F, R)
        psd_out += np.einsum("bfr,br->bf", np.abs(Z) ** 2,
                             stack.noise_res_psd[rows])
    if stack.dev is not None:
        terms = stack.template._mos_terms
        d_idx = np.where(terms[:, 0] < 0, n, terms[:, 0])
        s_idx = np.where(terms[:, 2] < 0, n, terms[:, 2])
        Zm2 = np.abs(y_pad[..., d_idx] - y_pad[..., s_idx]) ** 2   # (B, F, K)
        dev = stack.dev.take(rows)
        thermal = (4.0 * BOLTZMANN * stack.temperatures[rows][:, None]
                   * dev.gamma_n * gm)                             # (B, K)
        flicker = dev.kf * gm ** 2 / dev.c_area                    # (B, K)
        psd_out += np.einsum("bfk,bk->bf", Zm2, thermal)
        psd_out += np.einsum("bfk,bk,f->bf", Zm2, flicker,
                             1.0 / frequencies)
    return np.sqrt(np.trapezoid(psd_out, frequencies, axis=-1))


def noise_analysis(system: MnaSystem, op: OperatingPoint,
                   frequencies: np.ndarray, output: str,
                   refer_to_input: bool = True) -> NoiseResult:
    """Compute output (and optionally input-referred) noise at ``output``.

    Parameters
    ----------
    output:
        Node whose voltage noise is computed.
    refer_to_input:
        If True, also divide by ``|H(f)|^2`` where ``H`` is the transfer
        function from the netlist's AC excitation to ``output``; the input
        referral then has the units of the excited source (volts for a
        voltage input, volts per (A) — i.e. ohms — absorbed into the PSD
        for a current input, matching SPICE's convention).
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if np.any(frequencies <= 0.0):
        raise AnalysisError("noise frequencies must be positive")
    out_idx = system.node_index[output]
    if out_idx < 0:
        raise AnalysisError("noise output node cannot be ground")

    sources = system.noise_source_list(op)
    names = [e.name for e in system.netlist for _ in e.noise_sources(op)]

    # Adjoint solve: A(w)^H y = e_out.  Since G and C are real,
    # A^H = G^T - j w C^T, so y = conj(x') where (G^T + j w C^T) x' = e_out
    # — which is exactly an AC sweep of the transposed operator and rides
    # the same modal-decomposition fast path as the forward analyses.
    # Sparse systems reuse the forward sweep's cached splu factors through
    # SuperLU's transpose solve instead of factoring the transposed
    # operators: one factorisation per frequency serves both directions.
    e_out = np.zeros(system.size)
    e_out[out_idx] = 1.0
    if getattr(system, "sparse", False):
        from repro.sim.sparse import sweep_solve
        lus = system.sparse_sweep_lus(op, frequencies)
        y = np.conjugate(sweep_solve(lus, e_out, adjoint=True))
    else:
        G, C = system.small_signal_matrices(op)
        y = np.conjugate(ac_solutions(np.ascontiguousarray(G.T),
                                      np.ascontiguousarray(C.T),
                                      e_out.astype(complex), frequencies))

    output_psd = np.zeros(len(frequencies))
    contributions: dict[str, np.ndarray] = {}
    for (p, n, psd_fn), name in zip(sources, names):
        zp = y[:, p] if p >= 0 else 0.0
        zn = y[:, n] if n >= 0 else 0.0
        transfer_sq = np.abs(zp - zn) ** 2
        psd_vals = _psd_over(psd_fn, frequencies)
        contrib = psd_vals * transfer_sq
        contributions[name] = contributions.get(name, 0.0) + contrib
        output_psd += contrib

    input_psd = None
    gain_sq = None
    if refer_to_input:
        if not np.any(system.b_ac):
            raise AnalysisError("input referral needs an AC excitation")
        gain = ac_sweep(system, op, frequencies).voltage(output)
        gain_sq = np.abs(gain) ** 2
        with np.errstate(divide="ignore", invalid="ignore"):
            input_psd = np.where(gain_sq > 0.0, output_psd / gain_sq, np.inf)
    return NoiseResult(frequencies=frequencies, output_psd=output_psd,
                       input_psd=input_psd, gain_squared=gain_sq,
                       contributions=contributions)
