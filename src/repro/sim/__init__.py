"""Circuit simulation engine: MNA assembly, DC/AC/transient/noise analyses.

The engine is a small SPICE:

* :mod:`repro.sim.system` assembles modified-nodal-analysis matrices;
* :mod:`repro.sim.dc` finds operating points (Newton with gmin/source
  stepping);
* :mod:`repro.sim.ac` sweeps small-signal transfer functions;
* :mod:`repro.sim.linear` computes linearised step responses (for settling
  time);
* :mod:`repro.sim.transient` integrates the full nonlinear equations;
* :mod:`repro.sim.noise` computes output/input-referred noise spectra;
* :mod:`repro.sim.poles` extracts natural frequencies (pole analysis);
* :mod:`repro.sim.sweep` steps a source for VTC/output-swing analysis;
* :mod:`repro.sim.cache` caches and counts simulations (the paper's
  sample-efficiency metric counts simulator invocations).
"""

from repro.sim.ac import ACResult, ac_sweep, transfer_function
from repro.sim.cache import SimulationCache, SimulationCounter
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.linear import linear_step_response
from repro.sim.noise import NoiseResult, noise_analysis
from repro.sim.poles import PoleSet, circuit_poles
from repro.sim.sweep import DcSweepResult, dc_sweep
from repro.sim.system import MnaSystem
from repro.sim.transient import TransientResult, transient_analysis

__all__ = [
    "ACResult",
    "DcSweepResult",
    "MnaSystem",
    "NoiseResult",
    "OperatingPoint",
    "PoleSet",
    "SimulationCache",
    "SimulationCounter",
    "TransientResult",
    "ac_sweep",
    "circuit_poles",
    "dc_sweep",
    "linear_step_response",
    "noise_analysis",
    "solve_dc",
    "transfer_function",
    "transient_analysis",
]
