"""Circuit simulation engine: MNA assembly, DC/AC/transient/noise analyses.

The engine is a small SPICE, organised around a fixed-structure /
varying-values split (sizing loops restamp matrices in place instead of
rebuilding them) and vectorised device evaluation (one numpy call per
Newton iteration regardless of device count — or of *design* count, for
batched solves):

* :mod:`repro.sim.system` assembles modified-nodal-analysis matrices,
  with in-place restamping and precomputed stamp scatter maps;
* :mod:`repro.sim.stamp` caches MNA structure per netlist family
  (:class:`~repro.sim.stamp.StampPlan`);
* :mod:`repro.sim.dc` finds operating points (Newton with gmin/source
  stepping);
* :mod:`repro.sim.batch` solves stacked batches of same-structure designs
  with per-design convergence masking;
* :mod:`repro.sim.ac` sweeps small-signal transfer functions (modal
  pole–residue fast path with verified fallback);
* :mod:`repro.sim.linear` computes linearised step responses (for settling
  time);
* :mod:`repro.sim.transient` integrates the full nonlinear equations
  (single-design and stacked-batch engines);
* :mod:`repro.sim.parallel` shards batched evaluation across worker
  processes (``REPRO_SHARDS``), sharing index/spec arrays through
  ``multiprocessing.shared_memory``;
* :mod:`repro.sim.engine` selects the linear-algebra backend per system
  (``REPRO_ENGINE=auto|dense|sparse|iterative``, double-thresholded in
  ``auto`` via ``REPRO_SPARSE_THRESHOLD``/``REPRO_ITERATIVE_THRESHOLD``);
* :mod:`repro.sim.sparse` is the SuperLU backend for large netlists:
  one structure-cached CSC master pattern per system, in-place ``.data``
  refresh per sizing, cached ``splu`` factorisations for DC Newton, AC
  sweeps, the noise adjoint and transient steps;
* :mod:`repro.sim.krylov` is the ILU-preconditioned GMRES backend for
  mesh-scale netlists (10^4+ unknowns): trust-gated Krylov solves in
  Newton's contractive endgame with direct-``splu`` fallback, shifted-ILU
  AC sweeps with adjoint support, preconditioner reuse across Newton
  steps, frequency points and evaluations;
* :mod:`repro.sim.noise` computes output/input-referred noise spectra;
* :mod:`repro.sim.poles` extracts natural frequencies (pole analysis);
* :mod:`repro.sim.sweep` steps a source for VTC/output-swing analysis;
* :mod:`repro.sim.cache` caches and counts simulations (the paper's
  sample-efficiency metric counts simulator invocations).
"""

from repro.sim.ac import ACResult, ac_node_response, ac_sweep, transfer_function
from repro.sim.batch import BatchDcResult, SystemStack, solve_dc_batch
from repro.sim.cache import SimulationCache, SimulationCounter
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.engine import (
    ITERATIVE_AUTO_THRESHOLD,
    SPARSE_AUTO_THRESHOLD,
    engine_mode,
    iterative_threshold,
    resolve_engine,
    sparse_threshold,
    use_sparse,
)
from repro.sim.linear import linear_step_response
from repro.sim.noise import NoiseResult, noise_analysis
from repro.sim.poles import PoleSet, circuit_poles
from repro.sim.stamp import StampPlan
from repro.sim.sweep import DcSweepResult, dc_sweep
from repro.sim.system import MnaSystem, StructureMismatch
from repro.sim.transient import (
    BatchTransientResult,
    TransientResult,
    transient_analysis,
    transient_analysis_batch,
)

__all__ = [
    "ACResult",
    "BatchDcResult",
    "BatchTransientResult",
    "DcSweepResult",
    "MnaSystem",
    "ITERATIVE_AUTO_THRESHOLD",
    "SPARSE_AUTO_THRESHOLD",
    "engine_mode",
    "iterative_threshold",
    "resolve_engine",
    "sparse_threshold",
    "use_sparse",
    "NoiseResult",
    "OperatingPoint",
    "PoleSet",
    "SimulationCache",
    "SimulationCounter",
    "StampPlan",
    "StructureMismatch",
    "SystemStack",
    "TransientResult",
    "ac_node_response",
    "ac_sweep",
    "circuit_poles",
    "dc_sweep",
    "linear_step_response",
    "noise_analysis",
    "solve_dc",
    "solve_dc_batch",
    "transfer_function",
    "transient_analysis",
    "transient_analysis_batch",
]
