"""Socket transport for shard workers on other hosts (distributed axis).

:mod:`repro.sim.parallel` scales batched evaluation across the local
cores; this module puts the same workers behind TCP so they can live on
other machines.  The design constraint is that the supervised
:class:`~repro.sim.parallel.ShardPool` must not change: its retry
ladder, per-attempt deadlines, respawn, bisection, quarantine and
:class:`~repro.sim.faults.BatchReport` provenance all operate on a
*worker group* abstraction — so the remote transport simply duck-types
it.  :class:`RemoteWorkerGroup` mirrors
:class:`~repro.sim.parallel.WorkerGroup` (``remotes`` / ``processes`` /
``respawn`` / ``close``), each :class:`_RemoteConnection` mirrors one
worker pipe (``send`` / ``recv`` / ``poll`` / ``fileno``), and
"respawning" a dead slot means reconnecting to the same address.  A
dropped connection is therefore handled exactly like a killed local
worker: the supervisor sees EOF, reconnects, re-queues what the slot
owed, and the re-run is bitwise identical from the same canonical warm
seeds.

Wire protocol (length-prefixed frames, see :func:`send_frame`)::

    client -> server   hello {schema, scope, param_names, spec_names,
                              directives}
    server -> client   ready {spec_names}          | reject {reason}
    client -> server   eval  {req_id, lo, hi}      + float64 values blob
    server -> client   ok    {req_id, prov}        + float64 specs blob
                       error {req_id, detail}
    client -> server   close {}
    server -> client   closed {}

The frames mirror the pipe protocol of ``_shard_worker`` one-to-one;
the only difference is that sizing values and spec rows ship inline as
binary blobs instead of through shared memory (the client side still
reads/writes the parent pool's shared blocks, so the supervisor's
bookkeeping is unchanged).  The ``hello`` pins the schema version and
the simulator's store-scope digest — the strictest compatibility check
the repo has (topology class, corner, temperature, parameter grids,
spec names, resolved engine, netlist structure) — so a worker can never
silently answer for the wrong circuit.

Worker hosting (``repro worker --listen HOST:PORT <topology>``) is a
forking acceptor: every accepted connection gets its own daemon child
running :func:`_serve_connection` with a fresh simulator replica, so
several client pools may use one worker host concurrently and a child
hung in a solve never blocks the acceptor (the client's deadline policy
kills the *connection*; the stranded child dies with the acceptor).
Fault directives arrive in the ``hello`` — the client derives them from
its own ``REPRO_FAULTS`` profile exactly as it does for local workers,
so one-shot event semantics across respawns carry over unchanged.

Pool selection is the ``REPRO_WORKERS=host:port,...`` knob (it takes
precedence over ``REPRO_SHARDS``; see
``CircuitSimulator._resolve_shard_pool``), and
:func:`serve_queries` (``repro serve``) wraps a simulator in a
stateless front-end answering newline-delimited JSON sizing queries
over its own socket, built on ``submit_batch`` / ``collect_batch``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing as mp
import os
import select
import socket
import struct
import threading
import time

import numpy as np

from repro.errors import ConnectionDropFault, TrainingError
from repro.sim.faults import FAULTS_ENV, FaultDirective, FaultInjector
from repro.sim.parallel import (SHARDS_ENV, _attach, _attach_pair,
                                resolve_context)

#: Environment variable listing remote worker addresses
#: (``host:port,host:port,...``; empty = no remote evaluation).
WORKERS_ENV = "REPRO_WORKERS"

#: Wire-protocol version, pinned by the ``hello`` frame: client and
#: server must agree exactly, otherwise the handshake is rejected and
#: the client falls back to local evaluation.
REMOTE_SCHEMA_VERSION = 1

#: Seconds a TCP connect (initial or reconnect) may take before the
#: slot is declared unreachable.
_CONNECT_TIMEOUT = 20.0

#: Reconnect attempts when respawning a dropped slot (the acceptor is
#: normally still alive, so the first retry succeeds; a short ladder
#: rides out worker restarts).
_RECONNECT_TRIES = 5

#: Seconds between reconnect attempts.
_RECONNECT_PAUSE = 0.2

#: Frame sanity bound (64 MiB): a length prefix beyond this is protocol
#: corruption, not a real batch.
_MAX_FRAME = 64 * 1024 * 1024


def remote_addresses() -> tuple[tuple[str, int], ...]:
    """Parsed ``REPRO_WORKERS`` addresses (empty tuple when unset).

    Raises :class:`TrainingError` on malformed entries — a distributed
    run silently falling back to one process would be a very quiet way
    to lose a cluster."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return ()
    out = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        host, sep, port_text = token.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not sep or not host or not 0 < port < 65536:
            raise TrainingError(
                f"bad {WORKERS_ENV} entry {token!r}: expected HOST:PORT")
        out.append((host, port))
    return tuple(out)


# -- frame layer --------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; :class:`EOFError` on a closed peer.

    A peer that disappears mid-frame (connection drop, killed worker)
    surfaces as the same :class:`EOFError` as a clean shutdown — the
    supervisor treats both as a dead worker."""
    chunks = []
    while n > 0:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("remote peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, header: dict, blob: bytes = b"") -> None:
    """Send one length-prefixed frame: JSON header + optional binary blob.

    Layout: ``uint32 header_len | uint32 blob_len | header | blob``
    (big-endian prefixes).  The JSON header carries the command and its
    small fields; bulk float64 arrays travel as the raw blob."""
    payload = json.dumps(header, separators=(",", ":")).encode()
    sock.sendall(struct.pack(">II", len(payload), len(blob))
                 + payload + blob)


def recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    """Receive one frame; returns ``(header, blob)``.

    Raises :class:`EOFError` when the peer closed (cleanly or not) and
    :class:`TrainingError` on corrupt prefixes."""
    header_len, blob_len = struct.unpack(">II", _recv_exact(sock, 8))
    if header_len > _MAX_FRAME or blob_len > _MAX_FRAME:
        raise TrainingError(
            f"remote frame corrupt: header {header_len} / blob {blob_len} "
            "bytes exceed the protocol bound")
    header = json.loads(_recv_exact(sock, header_len).decode())
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    return header, blob


# -- client side (the pool's worker-group duck type) --------------------------
class _RemoteConnection:
    """One remote worker slot, duck-typing a worker pipe end.

    Translates the supervisor's pipe messages to wire frames: an
    outgoing ``("eval", (req_id, shm_in, shm_out, lo, hi, B))`` reads
    the sizing rows out of the parent's shared input block and ships
    them inline; an incoming ``ok`` frame writes the spec rows back
    into the shared output block before handing the supervisor the
    exact ``("ok", (req_id, provenance))`` tuple a local worker would
    have sent.  ``fileno`` exposes the socket to
    ``multiprocessing.connection.wait``, so the supervisor's service
    loop needs no changes at all."""

    def __init__(self, address: tuple[str, int], param_names, spec_names,
                 hello: dict, directives=()):
        self.address = address
        self._param_names = tuple(param_names)
        self._spec_names = tuple(spec_names)
        try:
            self._sock = socket.create_connection(
                address, timeout=_CONNECT_TIMEOUT)
        except OSError as exc:
            raise TrainingError(
                f"cannot connect to remote shard worker "
                f"{address[0]}:{address[1]}: {exc}") from None
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        #: req_id -> (out block name, lo, hi, B) of in-flight evals.
        self._jobs: dict[int, tuple[str, int, int, int]] = {}
        self._attachments: dict = {}
        send_frame(self._sock, {
            "cmd": "hello", **hello,
            "directives": [dataclasses.asdict(d) for d in directives]})

    def send(self, message) -> None:
        """Translate one supervisor pipe message into a wire frame.

        A severed slot raises :class:`BrokenPipeError` exactly like a
        local worker's dead pipe, so the supervisor's respawn-and-resend
        path applies unchanged."""
        if self._sock is None:
            raise BrokenPipeError("remote shard connection is closed")
        cmd, payload = message
        if cmd == "eval":
            req_id, in_name, out_name, lo, hi, B = payload
            shm_in, _ = _attach_pair(self._attachments, in_name, out_name)
            vals = np.ndarray((B, len(self._param_names)), dtype=np.float64,
                              buffer=shm_in.buf)
            self._jobs[req_id] = (out_name, lo, hi, B)
            send_frame(self._sock,
                       {"cmd": "eval", "req_id": req_id,
                        "lo": int(lo), "hi": int(hi)},
                       np.ascontiguousarray(vals[lo:hi]).tobytes())
        elif cmd == "close":
            send_frame(self._sock, {"cmd": "close"})
        else:  # pragma: no cover - protocol misuse guard
            raise TrainingError(f"unknown remote command {cmd!r}")

    def recv(self):
        """Receive one frame and translate it to a pipe-protocol tuple.

        ``ok`` frames scatter their spec blob into the parent's shared
        output block first, so by the time the supervisor resolves the
        job the rows are exactly where a local worker would have left
        them."""
        header, blob = recv_frame(self._sock)
        cmd = header.get("cmd")
        if cmd == "ok":
            req_id = int(header["req_id"])
            try:
                out_name, lo, hi, B = self._jobs.pop(req_id)
            except KeyError:  # pragma: no cover - protocol corruption
                raise TrainingError(
                    f"remote worker acknowledged unknown request {req_id}"
                    ) from None
            shm_out = _attach(self._attachments, out_name)
            out = np.ndarray((B, len(self._spec_names)), dtype=np.float64,
                             buffer=shm_out.buf)
            out[lo:hi] = np.frombuffer(blob, dtype=np.float64).reshape(
                hi - lo, len(self._spec_names))
            return ("ok", (req_id, [int(p) for p in header.get("prov", [])]))
        if cmd == "error":
            self._jobs.pop(int(header["req_id"]), None)
            return ("error", (int(header["req_id"]),
                              str(header.get("detail", ""))))
        if cmd == "ready":
            return ("ready", tuple(header.get("spec_names", ())))
        if cmd == "reject":
            return ("reject", str(header.get("reason", "")))
        if cmd == "closed":
            return ("closed", None)
        raise TrainingError(  # pragma: no cover - protocol corruption
            f"unknown remote reply {cmd!r}")

    def poll(self, timeout: float | None = 0.0) -> bool:
        """Whether a frame is ready to read (select on the socket)."""
        if self._sock is None:
            return False
        ready, _, _ = select.select([self._sock], [], [], timeout)
        return bool(ready)

    def fileno(self) -> int:
        """Socket file descriptor (for ``multiprocessing.connection.wait``)."""
        return self._sock.fileno() if self._sock is not None else -1

    def drop(self) -> None:
        """Abruptly sever the transport (the remote analogue of killing
        a local worker process): the server child's next send fails and
        it exits; the client side is closed immediately."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
        for shm in self._attachments.values():
            shm.close()
        self._attachments.clear()

    def close(self) -> None:
        """Close the socket (idempotent)."""
        self.drop()


class _RemoteProcess:
    """Duck type of a worker ``Process`` whose body lives elsewhere.

    The supervisor kills hung local workers with ``process.kill()``; the
    remote analogue is severing the connection — the server-side child
    is not ours to signal, and the forking acceptor hands the respawned
    connection a fresh child anyway.  ``join``/``is_alive``/``terminate``
    are no-ops shaped to satisfy ``WorkerGroup``-style reaping."""

    def __init__(self, connection: _RemoteConnection):
        self._connection = connection

    def kill(self) -> None:
        """Sever the slot's transport (supervisor deadline enforcement)."""
        self._connection.drop()

    def terminate(self) -> None:
        """Alias of :meth:`kill` (same escalation ladder shape)."""
        self.kill()

    def join(self, timeout: float | None = None) -> None:
        """No-op: there is no local process to wait for."""

    def is_alive(self) -> bool:
        """Always False: reaping a remote slot has nothing left to do."""
        return False


class RemoteWorkerGroup:
    """Socket-backed duck type of :class:`~repro.sim.parallel.WorkerGroup`.

    One :class:`_RemoteConnection` per address plays the worker pipe,
    one :class:`_RemoteProcess` stub plays the process handle, and
    :meth:`respawn` reconnects the slot to the same address — so
    :class:`~repro.sim.parallel.ShardPool` supervises remote workers
    with the exact code paths it uses for local ones.  Construction
    sends every slot's ``hello`` without waiting: the pool's normal
    handshake loop consumes the ``ready``/``reject`` replies.
    """

    def __init__(self, addresses, param_names, spec_names, hello: dict,
                 profile=()):
        from repro.sim.faults import worker_directives

        if not addresses:
            raise TrainingError("RemoteWorkerGroup needs at least one "
                                "worker address")
        self._addresses = [tuple(address) for address in addresses]
        self._param_names = tuple(param_names)
        self._spec_names = tuple(spec_names)
        self._hello = dict(hello)
        self.remotes = []
        self.processes = []
        try:
            for w, address in enumerate(self._addresses):
                conn = _RemoteConnection(
                    address, self._param_names, self._spec_names,
                    self._hello, worker_directives(tuple(profile), w))
                self.remotes.append(conn)
                self.processes.append(_RemoteProcess(conn))
        except TrainingError:
            for conn in self.remotes:
                conn.close()
            raise
        self.closed = False

    def __len__(self) -> int:
        return len(self.remotes)

    def respawn(self, index: int, args=None):
        """Reconnect slot ``index`` (the remote analogue of respawning).

        ``args`` is the local spawn recipe the supervisor passes
        (worker index, factory, names, replacement directives); only the
        directives element applies remotely — it carries the
        respawned-worker fault semantics (one-shot event directives do
        not survive), so chaos behaviour matches local workers exactly.
        Returns the new connection; raises :class:`TrainingError` when
        the worker host stays unreachable."""
        if self.closed:
            raise TrainingError("cannot respawn a worker in a closed group")
        directives = tuple(args[4]) if args is not None and len(args) > 4 \
            else ()
        self.remotes[index].close()
        last_error = None
        for attempt in range(_RECONNECT_TRIES):
            if attempt:
                time.sleep(_RECONNECT_PAUSE)
            try:
                conn = _RemoteConnection(
                    self._addresses[index], self._param_names,
                    self._spec_names, self._hello, directives)
                break
            except TrainingError as exc:
                last_error = exc
        else:
            raise TrainingError(
                f"cannot reconnect to remote shard worker "
                f"{self._addresses[index][0]}:{self._addresses[index][1]} "
                f"after {_RECONNECT_TRIES} attempts: {last_error}")
        self.remotes[index] = conn
        self.processes[index] = _RemoteProcess(conn)
        return conn

    def close(self) -> None:
        """Close every connection politely (idempotent, never raises).

        Mirrors ``WorkerGroup.close``: best-effort ``close`` frames, a
        short wait for the ``closed`` acknowledgement, then the sockets
        are torn down regardless."""
        if self.closed:
            return
        self.closed = True
        for remote in self.remotes:
            try:
                remote.send(("close", None))
            except (TrainingError, OSError):
                continue
        for remote in self.remotes:
            try:
                if remote.poll(1.0):
                    remote.recv()
            except (EOFError, TrainingError, OSError):
                pass
            remote.close()


# -- server side (repro worker) -----------------------------------------------
def _hello_mismatch(header: dict, expected: dict) -> str:
    """Reason the client's ``hello`` is incompatible ('' = compatible).

    Schema version first (frames may change shape between versions),
    then the store-scope digest — which already pins topology class,
    corner, temperature, technology, parameter grids, spec names,
    resolved engine and netlist structure — then the explicit name
    lists as a readable double check."""
    if header.get("schema") != expected["schema"]:
        return (f"schema version mismatch: client "
                f"{header.get('schema')!r}, worker {expected['schema']!r}")
    if header.get("scope") != expected["scope"]:
        return ("simulator scope mismatch: the worker hosts a different "
                "topology/corner/engine configuration")
    for field in ("param_names", "spec_names"):
        if list(header.get(field, ())) != list(expected[field]):
            return (f"{field} mismatch: client {header.get(field)!r}, "
                    f"worker {expected[field]!r}")
    return ""


def _serve_connection(sock: socket.socket, factory, expected: dict) -> None:
    """One accepted connection: handshake, then the eval/reply loop.

    Runs in its own daemon child of the acceptor, with its own simulator
    replica built from ``factory`` — concurrent client pools therefore
    never share solver state.  The loop mirrors ``_shard_worker``: the
    store-aware ``_worker_batch`` entry consults the persistent result
    store per row, faults surface as ``error`` replies for the client's
    supervisor to retry/bisect, and an injected
    :class:`~repro.errors.ConnectionDropFault` severs the socket
    abruptly so the client exercises its worker-death path."""
    os.environ[SHARDS_ENV] = "1"      # no nested sharding in workers
    os.environ.pop(WORKERS_ENV, None)  # no nested remote evaluation
    os.environ.pop(FAULTS_ENV, None)   # injection comes via the hello
    param_names = tuple(expected["param_names"])
    spec_names = tuple(expected["spec_names"])
    try:
        header, _ = recv_frame(sock)
        reason = (_hello_mismatch(header, expected)
                  if header.get("cmd") == "hello"
                  else f"expected hello, got {header.get('cmd')!r}")
        if reason:
            send_frame(sock, {"cmd": "reject", "reason": reason})
            return
        injector = FaultInjector(tuple(
            FaultDirective(**d) for d in header.get("directives", ())))
        simulator = factory()
        send_frame(sock, {"cmd": "ready", "spec_names": list(spec_names)})
        while True:
            header, blob = recv_frame(sock)
            cmd = header.get("cmd")
            if cmd == "eval":
                req_id = int(header["req_id"])
                try:
                    vals = np.frombuffer(blob, dtype=np.float64).reshape(
                        -1, len(param_names))
                    delay = injector.on_eval(vals)
                    values_list = [
                        {name: float(v) for name, v in zip(param_names, row)}
                        for row in vals]
                    specs, prov = simulator._worker_batch(values_list)
                    out = np.array([[spec[name] for name in spec_names]
                                    for spec in specs], dtype=np.float64)
                    if delay > 0:
                        time.sleep(delay)
                    send_frame(sock, {"cmd": "ok", "req_id": req_id,
                                      "prov": [int(p) for p in prov]},
                               out.tobytes())
                except ConnectionDropFault:
                    return   # sever abruptly: client sees a dead worker
                except Exception as exc:  # surface, don't kill the slot
                    send_frame(sock, {"cmd": "error", "req_id": req_id,
                                      "detail":
                                          f"{type(exc).__name__}: {exc}"})
            elif cmd == "close":
                send_frame(sock, {"cmd": "closed"})
                return
            else:  # pragma: no cover - protocol misuse guard
                return
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


def serve_worker(host: str, port: int, simulator, context: str | None = None,
                 max_connections: int | None = None) -> None:
    """Host a remote shard worker: accept forever, fork per connection.

    ``simulator`` supplies the picklable replica recipe
    (``shard_factory``) and the handshake expectation
    (``_remote_hello``); the acceptor itself never solves anything, so
    a child hung in a solve cannot block new connections.  Finished
    children are reaped on every accept; live ones are daemons, so they
    die with the acceptor.  Prints ``repro worker listening on
    HOST:PORT`` (the resolved port — ``port`` 0 binds an ephemeral one)
    once the socket is ready, which scripts use as the readiness
    signal.  ``max_connections`` stops the acceptor after that many
    connections (tests); normal operation runs until interrupted."""
    factory = simulator.shard_factory()
    hello = simulator._remote_hello()
    if factory is None or hello is None:
        raise TrainingError(
            f"{type(simulator).__name__} cannot host a remote worker "
            "(no picklable shard factory / remote handshake)")
    expected = dict(hello)
    ctx = mp.get_context(resolve_context(context))
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    children: list = []
    try:
        listener.bind((host, port))
        listener.listen(16)
        bound_host, bound_port = listener.getsockname()[:2]
        print(f"repro worker listening on {bound_host}:{bound_port}",
              flush=True)
        served = 0
        while max_connections is None or served < max_connections:
            sock, _peer = listener.accept()
            served += 1
            child = ctx.Process(target=_serve_connection,
                                args=(sock, factory, expected), daemon=True)
            child.start()
            sock.close()
            for done in [c for c in children if not c.is_alive()]:
                done.join(timeout=0)
                children.remove(done)
            children.append(child)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        listener.close()


# -- stateless evaluation front-end (repro serve) -----------------------------
def _answer_query(simulator, line: str, lock: threading.Lock) -> dict:
    """Evaluate one JSON query line; returns the reply object.

    A query is ``{"indices": [[...], ...]}`` (rows of grid indices)
    with an optional ``"id"`` echoed back; the reply carries the spec
    dicts row by row plus the batch's supervision summary.  Malformed
    queries come back as ``{"error": ...}`` instead of killing the
    connection — the front-end is stateless, so the next line starts
    fresh."""
    try:
        query = json.loads(line)
        indices = np.asarray(query["indices"], dtype=np.int64)
        with lock:   # one batch at a time: the pool's FIFO is not reentrant
            ticket = simulator.submit_batch(indices)
            specs = simulator.collect_batch(ticket)
        report = simulator.last_batch_report
        return {"id": query.get("id"), "specs": specs,
                "clean": bool(report.clean),
                "quarantined": int(report.n_quarantined)}
    except Exception as exc:
        return {"id": None, "error": f"{type(exc).__name__}: {exc}"}


def _serve_client(sock: socket.socket, simulator,
                  lock: threading.Lock) -> None:
    """Per-client thread: newline-delimited JSON in, JSON lines out."""
    buffer = b""
    try:
        while True:
            chunk = sock.recv(1 << 20)
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                if not line.strip():
                    continue
                reply = _answer_query(simulator, line.decode(), lock)
                sock.sendall(json.dumps(reply).encode() + b"\n")
    except OSError:
        pass
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


def serve_queries(host: str, port: int, simulator,
                  max_connections: int | None = None) -> None:
    """Stateless sizing-evaluation front-end over newline JSON.

    Accepts TCP clients, each served by a thread; every request line is
    an independent batch evaluated through ``submit_batch`` /
    ``collect_batch`` (so ``REPRO_WORKERS`` / ``REPRO_SHARDS`` decide
    where the solves actually run), serialised by a lock because the
    shard FIFO is collected in submission order.  Prints ``repro serve
    listening on HOST:PORT`` once ready; ``max_connections`` bounds the
    accept loop for tests."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lock = threading.Lock()
    threads: list[threading.Thread] = []
    try:
        listener.bind((host, port))
        listener.listen(16)
        bound_host, bound_port = listener.getsockname()[:2]
        print(f"repro serve listening on {bound_host}:{bound_port}",
              flush=True)
        served = 0
        while max_connections is None or served < max_connections:
            sock, _peer = listener.accept()
            served += 1
            thread = threading.Thread(target=_serve_client,
                                      args=(sock, simulator, lock),
                                      daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:   # bounded runs drain their clients
            thread.join(timeout=60.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        listener.close()
