"""Simulation caching and counting.

The paper's headline metric is *sample efficiency*: the number of
simulator invocations needed to reach a target specification.  Every
simulator wrapper in this package routes its evaluations through a
:class:`SimulationCounter`, and optionally a :class:`SimulationCache`
(an LRU keyed on the parameter vector), so that the benchmark harness can
report exactly the quantity the paper's tables report.

Whether a cache hit counts as a simulation is a policy decision: the
genetic-algorithm baselines re-simulate duplicates in the paper (a vanilla
GA has no memo table), so counting policies are explicit here.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

import numpy as np

T = TypeVar("T")


def sizing_key(indices) -> tuple[int, ...]:
    """Canonical quantized key of one sizing (a tuple of grid indices).

    The *single* quantization helper shared by every key consumer: the
    per-simulator memo (``ParameterSpace.as_key`` delegates here), the
    batch front-end's dedupe keys and the content digests of the
    persistent evaluation store (:mod:`repro.sim.store`).  One helper
    means a memo key, a dedupe key and a store digest can never drift
    apart for the same sizing.
    """
    return tuple(int(i) for i in np.asarray(indices, dtype=np.int64).ravel())


class SimulationCounter:
    """Counts simulator invocations, separating fresh solves from cache hits.

    ``warm_started`` sub-counts the fresh solves that were seeded from
    the persistent warm-start store (:mod:`repro.sim.store`) rather
    than the canonical grid-centre operating point — still charged as
    ``fresh`` (a Newton solve ran), but attributable, so benchmarks can
    tell cache throughput from solver speedups.
    """

    def __init__(self):
        self.fresh = 0
        self.cached = 0
        self.warm_started = 0

    @property
    def total(self) -> int:
        return self.fresh + self.cached

    def reset(self) -> None:
        """Zero the counters."""
        self.fresh = 0
        self.cached = 0
        self.warm_started = 0

    def snapshot(self) -> dict[str, int]:
        """Current counts as a plain dict."""
        return {"fresh": self.fresh, "cached": self.cached,
                "warm_started": self.warm_started, "total": self.total}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimulationCounter(fresh={self.fresh}, "
                f"cached={self.cached}, warm_started={self.warm_started})")


class SimulationCache:
    """Bounded LRU cache for simulation results.

    >>> cache = SimulationCache(maxsize=2)
    >>> cache.get_or_compute((1, 2), lambda: "a")
    'a'
    >>> cache.hits, cache.misses
    (0, 1)
    >>> cache.get_or_compute((1, 2), lambda: "never called")
    'a'
    >>> cache.hits
    1
    """

    def __init__(self, maxsize: int = 100_000):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing and storing it on miss."""
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]  # type: ignore[return-value]
        self.misses += 1
        value = compute()
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every cached entry (the hit/miss counters are kept)."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
