"""Small-signal AC analysis.

Solves ``(G + j*2*pi*f*C) x = b_ac`` over a frequency sweep, with the
MOSFETs linearised at a DC operating point.  All frequency points are
solved in one batched ``numpy.linalg.solve`` call — for the 10–25 unknown
systems in this reproduction that is far faster than a Python loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AnalysisError
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem


def log_frequencies(start: float, stop: float, points_per_decade: int = 10) -> np.ndarray:
    """Logarithmic frequency grid, inclusive of both endpoints."""
    if start <= 0 or stop <= start:
        raise AnalysisError(f"bad frequency range [{start}, {stop}]")
    decades = np.log10(stop / start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(start), np.log10(stop), n)


@dataclasses.dataclass
class ACResult:
    """Result of an AC sweep: complex solution vectors over frequency."""

    system: MnaSystem
    frequencies: np.ndarray  # (F,)
    solutions: np.ndarray    # (F, size) complex

    def voltage(self, node: str) -> np.ndarray:
        """Complex small-signal voltage of ``node`` across the sweep."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, i]

    def voltage_between(self, p: str, n: str) -> np.ndarray:
        """Differential small-signal voltage v(p) - v(n) across the sweep."""
        return self.voltage(p) - self.voltage(n)

    def magnitude(self, node: str) -> np.ndarray:
        """|v(node)| across the sweep."""
        return np.abs(self.voltage(node))

    def phase_deg(self, node: str, unwrap: bool = True) -> np.ndarray:
        """Phase [degrees] of the node voltage, unwrapped by default."""
        ph = np.angle(self.voltage(node))
        if unwrap:
            ph = np.unwrap(ph)
        return np.degrees(ph)


def small_signal_operator(system: MnaSystem, op: OperatingPoint,
                          frequencies: np.ndarray) -> np.ndarray:
    """Return the stacked complex MNA operators ``A[f] = G + j w C``."""
    G, C = system.small_signal_matrices(op)
    omega = 2.0 * np.pi * np.asarray(frequencies, dtype=float)
    return G[None, :, :] + 1j * omega[:, None, None] * C[None, :, :]


def ac_sweep(system: MnaSystem, op: OperatingPoint,
             frequencies: np.ndarray) -> ACResult:
    """Solve the small-signal system over ``frequencies`` using the
    netlist's AC excitation vector (elements' ``ac`` values)."""
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("AC sweep needs a non-empty 1-D frequency array")
    if not np.any(system.b_ac):
        raise AnalysisError(
            f"netlist {system.netlist.title!r} has no AC excitation "
            "(set ac= on a source)")
    A = small_signal_operator(system, op, frequencies)
    b = np.broadcast_to(system.b_ac, (len(frequencies), system.size))
    solutions = np.linalg.solve(A, b[..., None])[..., 0]
    return ACResult(system=system, frequencies=frequencies, solutions=solutions)


def transfer_function(system: MnaSystem, op: OperatingPoint,
                      frequencies: np.ndarray, output: str,
                      output_n: str = "0") -> np.ndarray:
    """Complex transfer function from the netlist's AC excitation to the
    differential voltage ``v(output) - v(output_n)``."""
    result = ac_sweep(system, op, frequencies)
    return result.voltage_between(output, output_n)
