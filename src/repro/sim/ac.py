"""Small-signal AC analysis.

Solves ``(G + j*2*pi*f*C) x = b_ac`` over a frequency sweep, with the
MOSFETs linearised at a DC operating point.

Two solution strategies, picked automatically:

* **modal** (default) — factor the frequency dependence out once through
  the real eigendecomposition of ``M = G^-1 C``:
  ``x(w) = V diag(1 / (1 + j*w*lambda)) V^-1 G^-1 b``.  One `eig` plus two
  solves replaces one LU *per frequency point*; the result is verified
  against the direct operator at sample frequencies and the code falls
  back transparently when the decomposition is ill-conditioned.
* **direct** — stack ``A[f] = G + j*w*C`` over all frequency points and
  solve in one batched ``numpy.linalg.solve`` call (still far faster than
  a Python loop for the 10–40 unknown systems in this reproduction).

Both paths also come in stacked-design form (leading batch axis): the
batched measurement layer projects them onto one output node through
:func:`ac_node_response_batch`.

Systems on the sparse engine (``system.sparse``; see
:mod:`repro.sim.engine`) bypass both dense strategies: the sweep solves
through per-frequency ``splu`` factorisations of the aligned-pattern
``G_ss + j w C_ss`` operators, memoised per operating point so the noise
adjoint and the gain referral of the same measurement reuse the factors
(:meth:`repro.sim.system.MnaSystem.sparse_sweep_lus`).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from repro.errors import AnalysisError
from repro.sim.dc import OperatingPoint
from repro.sim.system import MnaSystem

#: Escape hatch: set REPRO_MODAL_AC=0 to force the direct per-frequency
#: solver everywhere (debugging / conditioning studies).
_MODAL_ENABLED = os.environ.get("REPRO_MODAL_AC", "1") != "0"

#: Relative residual above which a modal solution is rejected.
_MODAL_RTOL = 1e-7

try:  # Low-overhead LAPACK handles for the single-design modal path: the
    # numpy wrappers cost as much as the 10-20 unknown factorisations.
    from scipy.linalg import get_lapack_funcs as _get_lapack
    _DGESV = _get_lapack(("gesv",), (np.empty(1),))[0]
    _DGEEV = _get_lapack(("geev",), (np.empty(1),))[0]
    _ZGESV = _get_lapack(("gesv",), (np.empty(1, dtype=complex),))[0]
except ImportError:  # pragma: no cover - scipy is present in the toolchain
    _DGESV = _DGEEV = _ZGESV = None


def _eig_single(M: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.linalg.eig`` for one small real matrix, via dgeev when available."""
    if _DGEEV is None:
        return np.linalg.eig(M)
    wr, wi, _, vr, info = _DGEEV(M, compute_vl=0, compute_vr=1,
                                 overwrite_a=False)
    if info != 0:
        raise np.linalg.LinAlgError("dgeev failed")
    if not wi.any():
        return wr.astype(complex), vr.astype(complex)
    # LAPACK packs complex-conjugate eigenvector pairs into adjacent real
    # columns; unpack to match np.linalg.eig's convention.
    lam = wr + 1j * wi
    V = np.empty(M.shape, dtype=complex)
    j = 0
    n = M.shape[0]
    while j < n:
        if wi[j] != 0.0 and j + 1 < n:
            V[:, j] = vr[:, j] + 1j * vr[:, j + 1]
            V[:, j + 1] = vr[:, j] - 1j * vr[:, j + 1]
            j += 2
        else:
            V[:, j] = vr[:, j]
            j += 1
    return lam, V


def log_frequencies(start: float, stop: float, points_per_decade: int = 10) -> np.ndarray:
    """Logarithmic frequency grid, inclusive of both endpoints."""
    if start <= 0 or stop <= start:
        raise AnalysisError(f"bad frequency range [{start}, {stop}]")
    decades = np.log10(stop / start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(start), np.log10(stop), n)


@dataclasses.dataclass
class ACResult:
    """Result of an AC sweep: complex solution vectors over frequency."""

    system: MnaSystem
    frequencies: np.ndarray  # (F,)
    solutions: np.ndarray    # (F, size) complex

    def voltage(self, node: str) -> np.ndarray:
        """Complex small-signal voltage of ``node`` across the sweep."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, i]

    def voltage_between(self, p: str, n: str) -> np.ndarray:
        """Differential small-signal voltage v(p) - v(n) across the sweep."""
        return self.voltage(p) - self.voltage(n)

    def magnitude(self, node: str) -> np.ndarray:
        """|v(node)| across the sweep."""
        return np.abs(self.voltage(node))

    def phase_deg(self, node: str, unwrap: bool = True) -> np.ndarray:
        """Phase [degrees] of the node voltage, unwrapped by default."""
        ph = np.angle(self.voltage(node))
        if unwrap:
            ph = np.unwrap(ph)
        return np.degrees(ph)


def small_signal_operator(system: MnaSystem, op: OperatingPoint,
                          frequencies: np.ndarray) -> np.ndarray:
    """Return the stacked complex MNA operators ``A[f] = G + j w C``."""
    G, C = system.small_signal_matrices(op)
    omega = 2.0 * np.pi * np.asarray(frequencies, dtype=float)
    return G[None, :, :] + 1j * omega[:, None, None] * C[None, :, :]


def _modal_solutions(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                     omega: np.ndarray,
                     cols: np.ndarray | None = None) -> np.ndarray | None:
    """Pole–residue AC solve; shapes ``(..., n, n)`` / ``(..., n)``.

    ``C`` is rank-deficient in any MNA system (most unknowns carry no
    capacitance), which makes the naive ``eig(G^-1 C)`` defective.  The
    Woodbury identity restricts the eigenproblem to C's column space:
    with ``C = C[:, cols] P`` (``P`` selecting C's nonzero columns),

        x(w) = y - j*w * U (I + j*w*S)^-1 P y,
        U = G^-1 C[:, cols],  S = P U,  y = G^-1 b,

    and ``S`` (r x r, r = number of dynamic columns) is generically
    diagonalisable — its eigenvalues are the negated reciprocal poles.

    Returns the stacked solutions ``(..., F, n)`` or None when the
    factorisations fail or produce non-finite values.  Accuracy is *not*
    guaranteed here — callers must verify against the direct operator
    (see :func:`_modal_residual_ok`).
    """
    dec = _modal_decompose(G, C, b, cols)
    if dec is None:
        return None
    y, lam, z, T = dec
    jw = 1j * omega[:, None]                                    # (F, 1)
    weights = jw * z[..., None, :] / (1.0 + jw * lam[..., None, :])
    X = y[..., None, :] - weights @ np.swapaxes(T, -1, -2)      # (..., F, n)
    if not np.all(np.isfinite(X)):
        return None
    return X


def _modal_decompose(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                     cols: np.ndarray | None):
    """Shared factorisation behind the modal solvers.

    Returns ``(y, lam, z, T)`` with ``x(w) = y - j*w * (z/(1+j*w*lam)) T^T``
    (last-axis contraction), or None when a factorisation fails.
    """
    if cols is None:
        # Dynamic columns: fixed by structure, shared across stacked designs.
        cols = np.nonzero(np.abs(C).max(axis=tuple(range(C.ndim - 1))) > 0.0)[0]
    if G.ndim == 3 and G.shape[0] == 1 and _DGESV is not None:
        # Batch of one (the scalar measurement path): route through the
        # low-overhead single-design LAPACK handles and re-stack — the
        # numpy wrappers cost as much as the 10-20 unknown factorisations.
        dec = _modal_decompose(G[0], C[0], b[0], cols)
        if dec is None:
            return None
        y, lam, z, T = dec
        return y[None], lam[None], z[None], T[None]
    r = len(cols)
    single = G.ndim == 2 and _DGESV is not None
    try:
        if r == 0:
            sol = np.linalg.solve(G, np.stack([b.real, b.imag], axis=-1))
            y = sol[..., 0] + 1j * sol[..., 1]
            shape = y.shape[:-1]
            return (y, np.zeros(shape + (0,)), np.zeros(shape + (0,)),
                    np.zeros(y.shape + (0,)))
        rhs = np.concatenate([C[..., :, cols], b.real[..., :, None],
                              b.imag[..., :, None]], axis=-1)
        if single:
            _, _, sol, info = _DGESV(G, rhs, overwrite_a=False,
                                     overwrite_b=True)
            if info != 0:
                return None
        else:
            sol = np.linalg.solve(G, rhs)
        U = sol[..., :r]                          # (..., n, r)
        y = sol[..., r] + 1j * sol[..., r + 1]    # (..., n)
        S = U[..., cols, :]                       # (..., r, r)
        if single:
            lam, V = _eig_single(np.ascontiguousarray(S))
            _, _, z, info = _ZGESV(V, y[cols], overwrite_a=False,
                                   overwrite_b=False)
            if info != 0:
                return None
        else:
            lam, V = np.linalg.eig(S)
            z = np.linalg.solve(V, (y[..., cols])[..., None])[..., 0]
        T = U @ V                                  # (..., n, r) complex
    except np.linalg.LinAlgError:
        return None
    return y, lam, z, T


def _modal_residual_ok(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                       omega: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Check ``(G + j w C) x = b`` at the sweep endpoints and midpoint.

    Returns a boolean (scalar for unbatched inputs, ``(B,)`` for stacked)
    marking solutions whose worst relative residual is below
    :data:`_MODAL_RTOL`.
    """
    # The modal form is exact at omega -> 0 by construction (x = G^-1 b),
    # so check where C matters: mid-sweep and the top frequency.
    checks = sorted({len(omega) // 2, len(omega) - 1})
    scale = np.abs(b).max(axis=-1) + 1e-300
    w = omega[checks]
    A = G[..., None, :, :] + 1j * w[:, None, None] * C[..., None, :, :]
    r = (A @ X[..., checks, :, None])[..., 0] - b[..., None, :]
    err = np.abs(r).max(axis=-1).max(axis=-1)
    return err <= _MODAL_RTOL * scale


def _direct_solutions(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                      omega: np.ndarray) -> np.ndarray:
    """Batched direct solve of ``(G + j w C) x = b`` over all frequencies."""
    A = G[..., None, :, :] + 1j * omega[:, None, None] * C[..., None, :, :]
    bF = np.broadcast_to(b[..., None, :, None], A.shape[:-1] + (1,))
    return np.linalg.solve(A, bF)[..., 0]


#: Cache of angular-frequency grids keyed by the identity of the frequency
#: array (topologies reuse one grid per measure).  Each entry holds a
#: strong reference to its key array, so an id can never be recycled while
#: the entry is alive, and a hit is confirmed by identity.
_OMEGA_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _omega_jw_for(frequencies: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(omega, j*omega[:, None])`` for a sweep grid."""
    hit = _OMEGA_CACHE.get(id(frequencies))
    if hit is not None and hit[0] is frequencies:
        return hit[1], hit[2]
    omega = 2.0 * np.pi * np.asarray(frequencies, dtype=float)
    jw = 1j * omega[:, None]
    if len(_OMEGA_CACHE) > 64:
        _OMEGA_CACHE.clear()
    _OMEGA_CACHE[id(frequencies)] = (frequencies, omega, jw)
    return omega, jw


def _omega_for(frequencies: np.ndarray) -> np.ndarray:
    return _omega_jw_for(frequencies)[0]


def _jw_for(frequencies: np.ndarray) -> np.ndarray:
    return _omega_jw_for(frequencies)[1]


def ac_solutions(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                 frequencies: np.ndarray,
                 cols: np.ndarray | None = None) -> np.ndarray:
    """Solve the small-signal operator over a sweep, modal-first.

    Works for one design (``G`` of shape ``(n, n)``) and for stacked
    designs (``(B, n, n)``); returns ``(F, n)`` / ``(B, F, n)``.
    ``cols`` optionally pins the dynamic (capacitive) columns, which are
    structure-determined and cacheable by the caller.
    """
    omega = _omega_for(frequencies)
    if _MODAL_ENABLED:
        X = _modal_solutions(G, C, b, omega, cols=cols)
        if X is not None:
            ok = _modal_residual_ok(G, C, b, omega, X)
            if np.all(ok):
                return X
            if X.ndim == 3 and np.any(ok):
                # Stacked: redo only the designs that failed verification.
                bad = ~ok
                X[bad] = _direct_solutions(G[bad], C[bad], b[bad], omega)
                return X
    return _direct_solutions(G, C, b, omega)


def ac_node_response(system: MnaSystem, op: OperatingPoint,
                     frequencies: np.ndarray, node: str) -> np.ndarray:
    """Complex small-signal response of one node over the sweep.

    The hot measurement path: most spec extraction needs a single output
    node, so the modal solution is projected onto that node directly —
    the full ``(F, n)`` solution matrix is never materialised.  The
    decomposition is still verified with full residual vectors at two
    sample frequencies; any trouble falls back to :func:`ac_sweep`.
    """
    idx = system.node_index[node]
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("AC sweep needs a non-empty 1-D frequency array")
    if idx < 0:
        return np.zeros(len(frequencies), dtype=complex)
    if not np.any(system.b_ac):
        raise AnalysisError(
            f"netlist {system.netlist.title!r} has no AC excitation "
            "(set ac= on a source)")
    if getattr(system, "sparse", False):
        return _sparse_sweep_solutions(system, op, frequencies)[:, idx]
    if _MODAL_ENABLED:
        G, C = system.small_signal_matrices(op)
        b = system.b_ac
        omega = _omega_for(frequencies)
        dec = _modal_decompose(G, C, b, system.dynamic_columns(C))
        if dec is not None:
            y, lam, z, T = dec
            jw = _jw_for(frequencies)
            weights = (jw * z) / (1.0 + jw * lam)            # (F, r)
            h = y[idx] - weights @ T[idx]
            # Verify with full residual vectors at mid and top frequency;
            # real arithmetic avoids promoting G/C to complex matrices.
            checks = [len(omega) // 2, len(omega) - 1]
            Xc = y - weights[checks] @ T.T                    # (2, n)
            Xr, Xi = Xc.real, Xc.imag
            w = omega[checks][:, None]
            Rr = Xr @ G.T - w * (Xi @ C.T) - b.real
            Ri = Xi @ G.T + w * (Xr @ C.T) - b.imag
            scale = np.abs(b).max() + 1e-300
            err = max(np.abs(Rr).max(), np.abs(Ri).max())
            if err <= _MODAL_RTOL * scale and np.all(np.isfinite(h)):
                return h
    return ac_sweep(system, op, frequencies).voltage(node)


def ac_node_response_batch(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                           frequencies: np.ndarray, node_index: int,
                           cols: np.ndarray | None = None) -> np.ndarray:
    """Stacked single-node AC responses: ``(B, n, n)`` operators ->
    ``(B, F)`` complex node voltages.

    The batched counterpart of :func:`ac_node_response`: one modal
    decomposition per design (all in stacked LAPACK calls), projected onto
    the output node, verified at two sample frequencies; designs failing
    verification are redone with the direct solver.
    """
    omega = _omega_for(frequencies)
    if _MODAL_ENABLED:
        dec = _modal_decompose(G, C, b, cols)
        if dec is not None:
            y, lam, z, T = dec
            jw = 1j * omega[None, :, None]                       # (1, F, 1)
            weights = (jw * z[:, None, :]) / (1.0 + jw * lam[:, None, :])
            Ti = T[:, node_index, :]                             # (B, r)
            h = y[:, None, node_index] - np.einsum(
                "bfr,br->bf", weights, Ti)
            checks = [len(omega) // 2, len(omega) - 1]
            Xc = y[:, None, :] - weights[:, checks] @ np.swapaxes(T, 1, 2)
            A = (G[:, None] + 1j * omega[checks][None, :, None, None]
                 * C[:, None])
            r = (A @ Xc[..., None])[..., 0] - b[:, None, :]
            scale = np.abs(b).max(axis=-1) + 1e-300
            ok = (np.abs(r).max(axis=-1).max(axis=-1) <= _MODAL_RTOL * scale)
            ok &= np.isfinite(h).all(axis=-1)
            if ok.all():
                return h
            bad = ~ok
            h[bad] = _direct_solutions(G[bad], C[bad], b[bad],
                                       omega)[:, :, node_index]
            return h
    return _direct_solutions(G, C, b, omega)[:, :, node_index]


def ac_sweep(system: MnaSystem, op: OperatingPoint,
             frequencies: np.ndarray) -> ACResult:
    """Solve the small-signal system over ``frequencies`` using the
    netlist's AC excitation vector (elements' ``ac`` values)."""
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("AC sweep needs a non-empty 1-D frequency array")
    if not np.any(system.b_ac):
        raise AnalysisError(
            f"netlist {system.netlist.title!r} has no AC excitation "
            "(set ac= on a source)")
    if getattr(system, "sparse", False):
        solutions = _sparse_sweep_solutions(system, op, frequencies)
        return ACResult(system=system, frequencies=frequencies,
                        solutions=solutions)
    G, C = system.small_signal_matrices(op)
    solutions = ac_solutions(G, C, system.b_ac, frequencies,
                             cols=system.dynamic_columns(C))
    return ACResult(system=system, frequencies=frequencies, solutions=solutions)


def _sparse_sweep_solutions(system: MnaSystem, op: OperatingPoint,
                            frequencies: np.ndarray) -> np.ndarray:
    """``(F, n)`` sweep solutions through the sparse engine's cached
    per-frequency ``splu`` factors."""
    from repro.sim.sparse import sweep_solve
    lus = system.sparse_sweep_lus(op, frequencies)
    return sweep_solve(lus, system.b_ac)


def transfer_function(system: MnaSystem, op: OperatingPoint,
                      frequencies: np.ndarray, output: str,
                      output_n: str = "0") -> np.ndarray:
    """Complex transfer function from the netlist's AC excitation to the
    differential voltage ``v(output) - v(output_n)``."""
    result = ac_sweep(system, op, frequencies)
    return result.voltage_between(output, output_n)
