"""Structure-cached stamping: build the MNA system once, restamp per sizing.

A topology's netlist has fixed *structure* across sizings — the same
elements connecting the same nodes — and only element *values* change as an
optimiser moves through the parameter grid.  :class:`StampPlan` exploits
this: the first evaluation builds a full :class:`~repro.sim.system.MnaSystem`
(validation, node ordering, branch allocation, scatter maps); every later
evaluation rebuilds only the netlist (the values mapping) and refreshes the
matrices in place through :meth:`MnaSystem.restamp`.

One plan corresponds to one ``(netlist builder, temperature)`` pair — in
practice one ``(topology, corner, temperature)`` combination.  Plans are
robust to structural drift: if a builder ever returns a netlist whose
structure differs from the cached one (e.g. a parasitic extractor dropping
a zero-valued capacitor for some sizing), the plan transparently rebuilds
the system and re-caches.
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.netlist import Netlist
from repro.sim.system import MnaSystem, StructureMismatch
from repro.units import ROOM_TEMPERATURE

#: Builds a sized netlist from physical parameter values.
NetlistBuilder = Callable[[dict[str, float]], Netlist]


class StampPlan:
    """Caches one :class:`MnaSystem`'s structure across sizings.

    Parameters
    ----------
    builder:
        ``values -> Netlist`` callable (``Topology.build``, possibly
        composed with a parasitic extractor).
    temperature:
        Simulation temperature [K] for the cached system.
    updater:
        Optional ``(netlist, values) -> bool`` callable that mutates a
        previously-built netlist's element values in place for a new
        sizing (``Topology.update_netlist``).  When it returns True the
        plan skips the netlist rebuild entirely — the fastest path.
    engine:
        Optional linear-algebra backend override (``"dense"``/``"sparse"``)
        forwarded to every :class:`MnaSystem` the plan builds; None (the
        default) lets each system resolve ``REPRO_ENGINE`` at build time
        (:mod:`repro.sim.engine`).
    """

    def __init__(self, builder: NetlistBuilder,
                 temperature: float = ROOM_TEMPERATURE,
                 updater=None, engine: str | None = None):
        self.builder = builder
        self.temperature = float(temperature)
        self.updater = updater
        self.engine = engine
        self._system: MnaSystem | None = None
        self._netlist = None
        self.rebuilds = 0      # structure (re)constructions, for diagnostics
        self.restamps = 0      # fast-path refreshes

    def restamp(self, values: dict[str, float]) -> MnaSystem:
        """Return the plan's system stamped with the sizing ``values``.

        The returned :class:`MnaSystem` is owned by the plan and reused —
        a later call restamps it in place, so callers must extract what
        they need (specs, operating point copies) before re-invoking.
        """
        if (self._system is not None and self.updater is not None
                and self._netlist is not None
                and self._system.netlist is self._netlist
                and self.updater(self._netlist, values)):
            self.restamps += 1
            return self._system.rebind_values()
        netlist = self.builder(values)
        self._netlist = netlist
        return self.restamp_netlist(netlist)

    def restamp_netlist(self, netlist: Netlist) -> MnaSystem:
        """Like :meth:`restamp` for an already-built netlist (used by
        mismatch Monte Carlo, which perturbs netlists directly)."""
        if self._system is not None:
            try:
                self._system.restamp(netlist)
                self.restamps += 1
                return self._system
            except StructureMismatch:
                self._system = None
        self._system = MnaSystem(netlist, temperature=self.temperature,
                                 engine=self.engine)
        self.rebuilds += 1
        return self._system

    def stack(self, values_list, into=None, offset: int = 0,
              n_slices: int | None = None, n_corners: int = 1):
        """Restamp every sizing in ``values_list`` and snapshot the results
        into a :class:`~repro.sim.batch.SystemStack`.

        ``into``/``offset`` let multi-plan callers (the corner-stacked PEX
        sweep) fill one shared stack from several plans: the first call
        creates the stack sized ``n_slices`` (default ``len(values_list)``),
        later calls append at ``offset``.  Returns the stack.
        """
        from repro.sim.batch import SystemStack
        for i, values in enumerate(values_list):
            system = self.restamp(values)
            if into is None:
                into = SystemStack(system, n_slices or len(values_list),
                                   n_corners=n_corners)
            into.set_design(offset + i, system, values=values)
        return into

    @property
    def system(self) -> MnaSystem | None:
        """The cached system (None before the first restamp)."""
        return self._system
