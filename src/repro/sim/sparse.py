"""Sparse (SuperLU) companion of the dense MNA machinery.

The dense engine expresses every per-device stamp as a matmul against
precomputed dense scatter maps and solves ``(n, n)`` (or stacked
``(B, n, n)``) systems with LAPACK.  Both choices stop scaling a little
past a hundred unknowns: the maps cost ``O(K n^2)`` memory and the solves
``O(n^3)`` time, while a post-PEX mesh or an RC-interconnect chain is
structurally ``O(n)`` sparse.

This module keeps the *assembly* layer intact — the dense ``G``/``C``
arrays of an :class:`~repro.sim.system.MnaSystem` remain the value source
of truth, stamped by exactly the same element code — and adds a
structure-cached sparse view on top:

* :class:`SparseState` — built once per MNA *structure* (the sparse
  mirror of the dense scatter maps).  It computes one **master sparsity
  pattern** in CSC order: the union of every linear element stamp
  (recorded by replaying ``Element.stamp`` against a pattern-recording
  stamper), every MOSFET companion/small-signal/capacitance stamp, and
  the full diagonal.  All sparse matrices of the structure — DC Newton
  Jacobians, small-signal ``G_ss``/``C_ss``, AC operators
  ``G + j w C``, transient iteration matrices — share this one pattern,
  so per-sizing work reduces to refreshing ``.data`` vectors in place:
  an ``O(nnz)`` gather from the dense arrays plus ``O(K)`` scatter-adds
  of the device quantities through precomputed position indices.
* :class:`SparseSlice` — a lightweight per-design view over a sparse
  :class:`~repro.sim.batch.SystemStack` slice that duck-types the
  ``newton_matrices``/``residual`` surface of :class:`MnaSystem`, so the
  scalar :func:`~repro.sim.dc.solve_dc` (damped Newton + gmin/source
  stepping) drives batched sparse solves unchanged.
* Factorisations are :func:`scipy.sparse.linalg.splu` objects.  An AC
  sweep factors each frequency point once and reuses the factors for
  forward solves *and* the noise adjoint (``A^T y = e`` via
  ``trans="T"``) — the system memoises the factor list per
  (operating point, frequency grid), so a measurement's gain sweep and
  noise referral share one set of LUs.

When scipy is unavailable the dense engine remains fully functional;
:data:`HAVE_SCIPY` gates the selector (see :mod:`repro.sim.engine`).
"""

from __future__ import annotations

import numpy as np

try:
    import scipy.sparse as _sp
    from scipy.sparse.linalg import splu as _splu
    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is present in the toolchain
    _sp = None
    _splu = None
    HAVE_SCIPY = False

from repro.circuits.mosfet import eval_companion_batch, eval_ids_batch
from repro.errors import AnalysisError


class _PatternStamper:
    """Records *where* elements stamp, ignoring the stamped values.

    Element stamps write unconditionally (values may be zero, positions
    may not change across sizings — that is the structure contract the
    restamp fast path already relies on), so replaying ``stamp`` once
    against this recorder yields the exact structural sparsity pattern.
    """

    def __init__(self, system):
        self._system = system
        self.g: set[tuple[int, int]] = set()
        self.c: set[tuple[int, int]] = set()

    def node(self, name: str) -> int:
        """Node name to MNA row index (ground maps to -1)."""
        return self._system.node_index[name]

    def branch(self, element) -> int:
        """Branch-current element to its auxiliary-row index."""
        return self._system.branch_index[element.name]

    def add_g(self, i: int, j: int, value: float) -> None:
        """Record a conductance-stamp position (values ignored)."""
        if i >= 0 and j >= 0:
            self.g.add((i, j))

    def add_c(self, i: int, j: int, value: float) -> None:
        """Record a capacitance-stamp position (values ignored)."""
        if i >= 0 and j >= 0:
            self.c.add((i, j))

    def add_b_dc(self, i: int, value: float) -> None:
        """Source stamps don't touch the matrix pattern — ignored."""

    def add_b_ac(self, i: int, value: float) -> None:
        """Source stamps don't touch the matrix pattern — ignored."""


class SparseState:
    """Structure-cached sparse assembly state of one :class:`MnaSystem`.

    Built once per structure (alongside the node ordering and terminal
    maps); restamps never touch it.  See the module docstring for the
    master-pattern design.
    """

    def __init__(self, system, netlist=None):
        if not HAVE_SCIPY:
            raise AnalysisError(
                "sparse engine requested but scipy is not installed "
                "(set REPRO_ENGINE=dense)")
        n = system.size
        self.n = n
        self.n_nodes = system.n_nodes

        rec = _PatternStamper(system)
        if netlist is None:
            netlist = system.netlist
        for element in netlist:
            if not element.is_nonlinear:
                element.stamp(rec)
        entries = set(rec.g) | set(rec.c)
        entries.update((i, i) for i in range(n))

        terms = system._terms_pad  # (K, 4) with ground routed to n == size
        for d, g, s, b in terms:
            d, g, s, b = int(d), int(g), int(s), int(b)
            for row in (d, s):
                if row >= n:
                    continue
                for col in (d, g, s, b):
                    if col < n:
                        entries.add((row, col))
            for i, j in ((g, s), (g, d), (d, b), (s, b)):
                if i < n:
                    entries.add((i, i))
                if j < n:
                    entries.add((j, j))
                if i < n and j < n:
                    entries.add((i, j))
                    entries.add((j, i))

        rows, cols = (np.array(sorted(entries), dtype=np.intp).reshape(-1, 2).T
                      if entries else
                      (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)))
        pattern = _sp.csc_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n))
        pattern.sum_duplicates()
        pattern.sort_indices()
        coo = pattern.tocoo()
        #: Master-pattern coordinates in CSC data order (gather/densify).
        self.pat_rows = coo.row.astype(np.intp)
        self.pat_cols = coo.col.astype(np.intp)
        self.indices = pattern.indices.copy()
        self.indptr = pattern.indptr.copy()
        self.nnz = pattern.nnz
        pos = {(int(r), int(c)): k
               for k, (r, c) in enumerate(zip(self.pat_rows, self.pat_cols))}
        self._diag_pos = np.array([pos[(i, i)] for i in range(n)],
                                  dtype=np.intp)
        #: Positions of the node-diagonal entries (gmin stamping).
        self.node_diag_pos = self._diag_pos[:self.n_nodes]

        # Device scatter indices: (data position, source index into the
        # flattened device-quantity array, sign) triples, mirroring the
        # dense maps of MnaSystem._build_scatter_maps entry for entry.
        nw, ss, cap = [], [], []
        rhs = []
        for k, (d, g, s, b) in enumerate(terms):
            d, g, s, b = int(d), int(g), int(s), int(b)
            for t, col in enumerate((d, g, s, b)):
                if col >= n:
                    continue
                if d < n:
                    nw.append((pos[(d, col)], 4 * k + t, 1.0))
                if s < n:
                    nw.append((pos[(s, col)], 4 * k + t, -1.0))
            if d < n:
                rhs.append((d, k, -1.0))
            if s < n:
                rhs.append((s, k, 1.0))
            # Small-signal stamp of i_d = gm*vgs + gds*vds + gmb*vbs.
            for q, col_q in enumerate((g, d, b)):
                for col, sign in ((col_q, 1.0), (s, -1.0)):
                    if col >= n:
                        continue
                    if d < n:
                        ss.append((pos[(d, col)], 3 * k + q, sign))
                    if s < n:
                        ss.append((pos[(s, col)], 3 * k + q, -sign))
            for t, (i, j) in enumerate(((g, s), (g, d), (d, b), (s, b))):
                if i < n:
                    cap.append((pos[(i, i)], 4 * k + t, 1.0))
                if j < n:
                    cap.append((pos[(j, j)], 4 * k + t, 1.0))
                if i < n and j < n:
                    cap.append((pos[(i, j)], 4 * k + t, -1.0))
                    cap.append((pos[(j, i)], 4 * k + t, -1.0))

        def _split(triples):
            if not triples:
                z = np.empty(0, dtype=np.intp)
                return z, z.copy(), np.empty(0)
            p, src, sign = zip(*triples)
            return (np.array(p, dtype=np.intp), np.array(src, dtype=np.intp),
                    np.array(sign))

        self._nw_pos, self._nw_src, self._nw_sign = _split(nw)
        self._rhs_pos, self._rhs_src, self._rhs_sign = _split(rhs)
        self._ss_pos, self._ss_src, self._ss_sign = _split(ss)
        self._cap_pos, self._cap_src, self._cap_sign = _split(cap)
        self._block_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- data plumbing -------------------------------------------------------
    def gather(self, dense: np.ndarray) -> np.ndarray:
        """Master-pattern ``.data`` vector of a dense matrix (O(nnz))."""
        return np.ascontiguousarray(dense[self.pat_rows, self.pat_cols])

    def matrix(self, data: np.ndarray):
        """CSC matrix over the master pattern with the given ``.data``."""
        return _sp.csc_matrix((data, self.indices, self.indptr),
                              shape=(self.n, self.n))

    def densify(self, data: np.ndarray) -> np.ndarray:
        """Dense ``(..., n, n)`` matrices from ``(..., nnz)`` data rows.

        The bridge for dense-only consumers (stacked measurement, batch
        transient) running against a sparse :class:`SystemStack`; cheap at
        the small sizes where those paths are used.
        """
        out = np.zeros(data.shape[:-1] + (self.n, self.n))
        out[..., self.pat_rows, self.pat_cols] = data
        return out

    # -- assembly ------------------------------------------------------------
    def newton_data(self, G_data: np.ndarray, g: np.ndarray) -> np.ndarray:
        """``G + J_nl`` data: linear base plus companion conductances
        ``g`` (shape ``(K, 4)``) scattered through the position indices."""
        data = G_data.copy()
        if self._nw_pos.size:
            np.add.at(data, self._nw_pos,
                      self._nw_sign * g.reshape(-1)[self._nw_src])
        return data

    def add_rhs_currents(self, rhs: np.ndarray, i_eq: np.ndarray) -> None:
        """Scatter-add per-device equivalent currents into a RHS vector."""
        if self._rhs_pos.size:
            np.add.at(rhs, self._rhs_pos,
                      self._rhs_sign * i_eq[self._rhs_src])

    def ss_data(self, G_data: np.ndarray, C_data: np.ndarray,
                g3: np.ndarray, c4: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
        """Small-signal ``(G_ss, C_ss)`` data from linear bases plus the
        stacked ``(gm, gds, gmb)`` / capacitance stamp values."""
        Gd = G_data.copy()
        if self._ss_pos.size:
            np.add.at(Gd, self._ss_pos, self._ss_sign * g3[self._ss_src])
        return Gd, self.cap_data(C_data, c4)

    def cap_data(self, C_data: np.ndarray, c4: np.ndarray) -> np.ndarray:
        """``C`` data including device capacitances ``c4`` (flattened)."""
        Cd = C_data.copy()
        if self._cap_pos.size:
            np.add.at(Cd, self._cap_pos, self._cap_sign * c4[self._cap_src])
        return Cd

    # -- factorisation -------------------------------------------------------
    def lu(self, data: np.ndarray):
        """``splu`` factorisation of the master-pattern matrix ``data``;
        None when the matrix is singular (callers treat it like a failed
        dense factorisation)."""
        try:
            return _splu(self.matrix(data))
        except RuntimeError:
            return None

    def block_pattern(self, F: int) -> tuple[np.ndarray, np.ndarray]:
        """CSC ``(indices, indptr)`` of ``F`` master-pattern blocks
        stacked block-diagonally (cached per ``F``)."""
        cache = self._block_cache
        hit = cache.get(F)
        if hit is not None:
            return hit
        indices = (self.indices[None, :]
                   + (np.arange(F) * self.n)[:, None]).ravel()
        indptr = np.append(
            (self.indptr[None, :-1]
             + (np.arange(F) * self.nnz)[:, None]).ravel(),
            F * self.nnz)
        cache[F] = (indices, indptr)
        return cache[F]

    def sweep_lus(self, G_data: np.ndarray, C_data: np.ndarray,
                  omega: np.ndarray) -> "SweepFactorization":
        """Factor ``G + j w C`` at every sweep frequency.

        Returns the cached-factor object the AC/noise layer memoises per
        operating point; it serves the forward sweep and the noise
        adjoint (``trans="T"``) alike — see :class:`SweepFactorization`.
        """
        return SweepFactorization(self, G_data, C_data, omega)


class SweepFactorization:
    """``splu`` factors of a whole frequency sweep, solved in one call.

    The per-frequency operators share the master pattern, so the sweep
    stacks them into one block-diagonal CSC matrix and factors it with a
    *single* ``splu`` call — SuperLU's per-invocation setup, which
    dwarfs the numeric work of one ~1000-nnz block, is paid once per
    sweep instead of once per frequency (~1.6x on a 37-point sweep of
    the 221-unknown chain).  Fill-in cannot cross block boundaries, so
    the factorisation is exactly the per-frequency one, reordered.

    A singular stacked factorisation (one bad frequency poisons the
    block) falls back to per-frequency factors to produce the precise
    error message.
    """

    def __init__(self, state: SparseState, G_data: np.ndarray,
                 C_data: np.ndarray, omega: np.ndarray):
        self._state = state
        self.F = len(omega)
        self.n = state.n
        data = (G_data[None, :]
                + (1j * omega)[:, None] * C_data[None, :]).ravel()
        indices, indptr = state.block_pattern(self.F)
        A = _sp.csc_matrix((data, indices, indptr),
                           shape=(self.F * self.n, self.F * self.n))
        try:
            self._lu = _splu(A)
        except RuntimeError:
            self._lu = None
            Gc = G_data.astype(complex)
            for w in omega:
                if state.lu(Gc + (1j * w) * C_data) is None:
                    raise AnalysisError(
                        "sparse AC operator is singular at "
                        f"omega = {w:.3e} rad/s")
            raise AnalysisError("sparse AC sweep factorisation failed")

    def solve(self, b: np.ndarray, adjoint: bool = False) -> np.ndarray:
        """Solve all frequency points against one RHS -> ``(F, n)``.

        ``adjoint`` solves ``A^T x = b`` through the same factors (the
        noise adjoint; block-diagonal transpose is per-block transpose).
        """
        rhs = np.tile(np.asarray(b, dtype=complex), self.F)
        trans = "T" if adjoint else "N"
        return self._lu.solve(rhs, trans=trans).reshape(self.F, self.n)


def stack_sweep_factors(stack, rows: np.ndarray, g3: np.ndarray,
                        c4: np.ndarray, omega: np.ndarray
                        ) -> list[SweepFactorization]:
    """Per-design :class:`SweepFactorization` list for sparse stack slices.

    The stacked-measurement primitive of the sparse engine: instead of
    densifying a sparse :class:`~repro.sim.batch.SystemStack` into
    ``(B, n, n)`` operators, each design's small-signal ``.data`` rows are
    assembled on the master pattern (linear base from the stack's
    ``G_pat``/``C_pat`` snapshot plus the device ``g3``/``c4`` stamp
    values, shapes ``(B, 3K)`` / ``(B, 4K)``) and factored with one
    block-diagonal ``splu`` per design — exactly the scalar AC path of
    :meth:`repro.sim.system.MnaSystem.sparse_sweep_lus`, applied slice by
    slice.  Callers memoise the returned factors so the forward sweep and
    the noise adjoint of one measurement share them.  Iterative-engine
    stacks get per-design :class:`~repro.sim.krylov.KrylovSweep` objects
    instead — same ``solve(b, adjoint=)`` contract, shared solve counters.
    """
    tpl = stack.template
    if getattr(tpl, "iterative", False):
        from repro.sim.krylov import stack_sweep_factors_krylov
        return stack_sweep_factors_krylov(stack, rows, g3, c4, omega,
                                          stats=tpl.krylov_state.stats)
    st = tpl.sparse_state
    facts = []
    for j, r in enumerate(rows):
        Gd, Cd = st.ss_data(stack.G_pat[r], stack.C_pat[r], g3[j], c4[j])
        facts.append(SweepFactorization(st, Gd, Cd, omega))
    return facts


def sweep_solve(fact: SweepFactorization, b: np.ndarray,
                adjoint: bool = False) -> np.ndarray:
    """Solve every factored frequency point against one RHS.

    ``adjoint`` solves ``A^T x = b`` through the same factors (the noise
    adjoint path; callers conjugate, since ``A^H = conj(A^T)`` for the
    real-``G/C`` operators here).  Returns ``(F, n)`` complex.
    """
    return fact.solve(b, adjoint=adjoint)


class SparseSlice:
    """Scalar Newton view of one slice of a sparse
    :class:`~repro.sim.batch.SystemStack`.

    Duck-types the surface :func:`repro.sim.dc.solve_dc` consumes
    (``size``/``n_nodes``/``netlist``/``temperature``,
    :meth:`newton_matrices`, :meth:`residual`, ``device_arrays``) so the
    scalar damped-Newton driver — including its gmin/source-stepping
    fallbacks — runs each stacked design against sparse factorisations
    without a dense ``(n, n)`` materialisation.
    """

    def __init__(self, stack, i: int):
        tpl = stack.template
        self._st = tpl.sparse_state
        self._tpl = tpl
        self.size = stack.size
        self.n_nodes = stack.n_nodes
        self.netlist = tpl.netlist
        self.node_index = tpl.node_index
        self.branch_index = tpl.branch_index
        self.temperature = float(stack.temperatures[i])
        self._G_data = stack.G_pat[i]
        self._b_dc = stack.b_dc[i]
        self._dev = stack.dev.take(i) if stack.dev is not None else None
        self._G_csc = self._st.matrix(self._G_data)
        if getattr(tpl, "iterative", False):
            # Per-slice ILU cache (each design's Jacobian drifts on its
            # own), counters shared with the template system's stats.
            from repro.sim.krylov import KrylovState
            self._krylov = KrylovState(self._st, stats=tpl.krylov_state.stats)
        else:
            self._krylov = None

    @property
    def device_arrays(self):
        return self._dev

    def _terminal_voltages(self, x: np.ndarray) -> np.ndarray:
        """Device terminal voltages at state ``x`` (ground padded as 0)."""
        xp = np.append(x, 0.0)
        return xp[self._tpl._terms_pad]

    def newton_matrices(self, x: np.ndarray, gmin: float = 0.0,
                        source_scale: float = 1.0):
        """Sparse ``(A, rhs)`` of this slice's companion-model system —
        the :meth:`MnaSystem.newton_matrices` contract over CSC."""
        st = self._st
        rhs = source_scale * self._b_dc
        if self._dev is not None:
            V = self._terminal_voltages(x)
            i_d, g = eval_companion_batch(self._dev, V)
            data = st.newton_data(self._G_data, g)
            st.add_rhs_currents(rhs, i_d - (g * V).sum(-1))
        else:
            data = self._G_data.copy()
        if gmin > 0.0:
            data[st.node_diag_pos] += gmin
        if self._krylov is not None:
            return self._krylov.operator(
                data, x0=np.array(x[:self.size], dtype=float),
                gmin=gmin), rhs
        return st.matrix(data), rhs

    def residual(self, x: np.ndarray, source_scale: float = 1.0) -> np.ndarray:
        """KCL/KVL residual ``F(x)`` of this slice (convergence gate)."""
        f = self._G_csc @ x - source_scale * self._b_dc
        if self._dev is not None:
            V = self._terminal_voltages(x)
            f += eval_ids_batch(self._dev, V) @ self._tpl._res_map
        return f

    def state_arrays_for(self, dev, x: np.ndarray) -> dict[str, np.ndarray]:
        """Stacked device-state fields at ``x`` (lazy OperatingPoint hook)."""
        return self._tpl.state_arrays_for(dev, x)


def solve_dc_batch_sparse(stack, x0: np.ndarray | None = None, *,
                          max_iter: int = 120, vtol: float = 1e-3,
                          itol: float = 1e-9, damping: float = 0.4):
    """Sparse counterpart of :func:`repro.sim.batch.solve_dc_batch`.

    Large systems are device-bound, not dispatch-bound, so the batch runs
    as a per-design loop of scalar sparse solves (same Newton algebra,
    same gmin/source-stepping schedules, same canonical seeds) instead of
    a stacked ``(B, n, n)`` factorisation.  Results carry the identical
    :class:`~repro.sim.batch.BatchDcResult` contract.
    """
    from repro.errors import ConvergenceError
    from repro.sim.batch import BatchDcResult
    from repro.sim.dc import solve_dc

    B, n = stack.n_designs, stack.size
    X = np.zeros((B, n))
    converged = np.zeros(B, dtype=bool)
    iterations = np.zeros(B, dtype=np.int64)
    fnorm = np.full(B, np.inf)
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (B, n):
            raise ValueError(f"x0 has shape {x0.shape}, expected {(B, n)}")
    for i in range(B):
        view = SparseSlice(stack, i)
        try:
            op = solve_dc(view, x0=None if x0 is None else x0[i].copy(),
                          max_iter=max_iter, vtol=vtol, itol=itol,
                          damping=damping)
        except ConvergenceError as err:
            r = getattr(err, "residual", None)
            fnorm[i] = float(r) if r is not None else np.inf
            continue
        X[i] = op.x
        converged[i] = True
        iterations[i] = op.iterations
        fnorm[i] = op.residual_norm
    return BatchDcResult(x=X, converged=converged, iterations=iterations,
                         residual_norm=fnorm)
