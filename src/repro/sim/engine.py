"""Linear-algebra engine selection: dense LAPACK, sparse SuperLU, or
ILU-preconditioned Krylov iteration.

The repo's historical circuits have 5–40 unknowns, where dense matrices
(and the dense stamp scatter maps of :mod:`repro.sim.system`) beat any
sparse format on both constant factors and simplicity.  Post-PEX mesh
netlists and the RC-interconnect chain scenarios push the unknown count
into the hundreds, where the dense ``O(n^3)`` solves (and the
``O(K n^2)`` scatter maps) stop scaling; those systems route their
factorisations through :mod:`repro.sim.sparse` instead.  Power-grid
meshes (:class:`~repro.topologies.power_grid.PowerGridOta`) push another
order of magnitude, past the point where SuperLU's superlinear fill-in
and ordering cost dominate — those systems keep the sparse *assembly*
(the CSC master pattern) but solve iteratively through
:mod:`repro.sim.krylov` (ILU-preconditioned GMRES/BiCGSTAB with
factor-reuse across Newton steps and frequency points).

Selection contract
------------------
``REPRO_ENGINE`` picks the backend for every :class:`~repro.sim.system.
MnaSystem` built afterwards (the variable is read at *construction* time,
so tests can monkeypatch it per-case):

* ``auto`` (default) — dense below :data:`SPARSE_AUTO_THRESHOLD`
  unknowns, sparse direct between the two thresholds, iterative at or
  above :data:`ITERATIVE_AUTO_THRESHOLD`.  Both thresholds sit at
  empirically-measured crossovers (``benchmarks/bench_sparse_engine.py``
  and ``benchmarks/bench_krylov_engine.py``) and are env-tunable via
  ``REPRO_SPARSE_THRESHOLD`` / ``REPRO_ITERATIVE_THRESHOLD`` for
  machines whose crossover sits elsewhere.
* ``dense`` — force dense everywhere (the pre-PR-3 behaviour).
* ``sparse`` — force sparse direct everywhere, including the small
  circuits.  Slower there (SuperLU's per-call overhead dwarfs a 15x15
  factorisation) but invaluable for the engine-equivalence test matrix.
* ``iterative`` — force the Krylov leg everywhere.  Same assembly as
  ``sparse``; solves run preconditioned GMRES with a direct-``splu``
  fallback on non-convergence, so forcing it is always safe.

Callers that need a specific backend regardless of the environment pass
``engine="dense"``/``"sparse"``/``"iterative"`` explicitly to
:class:`MnaSystem` or :class:`~repro.sim.stamp.StampPlan`.
"""

from __future__ import annotations

import os

#: ``auto`` switches from dense to the sparse backend at this many MNA
#: unknowns.  Set from the crossover measured in
#: ``benchmarks/bench_sparse_engine.py`` on warm full evaluations of the
#: OTA chain family: dense wins ~1.6x at 41 unknowns, sparse wins ~2x at
#: 125 and ~3x at 221, so the single-eval crossover sits around 60-90.
#: The threshold is kept above it because *batched* workloads amortise
#: dense dispatch over the stack — 128 keeps every pre-chain topology
#: (schematic and lumped PEX) on the measured dense batch path while
#: routing mesh/chain scenarios sparse.
SPARSE_AUTO_THRESHOLD = 128

#: ``auto`` switches from sparse direct to the Krylov leg at this many
#: unknowns.  Set from ``benchmarks/bench_krylov_engine.py`` on the
#: power-grid OTA family: warm full evaluations break even around the
#: 1.3k-unknown mesh (1.08x, within run-to-run noise) and win clearly
#: from the 5k mesh up (1.5x), with the gap widening as ``splu``'s
#: superlinear fill-in cost pulls away from the reused-ILU iterative
#: solves (warm DC linear algebra 2.4x, AC sweeps ~5x at 15k); 4096
#: sits above the noisy breakeven band so every workload the direct
#: path clearly wins stays on it.
ITERATIVE_AUTO_THRESHOLD = 4096

#: Environment variables overriding the ``auto`` thresholds at runtime.
SPARSE_THRESHOLD_ENV = "REPRO_SPARSE_THRESHOLD"
ITERATIVE_THRESHOLD_ENV = "REPRO_ITERATIVE_THRESHOLD"

_MODES = ("auto", "dense", "sparse", "iterative")
_EXPLICIT = ("dense", "sparse", "iterative")


def _env_threshold(env: str, default: int) -> int:
    """An ``auto`` threshold from the environment (forgiving parse).

    Malformed or negative values fall back to ``default`` rather than
    raising — a tuning knob must never turn a working simulation into a
    crash (the same contract as :func:`engine_mode`).
    """
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def sparse_threshold() -> int:
    """Unknown count at which ``auto`` leaves the dense backend
    (``REPRO_SPARSE_THRESHOLD``, default
    :data:`SPARSE_AUTO_THRESHOLD`)."""
    return _env_threshold(SPARSE_THRESHOLD_ENV, SPARSE_AUTO_THRESHOLD)


def iterative_threshold() -> int:
    """Unknown count at which ``auto`` switches from sparse direct to
    the Krylov leg (``REPRO_ITERATIVE_THRESHOLD``, default
    :data:`ITERATIVE_AUTO_THRESHOLD`)."""
    return _env_threshold(ITERATIVE_THRESHOLD_ENV, ITERATIVE_AUTO_THRESHOLD)


def engine_mode() -> str:
    """The configured engine mode (``auto``/``dense``/``sparse``/
    ``iterative``).

    Unknown values fall back to ``auto`` rather than raising: an engine
    knob must never turn a working simulation into a crash.
    """
    mode = os.environ.get("REPRO_ENGINE", "auto").strip().lower()
    return mode if mode in _MODES else "auto"


def resolve_engine(size: int, engine: str | None = None) -> str:
    """Resolve the backend for a system of ``size`` unknowns to one of
    ``"dense"``/``"sparse"``/``"iterative"``.

    ``engine`` overrides the environment when given (``"auto"`` and None
    defer to :func:`engine_mode`).  Unlike the forgiving environment
    knob, a bad *explicit* override is a programming error and raises —
    a typo must not silently hand a backend-pinned test the wrong
    engine.  ``auto`` applies both thresholds: dense below
    :func:`sparse_threshold`, iterative at or above
    :func:`iterative_threshold`, sparse direct in between.
    """
    if engine not in (None, *_MODES):
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {_MODES}")
    mode = engine if engine in _EXPLICIT else engine_mode()
    if mode in _EXPLICIT:
        return mode
    if size >= iterative_threshold():
        return "iterative"
    if size >= sparse_threshold():
        return "sparse"
    return "dense"


def use_sparse(size: int, engine: str | None = None) -> bool:
    """Whether a system of ``size`` unknowns assembles on the CSC master
    pattern (True for both the sparse-direct and iterative legs).

    Kept as the historical boolean entry point; callers that need the
    three-way decision use :func:`resolve_engine`.
    """
    return resolve_engine(size, engine) != "dense"
