"""Linear-algebra engine selection: dense LAPACK vs sparse SuperLU.

The repo's historical circuits have 5–40 unknowns, where dense matrices
(and the dense stamp scatter maps of :mod:`repro.sim.system`) beat any
sparse format on both constant factors and simplicity.  Post-PEX mesh
netlists and the RC-interconnect chain scenarios push the unknown count
into the hundreds, where the dense ``O(n^3)`` solves (and the
``O(K n^2)`` scatter maps) stop scaling; those systems route their
factorisations through :mod:`repro.sim.sparse` instead.

Selection contract
------------------
``REPRO_ENGINE`` picks the backend for every :class:`~repro.sim.system.
MnaSystem` built afterwards (the variable is read at *construction* time,
so tests can monkeypatch it per-case):

* ``auto`` (default) — dense below :data:`SPARSE_AUTO_THRESHOLD`
  unknowns, sparse at or above it.  The threshold sits well above every
  schematic/PEX topology shipped before the chain scenarios, so existing
  workloads keep their measured dense performance bit for bit.
* ``dense`` — force dense everywhere (the pre-PR-3 behaviour).
* ``sparse`` — force sparse everywhere, including the small circuits.
  Slower there (SuperLU's per-call overhead dwarfs a 15x15
  factorisation) but invaluable for the engine-equivalence test matrix.

Callers that need a specific backend regardless of the environment pass
``engine="dense"``/``"sparse"`` explicitly to :class:`MnaSystem` or
:class:`~repro.sim.stamp.StampPlan`.
"""

from __future__ import annotations

import os

#: ``auto`` switches to the sparse backend at this many MNA unknowns.
#: Set from the crossover measured in ``benchmarks/bench_sparse_engine.py``
#: on warm full evaluations of the OTA chain family: dense wins ~1.6x at
#: 41 unknowns, sparse wins ~2x at 125 and ~3x at 221, so the single-eval
#: crossover sits around 60-90.  The threshold is kept above it because
#: *batched* workloads amortise dense dispatch over the stack — 128 keeps
#: every pre-chain topology (schematic and lumped PEX) on the measured
#: dense batch path while routing mesh/chain scenarios sparse.
SPARSE_AUTO_THRESHOLD = 128

_MODES = ("auto", "dense", "sparse")


def engine_mode() -> str:
    """The configured engine mode (``auto``/``dense``/``sparse``).

    Unknown values fall back to ``auto`` rather than raising: an engine
    knob must never turn a working simulation into a crash.
    """
    mode = os.environ.get("REPRO_ENGINE", "auto").strip().lower()
    return mode if mode in _MODES else "auto"


def use_sparse(size: int, engine: str | None = None) -> bool:
    """Decide the backend for a system of ``size`` unknowns.

    ``engine`` overrides the environment when given (``"dense"`` /
    ``"sparse"``; ``"auto"`` and None defer to :func:`engine_mode`).
    Unlike the forgiving environment knob, a bad *explicit* override is
    a programming error and raises — a typo must not silently hand a
    sparse-pinned test the dense backend.
    """
    if engine not in (None, *_MODES):
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {_MODES}")
    mode = engine if engine in ("dense", "sparse") else engine_mode()
    if mode == "dense":
        return False
    if mode == "sparse":
        return True
    return size >= SPARSE_AUTO_THRESHOLD
