"""Batched DC operating-point solves over stacked same-structure systems.

The sequential simulator costs are dominated by Python/numpy dispatch, not
arithmetic: a 10–20 unknown Newton iteration spends microseconds in LAPACK
and tens of microseconds in interpreter overhead.  Evaluating B designs of
one topology at once amortises that overhead — device models evaluate on
``(B, K)`` arrays, companion stamps scatter through one matmul, and the
linear solves run as one batched ``numpy.linalg.solve`` over ``(B, n, n)``.

:class:`SystemStack` collects restamped :class:`~repro.sim.system.MnaSystem`
snapshots; :func:`solve_dc_batch` mirrors :func:`~repro.sim.dc.solve_dc`'s
strategy — damped Newton, then gmin stepping, then source stepping — with
per-design convergence masking, so converged designs drop out of the
batched linear algebra while stragglers keep iterating.

Stacked-evaluation contract
---------------------------
A stack is a flat sequence of *slices*, each one a same-structure system
snapshot.  What a slice means is the caller's business:

* **designs** — ``Topology.simulate_batch`` stacks B sizings of one
  topology (one slice per design);
* **designs × corners** — :class:`~repro.pex.extraction.PexSimulator`
  stacks every PVT corner of every design, *corner-major* (slice
  ``k * B + i`` is design ``i`` at corner ``k``), records the corner
  count in :attr:`SystemStack.n_corners`, and reduces the measured spec
  arrays worst-case over the corner axis;
* **mismatch samples** — Monte Carlo stacks perturbed instances of one
  sizing (one slice per draw).

All three ride the same ``(B·K, n, n)`` damped-Newton solve and the same
stacked measurement layer.  Per-slice metadata captured at
:meth:`SystemStack.set_design` time — simulation temperature, the sizing
``values`` dict, resistor thermal-noise constants — lets batched
measurements (AC, step response, noise) run without ever re-binding the
template system to an individual slice.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.elements import Resistor
from repro.circuits.mosfet import (
    DeviceArrays,
    eval_companion_batch,
    eval_ids_batch,
)
from repro.sim.dc import _POLISH_ITERS, _POLISH_STAG
from repro.sim.system import MnaSystem
from repro.units import BOLTZMANN

#: gmin-stepping and source-stepping schedules (mirrors repro.sim.dc).
_GMIN_STEPS = (1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 0.0)
_SOURCE_STEPS = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class SystemStack:
    """Same-structure MNA system snapshots stacked into batch arrays.

    Built by restamping one template :class:`MnaSystem` per slice and
    snapshotting its value arrays; the (shared) structure — terminal maps,
    scatter matrices, sizes — is referenced from the template.

    ``n_designs`` counts *slices*.  A multi-corner stack flattens the
    (design, corner) grid corner-major into ``n_designs = B * K`` slices
    and records ``n_corners = K`` so the caller can reduce spec arrays
    over the corner axis (see the module docstring for the contract).

    Besides the ``G/C/b`` value arrays, each :meth:`set_design` captures
    per-slice measurement metadata: the slice's simulation temperature,
    an optional sizing ``values`` dict, and the thermal-noise PSD constant
    ``4 k T / R`` of every resistor — everything the batched measurement
    layer needs that is not derivable from the matrices alone.
    """

    def __init__(self, template: MnaSystem, n_designs: int,
                 n_corners: int = 1):
        if n_designs < 1:
            raise ValueError("SystemStack needs at least one design")
        if n_corners < 1 or n_designs % n_corners:
            raise ValueError(
                f"corner axis {n_corners} does not divide {n_designs} slices")
        n = template.size
        self.template = template
        self.size = n
        self.n_nodes = template.n_nodes
        self.n_designs = n_designs
        self.n_corners = n_corners
        #: Sparse-engine stacks snapshot master-pattern ``.data`` rows
        #: (``(B, nnz)``) instead of dense ``(B, n, n)`` matrices; dense
        #: consumers go through :meth:`G_rows`/:meth:`C_rows`, which
        #: reconstruct on demand (cheap at the sizes where they run).
        self.sparse = bool(getattr(template, "sparse", False))
        if self.sparse:
            nnz = template.sparse_state.nnz
            self.G = self.C = None
            self.G_pat = np.empty((n_designs, nnz))
            self.C_pat = np.empty((n_designs, nnz))
        else:
            self.G = np.empty((n_designs, n, n))
            self.C = np.empty((n_designs, n, n))
        self.b_dc = np.empty((n_designs, n))
        self.b_ac = np.empty((n_designs, n), dtype=complex)
        self.temperatures = np.empty(n_designs)
        self.values: list[dict | None] = [None] * n_designs
        self._devs: list[DeviceArrays | None] = [None] * n_designs
        self.dev: DeviceArrays | None = None
        self._filled = 0
        # Structure-fixed resistor noise topology: (R, 2) node-index pairs
        # (-1 marks ground, as in node_index) plus per-slice PSD constants.
        names = []
        idx = []
        for element in template.netlist:
            if isinstance(element, Resistor):
                names.append(element.name)
                idx.append((template.node_index[element.p],
                            template.node_index[element.n]))
        self.noise_res_names: tuple[str, ...] = tuple(names)
        self.noise_res_idx = np.asarray(idx, dtype=np.intp).reshape(-1, 2)
        self.noise_res_psd = np.empty((n_designs, len(names)))
        #: Per-slice resistance of every resistor (same column order as
        #: ``noise_res_names``); the measurement pipeline reads element
        #: values (e.g. the TIA's feedback resistor for noise referral)
        #: from here instead of re-binding netlists or requiring the
        #: per-slice ``values`` dicts.
        self.noise_res_r = np.empty((n_designs, len(names)))

    def set_design(self, i: int, system: MnaSystem,
                   values: dict[str, float] | None = None) -> None:
        """Snapshot ``system``'s current values as slice ``i``."""
        if system.size != self.size:
            raise ValueError("system size does not match the stack")
        if self.sparse:
            st = self.template.sparse_state
            self.G_pat[i] = st.gather(system.G)
            self.C_pat[i] = st.gather(system.C)
        else:
            self.G[i] = system.G
            self.C[i] = system.C
        self.b_dc[i] = system.b_dc
        self.b_ac[i] = system.b_ac
        self.temperatures[i] = system.temperature
        self.values[i] = values
        four_kt = 4.0 * BOLTZMANN * system.temperature
        for r, name in enumerate(self.noise_res_names):
            resistance = system.netlist[name].resistance
            self.noise_res_r[i, r] = resistance
            self.noise_res_psd[i, r] = four_kt / resistance
        self._devs[i] = system.device_arrays
        self._filled += 1
        if self._filled == self.n_designs and self._devs[0] is not None:
            self.dev = DeviceArrays.stack(self._devs)  # (B, K) fields

    def reuse(self) -> None:
        """Reset the fill counter so every slice can be re-snapshotted.

        The scalar measurement path keeps one one-slice stack per
        topology and refills it per sizing; without the reset,
        :meth:`set_design` would skip re-stacking the device bank."""
        self._filled = 0

    def resistances(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Per-slice resistance of resistor ``name`` for slices ``rows``.

        The batched measurement layer's element-value accessor: spec
        extraction that needs a component value (e.g. noise referral
        through a feedback resistor) reads the value captured at
        :meth:`set_design` time instead of requiring per-slice sizing
        dicts — so every slice of every stack is measurable stacked.
        """
        try:
            col = self.noise_res_names.index(name)
        except ValueError:
            raise KeyError(f"stack has no resistor {name!r}") from None
        return self.noise_res_r[rows, col]

    def G_rows(self, rows: np.ndarray) -> np.ndarray:
        """Dense ``(len(rows), n, n)`` conductance matrices of ``rows``
        (a view for dense stacks, a reconstruction for sparse ones)."""
        if not self.sparse:
            return self.G[rows]
        return self.template.sparse_state.densify(self.G_pat[rows])

    def C_rows(self, rows: np.ndarray) -> np.ndarray:
        """Dense ``(len(rows), n, n)`` capacitance matrices of ``rows``."""
        if not self.sparse:
            return self.C[rows]
        return self.template.sparse_state.densify(self.C_pat[rows])


@dataclasses.dataclass
class BatchDcResult:
    """Per-design outcome of a batched DC solve."""

    x: np.ndarray               # (B, n) solution vectors
    converged: np.ndarray       # (B,) bool
    iterations: np.ndarray      # (B,) int — Newton iterations consumed
    residual_norm: np.ndarray   # (B,) float — final |F| (inf-norm)


def _residual_batch(stack: SystemStack, X: np.ndarray, idx: np.ndarray,
                    source_scale: float, gmin: float) -> np.ndarray:
    """Stacked KCL residuals of designs ``idx`` at solutions ``X[idx]``."""
    tpl = stack.template
    Xa = X[idx]
    F = (stack.G[idx] @ Xa[..., None])[..., 0] - source_scale * stack.b_dc[idx]
    if stack.dev is not None:
        Xp = np.concatenate([Xa, np.zeros((len(idx), 1))], axis=1)
        V = Xp[:, tpl._terms_pad]
        ids = eval_ids_batch(stack.dev.take(idx), V)
        F += ids @ tpl._res_map
    if gmin > 0.0:
        F[:, :stack.n_nodes] += gmin * Xa[:, :stack.n_nodes]
    return F


def _solve_active(A: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched solve with per-design singularity isolation.

    Returns ``(X_new, singular_mask)``; singular designs get their input
    row back unchanged and are flagged.
    """
    try:
        return np.linalg.solve(A, rhs[..., None])[..., 0], np.zeros(
            len(A), dtype=bool)
    except np.linalg.LinAlgError:
        out = np.empty_like(rhs)
        bad = np.zeros(len(A), dtype=bool)
        for i in range(len(A)):
            try:
                out[i] = np.linalg.solve(A[i], rhs[i])
            except np.linalg.LinAlgError:
                out[i] = 0.0
                bad[i] = True
        return out, bad


def _newton_batch(stack: SystemStack, X: np.ndarray, idx: np.ndarray,
                  gmin: float, source_scale: float, max_iter: int,
                  vtol: float, itol: float, damping: float
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Damped Newton on designs ``idx``; updates ``X`` rows in place.

    Returns ``(converged, iterations, fnorm)`` aligned with ``idx`` —
    the batched counterpart of ``repro.sim.dc._newton``, with converged
    designs dropping out of the stacked linear solve.

    Like the scalar driver, designs that pass the residual gate stay in
    the batch for up to ``_POLISH_ITERS`` extra polish rounds (skipped
    once their step is below ``_POLISH_STAG``), which pins each endpoint
    to the root at machine precision: warm-started and cold solves of
    the same design agree to <= 1e-9 in the measured specs — the
    :mod:`repro.sim.store` cold-equivalence contract.  A polish round
    can only tighten an already-converged design, never un-converge it.
    """
    tpl = stack.template
    n, n1 = stack.size, stack.size + 1
    B = len(idx)
    converged = np.zeros(B, dtype=bool)
    dead = np.zeros(B, dtype=bool)        # singular-matrix designs
    iterations = np.zeros(B, dtype=np.int64)
    fnorm = np.full(B, np.inf)
    polish = np.full(B, -1, dtype=np.int64)  # -1: converging; >=0: rounds left
    active = np.arange(B)                 # positions into idx
    diag = np.arange(stack.n_nodes)
    # Per-round work buffers, sliced to the active count (the active set
    # only shrinks); the device bank is re-subset only when it changes.
    A_buf = np.empty((B, n1, n1))
    rhs_buf = np.empty((B, n1))
    Xp_buf = np.zeros((B, n1))
    scatter_buf = np.empty((B, n1 * n1))
    dev_act = stack.dev.take(idx) if stack.dev is not None else None
    G_act = stack.G[idx]
    b_act = stack.b_dc[idx]
    for it in range(1, max_iter + 1):
        a = len(active)
        if a == 0:
            break
        rows = idx[active]
        Xa = X[rows]
        A = A_buf[:a]
        # The core is overwritten below; only the padding strips (which
        # accumulate ground-terminal scatter adds) need re-zeroing.
        A[:, n, :] = 0.0
        A[:, :, n] = 0.0
        A[:, :n, :n] = G_act
        rhs = rhs_buf[:a]
        rhs[:, n] = 0.0
        rhs[:, :n] = source_scale * b_act
        if dev_act is not None:
            Xp = Xp_buf[:a]
            Xp[:, :n] = Xa
            V = Xp[:, tpl._terms_pad]                       # (a, K, 4)
            i_d, g = eval_companion_batch(dev_act, V)
            prod = np.matmul(g.reshape(a, -1), tpl.newton_g_map,
                             out=scatter_buf[:a])
            flat = A.reshape(a, -1)
            np.add(flat, prod, out=flat)
            i_eq = i_d - (g * V).sum(-1)
            rhs += i_eq @ tpl._newton_i_map
        if gmin > 0.0:
            A[:, diag, diag] += gmin
        x_new, singular = _solve_active(A[:, :n, :n], rhs[:, :n])
        iterations[active] = it
        shrunk = False
        if singular.any():
            # A design whose Jacobian degenerates *during polish* is
            # already converged — drop it from the batch, keep the
            # pre-polish iterate; only pre-convergence singularity kills.
            sing_rows = active[singular]
            dead[sing_rows[polish[sing_rows] < 0]] = True
            ok_rows = ~singular
            active = active[ok_rows]
            x_new, Xa = x_new[ok_rows], Xa[ok_rows]
            rows = idx[active]
            shrunk = True
            if len(active) == 0:
                break
        dx = x_new - Xa
        step = np.abs(dx).max(axis=1)
        over = step > damping
        if over.any():
            dx[over] *= (damping / step[over])[:, None]
        X[rows] = Xa + dx
        drop = np.zeros(len(active), dtype=bool)
        polishing = polish[active] >= 0
        if polishing.any():
            pol_rows = active[polishing]
            polish[pol_rows] -= 1
            finished = (polish[pol_rows] < 0) | (step[polishing] < _POLISH_STAG)
            drop[np.nonzero(polishing)[0][finished]] = True
        check = (step < vtol) & ~polishing
        if check.any():
            sub_local = np.nonzero(check)[0]
            sub = active[sub_local]
            F = _residual_batch(stack, X, idx[sub], source_scale, gmin)
            fn = np.abs(F).max(axis=1)
            good = fn < itol
            fnorm[sub] = fn
            if good.any():
                converged[sub[good]] = True
                stag = (step[sub_local[good]] < _POLISH_STAG) \
                    if _POLISH_ITERS > 0 else np.ones(int(good.sum()), dtype=bool)
                polish[sub[good][~stag]] = _POLISH_ITERS
                drop[sub_local[good][stag]] = True
        if drop.any():
            active = active[~drop]
            shrunk = True
        if shrunk:
            # Active set shrank: re-subset the per-round operands.
            G_act = stack.G[idx[active]]
            b_act = stack.b_dc[idx[active]]
            if stack.dev is not None:
                dev_act = stack.dev.take(idx[active])
    # Final residuals for non-converged, non-dead designs.
    left = ~converged & ~dead
    if left.any():
        F = _residual_batch(stack, X, idx[left], source_scale, gmin)
        fnorm[left] = np.abs(F).max(axis=1)
    return converged, iterations, fnorm


def solve_dc_batch(stack: SystemStack, x0: np.ndarray | None = None, *,
                   max_iter: int = 120, vtol: float = 1e-3,
                   itol: float = 1e-9, damping: float = 0.4) -> BatchDcResult:
    """Find the DC operating points of every design in ``stack``.

    Mirrors :func:`repro.sim.dc.solve_dc`: plain damped Newton first, then
    gmin stepping for the failures, then source stepping for whatever is
    left — each stage running batched with per-design masking.  Designs
    that fail every strategy are reported with ``converged=False``
    (callers map them to pessimistic failure measurements, exactly like
    the scalar path maps :class:`~repro.errors.ConvergenceError`).

    Sparse-engine stacks dispatch to
    :func:`repro.sim.sparse.solve_dc_batch_sparse` — same strategies,
    same seeds, same result contract, but each design factorises through
    SuperLU instead of joining a dense ``(B, n, n)`` LAPACK batch.
    """
    if stack.sparse:
        from repro.sim.sparse import solve_dc_batch_sparse
        return solve_dc_batch_sparse(stack, x0, max_iter=max_iter, vtol=vtol,
                                     itol=itol, damping=damping)
    B, n = stack.n_designs, stack.size
    if x0 is None:
        X = np.zeros((B, n))
    else:
        X = np.array(x0, dtype=float)
        if X.shape != (B, n):
            raise ValueError(f"x0 has shape {X.shape}, expected {(B, n)}")
    x_start = X.copy()
    total_iters = np.zeros(B, dtype=np.int64)
    all_idx = np.arange(B)

    converged, iters, fnorm = _newton_batch(
        stack, X, all_idx, 0.0, 1.0, max_iter, vtol, itol, damping)
    total_iters += iters

    # gmin stepping for the failures (warm-chained through the schedule;
    # a design leaves the chain at its first non-converged stage).
    chain = all_idx[~converged]
    if len(chain):
        X[chain] = x_start[chain]
        survivors = chain
        for gmin in _GMIN_STEPS:
            if len(survivors) == 0:
                break
            ok, iters, fn = _newton_batch(
                stack, X, survivors, gmin, 1.0, max_iter, vtol, itol, damping)
            total_iters[survivors] += iters
            fnorm[survivors] = fn
            survivors = survivors[ok]
        converged[survivors] = True

    # Source stepping from zero for whatever is left.
    remaining = all_idx[~converged]
    if len(remaining):
        X[remaining] = 0.0
        survivors = remaining
        for scale in _SOURCE_STEPS:
            if len(survivors) == 0:
                break
            ok, iters, fn = _newton_batch(
                stack, X, survivors, 0.0, scale, max_iter, vtol, itol, damping)
            total_iters[survivors] += iters
            fnorm[survivors] = fn
            survivors = survivors[ok]
        converged[survivors] = True

    return BatchDcResult(x=X, converged=converged, iterations=total_iters,
                         residual_norm=fnorm)
