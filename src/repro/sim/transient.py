"""Nonlinear transient analysis (trapezoidal integration + Newton).

The large-signal counterpart of :mod:`repro.sim.linear`: each time step
solves the nonlinear system

    ``C (x_{k+1} - x_k) = (h/2) (f(x_{k+1}, t_{k+1}) + f(x_k, t_k))``

with ``f(x, t) = b(t) - G x - i_nl(x)`` by damped Newton iteration,
warm-started from the previous step.  Time-varying stimuli are supplied as
``waveforms={"V1": fn(t) -> value}`` overriding the DC value of the named
source during the run (the classic PWL/pulse testbench pattern).

Two engines share the per-step algebra:

* :func:`transient_analysis` — one design.  Device evaluation and stamp
  assembly are vectorised over the netlist's MOSFETs (the same scatter
  maps the DC Newton loop uses); the source vector is built once per step
  and handed forward as the next step's ``b_prev``; the device capacitance
  matrix is refreshed only when the state has moved far enough to change
  the operating region (:data:`C_REFRESH_V`).
* :func:`transient_analysis_batch` — B stacked designs
  (:class:`~repro.sim.batch.SystemStack`) integrate in lockstep: one
  stacked companion evaluation and one batched linear solve per Newton
  iteration, with per-design convergence masking so finished designs drop
  out of the linear algebra within each time step.  Both engines run the
  identical per-step update, so their waveforms agree to accumulated
  rounding (~1e-12) when started from the same state.

Used by the examples and the verification tests (e.g. checking that the
small-signal settling measurement agrees with a true large-signal step for
small steps); the RL hot loop uses the cheaper linearised analyses.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.circuits.elements import CurrentSource, VoltageSource
from repro.circuits.mosfet import eval_companion_batch, eval_ids_batch
from repro.errors import AnalysisError, ConvergenceError
from repro.sim.batch import SystemStack, _solve_active, solve_dc_batch
from repro.sim.dc import solve_dc
from repro.sim.system import MnaSystem

Waveform = Callable[[float], float]

#: State movement [V] beyond which the device capacitance matrix is
#: refreshed.  Between refreshes the operating region is assumed
#: unchanged — the same order of approximation as freezing C within a
#: step, which the trapezoidal companion already does.
C_REFRESH_V = 1e-3


def step_waveform(before: float, after: float, t_step: float = 0.0) -> Waveform:
    """A step stimulus: ``before`` for t < t_step, ``after`` afterwards."""

    def wave(t: float) -> float:
        return before if t < t_step else after

    return wave


def pulse_waveform(low: float, high: float, delay: float, rise: float,
                   width: float, fall: float | None = None) -> Waveform:
    """SPICE-style trapezoidal pulse."""
    fall = rise if fall is None else fall

    def wave(t: float) -> float:
        t = t - delay
        if t < 0.0:
            return low
        if t < rise:
            return low + (high - low) * t / rise
        t -= rise
        if t < width:
            return high
        t -= width
        if t < fall:
            return high - (high - low) * t / fall
        return low

    return wave


@dataclasses.dataclass
class TransientResult:
    """Waveforms from a transient run."""

    system: MnaSystem
    time: np.ndarray       # (T,)
    solutions: np.ndarray  # (T, size)

    def voltage(self, node: str) -> np.ndarray:
        """Node-voltage waveform over the simulated interval."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.time))
        return self.solutions[:, i]

    def branch_current(self, element_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined element."""
        return self.solutions[:, self.system.branch_index[element_name]]


def _check_waveforms(system: MnaSystem,
                     waveforms: dict[str, Waveform]) -> None:
    for name in waveforms:
        if name not in system.netlist:
            raise AnalysisError(f"waveform refers to unknown element {name!r}")
        element = system.netlist[name]
        if not isinstance(element, (VoltageSource, CurrentSource)):
            raise AnalysisError(
                f"waveform target {name!r} is not an independent source")


def _source_delta(system: MnaSystem, waveforms: dict[str, Waveform],
                  t: float) -> np.ndarray:
    """Deviation of the excitation vector from ``b_dc`` at time ``t``.

    ``b(t) = b_dc + delta(t)``; the delta depends only on the waveform
    targets' *structure* (branch/node indices) and their DC values, so one
    delta serves every slice of a stacked run whose waveform sources share
    the same DC value (the standard shared-testbench case).
    """
    delta = np.zeros(system.size)
    for name, wave in waveforms.items():
        element = system.netlist[name]
        value = wave(t)
        if isinstance(element, VoltageSource):
            delta[system.branch_index[name]] += value - element.dc
        else:  # CurrentSource (validated in _check_waveforms)
            i = system.node_index[element.p]
            j = system.node_index[element.n]
            dv = value - element.dc
            if i >= 0:
                delta[i] -= dv
            if j >= 0:
                delta[j] += dv
    return delta


def _source_vector(system: MnaSystem, waveforms: dict[str, Waveform],
                   t: float) -> np.ndarray:
    """DC excitation vector with waveform overrides applied at time ``t``."""
    return system.b_dc + _source_delta(system, waveforms, t)


def transient_analysis(system: MnaSystem, *, t_stop: float, dt: float,
                       waveforms: dict[str, Waveform] | None = None,
                       x0: np.ndarray | None = None,
                       max_newton: int = 50, vtol: float = 1e-8) -> TransientResult:
    """Integrate the full nonlinear circuit equations over ``[0, t_stop]``.

    Parameters
    ----------
    t_stop, dt:
        Stop time and fixed step size [s].
    waveforms:
        Optional time functions per independent source name.
    x0:
        Initial state; when omitted, the DC operating point at t=0 (with
        waveform overrides applied) is used — the standard SPICE behaviour.
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise AnalysisError(f"bad transient window t_stop={t_stop}, dt={dt}")
    waveforms = waveforms or {}
    _check_waveforms(system, waveforms)

    if x0 is None:
        op0 = solve_dc(system)
        x = op0.x.copy()
        # Re-solve with t=0 waveform values if they differ from the DC values.
        if waveforms:
            b0 = _source_vector(system, waveforms, 0.0)
            if not np.allclose(b0, system.b_dc):
                x = _solve_static(system, b0, x, max_newton, vtol)
    else:
        x = np.asarray(x0, dtype=float).copy()

    n_steps = int(np.ceil(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_steps + 1, system.size))
    states[0] = x

    if getattr(system, "sparse", False):
        return _transient_sparse(system, times, states, x, waveforms,
                                 max_newton, vtol, dt)

    G = system.G
    h2 = dt / 2.0
    C = system.capacitance_matrix_at(x)
    x_cap = x.copy()                     # state C was last evaluated at
    b_prev = _source_vector(system, waveforms, times[0])
    for k in range(1, n_steps + 1):
        # Device capacitances depend on the operating region; refresh the
        # C matrix only once the state has actually moved.
        if system.mosfets and np.max(np.abs(x - x_cap)) > C_REFRESH_V:
            C = system.capacitance_matrix_at(x)
            x_cap = x.copy()
        t_now = times[k]
        b_now = _source_vector(system, waveforms, t_now)
        f_prev = b_prev - G @ x - system.nonlinear_current(x)
        # Newton on F(v) = C (v - x) - h/2 (b_now - G v - i_nl(v)) - h/2 f_prev
        v = x.copy()
        converged = False
        step = np.inf
        for _ in range(max_newton):
            i_nl, J_nl = system.nonlinear_current_and_jacobian(v)
            F = C @ (v - x) - h2 * (b_now - G @ v - i_nl) - h2 * f_prev
            J = C + h2 * (G + J_nl)
            try:
                dv = np.linalg.solve(J, -F)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    f"transient Jacobian singular at t={t_now:.3e}s")
            step = float(np.max(np.abs(dv))) if dv.size else 0.0
            if step > 0.5:
                dv *= 0.5 / step
            v = v + dv
            if step < vtol:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton failed at t={t_now:.3e}s", residual=step)
        x = v
        states[k] = x
        b_prev = b_now
    return TransientResult(system=system, time=times, solutions=states)


def _transient_sparse(system: MnaSystem, times: np.ndarray, states: np.ndarray,
                      x: np.ndarray, waveforms: dict[str, Waveform],
                      max_newton: int, vtol: float,
                      dt: float) -> TransientResult:
    """Sparse-engine integration loop of :func:`transient_analysis`.

    Runs the identical per-step trapezoidal/Newton algebra (same damping,
    same C-refresh gating), but every matrix lives on the structure's
    master pattern: the step Jacobian ``C + h/2 (G + J_nl)`` is assembled
    as one ``.data`` vector and factored with SuperLU.  Purely linear
    netlists (no MOSFETs — e.g. extracted RC interconnect meshes) have a
    *constant* Jacobian, which is factored exactly once for the whole
    run — the cached-factorisation fast path.
    """
    from repro.circuits.mosfet import eval_companion_batch

    st = system.sparse_state
    h2 = dt / 2.0
    Gd = system._sparse_G_data()
    G_csc = st.matrix(Gd)
    Cd = system.sparse_cap_data(x)
    C_csc = st.matrix(Cd)
    x_cap = x.copy()
    pure_linear = system.device_arrays is None
    lu_const = st.lu(Cd + h2 * Gd) if pure_linear else None
    if pure_linear and lu_const is None:
        raise ConvergenceError("transient Jacobian singular at t=0")
    b_prev = _source_vector(system, waveforms, times[0])
    for k in range(1, len(times)):
        if not pure_linear and np.max(np.abs(x - x_cap)) > C_REFRESH_V:
            Cd = system.sparse_cap_data(x)
            C_csc = st.matrix(Cd)
            x_cap = x.copy()
        t_now = times[k]
        b_now = _source_vector(system, waveforms, t_now)
        f_prev = b_prev - G_csc @ x - system.nonlinear_current(x)
        # Newton on F(v) = C (v - x) - h/2 (b_now - G v - i_nl(v)) - h/2 f_prev
        v = x.copy()
        converged = False
        step = np.inf
        for _ in range(max_newton):
            if pure_linear:
                i_nl = 0.0
                lu = lu_const
            else:
                V = system._terminal_voltages(v)
                i_d, g = eval_companion_batch(system.device_arrays, V)
                i_nl = i_d @ system._res_map
                lu = st.lu(st.newton_data(Cd + h2 * Gd, h2 * g))
                if lu is None:
                    raise ConvergenceError(
                        f"transient Jacobian singular at t={t_now:.3e}s")
            F = (C_csc @ (v - x) - h2 * (b_now - G_csc @ v - i_nl)
                 - h2 * f_prev)
            dv = lu.solve(-F)
            step = float(np.max(np.abs(dv))) if dv.size else 0.0
            if step > 0.5:
                dv *= 0.5 / step
            v = v + dv
            if step < vtol:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton failed at t={t_now:.3e}s", residual=step)
        x = v
        states[k] = x
        b_prev = b_now
    return TransientResult(system=system, time=times, solutions=states)


@dataclasses.dataclass
class BatchTransientResult:
    """Waveforms of a stacked transient run.

    ``converged[i]`` is False when design ``i`` failed its initial DC
    solve or a Newton step; its ``solutions`` rows are NaN from the first
    failed time point onward (the surviving designs keep integrating).
    """

    stack: SystemStack
    time: np.ndarray       # (T,)
    solutions: np.ndarray  # (B, T, size)
    converged: np.ndarray  # (B,) bool

    def voltage(self, node: str) -> np.ndarray:
        """``(B, T)`` node-voltage waveforms."""
        i = self.stack.template.node_index[node]
        if i < 0:
            return np.zeros(self.solutions.shape[:2])
        return self.solutions[:, :, i]

    def branch_current(self, element_name: str) -> np.ndarray:
        """``(B, T)`` branch-current waveforms of a voltage-defined element."""
        return self.solutions[:, :, self.stack.template.branch_index[element_name]]


def _capacitance_rows(stack: SystemStack, X: np.ndarray,
                      rows: np.ndarray) -> np.ndarray:
    """Large-signal capacitance matrices of slices ``rows`` at ``X[rows]``."""
    from repro.circuits.mosfet import state_arrays_batch, terminal_voltages_batch
    tpl = stack.template
    n, n1 = stack.size, stack.size + 1
    B = len(rows)
    Cp = np.zeros((B, n1, n1))
    Cp[:, :n, :n] = stack.C_rows(rows)
    if stack.dev is not None:
        dev = stack.dev.take(rows)
        Xp = np.concatenate([X[rows], np.zeros((B, 1))], axis=1)
        V = Xp[:, tpl._terms_pad]
        arrays = state_arrays_batch(dev, *terminal_voltages_batch(dev, V))
        c4 = np.stack([arrays["cgs"], arrays["cgd"], arrays["cdb"],
                       arrays["csb"]], axis=-1).reshape(B, -1)
        Cp.reshape(B, -1)[:] += c4 @ tpl.cap_map
    return np.ascontiguousarray(Cp[:, :n, :n])


def _nonlinear_current_batch(stack: SystemStack, X: np.ndarray,
                             rows: np.ndarray) -> np.ndarray:
    """Stacked MOSFET KCL currents of slices ``rows`` at ``X[rows]``."""
    if stack.dev is None:
        return np.zeros((len(rows), stack.size))
    tpl = stack.template
    Xp = np.concatenate([X[rows], np.zeros((len(rows), 1))], axis=1)
    V = Xp[:, tpl._terms_pad]
    return eval_ids_batch(stack.dev.take(rows), V) @ tpl._res_map


def transient_analysis_batch(stack: SystemStack, *, t_stop: float, dt: float,
                             waveforms: dict[str, Waveform] | None = None,
                             x0: np.ndarray | None = None,
                             max_newton: int = 50,
                             vtol: float = 1e-8) -> BatchTransientResult:
    """Integrate every stacked design over ``[0, t_stop]`` in lockstep.

    The batched counterpart of :func:`transient_analysis`: one trapezoidal
    step advances all designs together, each Newton iteration evaluating
    every device of every active design in one stacked call and solving
    one batched linear system.  Per-design convergence masking drops
    finished designs out of the iteration; a design whose Newton fails is
    flagged in ``converged`` and NaN-filled instead of aborting the batch.

    ``waveforms`` are shared across designs and must target sources whose
    DC value is identical in every slice (the shared-testbench contract —
    the override delta is computed once from the template).  ``x0`` is the
    ``(B, n)`` initial state; when omitted, each design starts from its
    own batched DC operating point.
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise AnalysisError(f"bad transient window t_stop={t_stop}, dt={dt}")
    waveforms = waveforms or {}
    tpl = stack.template
    _check_waveforms(tpl, waveforms)
    B, n = stack.n_designs, stack.size
    n1 = n + 1

    if x0 is None:
        dc = solve_dc_batch(stack)
        X = dc.x
        alive = dc.converged.copy()
        if waveforms:
            delta0 = _source_delta(tpl, waveforms, 0.0)
            if np.any(delta0):
                ok = _solve_static_batch(stack, stack.b_dc + delta0, X,
                                         np.nonzero(alive)[0], max_newton, vtol)
                alive[np.nonzero(alive)[0]] &= ok
    else:
        X = np.array(x0, dtype=float)
        if X.shape != (B, n):
            raise AnalysisError(f"x0 has shape {X.shape}, expected {(B, n)}")
        alive = np.ones(B, dtype=bool)

    n_steps = int(np.ceil(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.full((n_steps + 1, B, n), np.nan)
    states[0, alive] = X[alive]

    h2 = dt / 2.0
    all_rows = np.arange(B)
    # Sparse stacks densify once up front: the batch engine's stacked
    # linear algebra is dense by design (it serves the small-circuit
    # regime; large sparse netlists integrate per design instead).
    G_all = stack.G if not stack.sparse else stack.G_rows(all_rows)
    C = np.zeros((B, n, n))
    C[alive] = _capacitance_rows(stack, X, all_rows[alive])
    X_cap = X.copy()
    b_prev = stack.b_dc + _source_delta(tpl, waveforms, times[0])[None, :]
    has_dev = stack.dev is not None
    for k in range(1, n_steps + 1):
        rows = all_rows[alive]
        if len(rows) == 0:
            break
        if has_dev:
            moved = rows[np.max(np.abs(X[rows] - X_cap[rows]), axis=1)
                         > C_REFRESH_V]
            if len(moved):
                C[moved] = _capacitance_rows(stack, X, moved)
                X_cap[moved] = X[moved]
        t_now = times[k]
        b_now = stack.b_dc + _source_delta(tpl, waveforms, t_now)[None, :]
        f_prev = (b_prev[rows] - (G_all[rows] @ X[rows, :, None])[..., 0]
                  - _nonlinear_current_batch(stack, X, rows))
        # Newton on F(v) = C (v - x) - h/2 (b_now - G v - i_nl(v)) - h/2 f_prev
        V = X[rows].copy()
        active = np.arange(len(rows))     # positions into rows
        done = np.zeros(len(rows), dtype=bool)
        for _ in range(max_newton):
            if len(active) == 0:
                break
            a = len(active)
            r = rows[active]
            Va = V[active]
            if has_dev:
                Xp = np.concatenate([Va, np.zeros((a, 1))], axis=1)
                Vt = Xp[:, tpl._terms_pad]
                i_d, g = eval_companion_batch(stack.dev.take(r), Vt)
                i_nl = i_d @ tpl._res_map
                Jp = (g.reshape(a, -1) @ tpl.newton_g_map).reshape(a, n1, n1)
                J_nl = Jp[:, :n, :n]
            else:
                i_nl = np.zeros((a, n))
                J_nl = 0.0
            F = ((C[r] @ (Va - X[r])[..., None])[..., 0]
                 - h2 * (b_now[r] - (G_all[r] @ Va[..., None])[..., 0]
                         - i_nl)
                 - h2 * f_prev[active])
            J = C[r] + h2 * (G_all[r] + J_nl)
            dv, singular = _solve_active(J, -F)
            if singular.any():
                # Dead designs: flagged, dropped; they keep their last state.
                keep = ~singular
                alive[r[singular]] = False
                active, dv, Va = active[keep], dv[keep], Va[keep]
                if len(active) == 0:
                    break
            step = np.abs(dv).max(axis=1) if n else np.zeros(len(active))
            over = step > 0.5
            if over.any():
                dv[over] *= (0.5 / step[over])[:, None]
            V[active] = Va + dv
            conv = step < vtol
            if conv.any():
                done[active[conv]] = True
                active = active[~conv]
        if len(active):
            alive[rows[active]] = False   # Newton exhausted max_newton
        ok_rows = rows[done]
        X[ok_rows] = V[done]
        states[k, ok_rows] = X[ok_rows]
        b_prev = b_now
    return BatchTransientResult(stack=stack, time=times,
                                solutions=np.ascontiguousarray(
                                    states.transpose(1, 0, 2)),
                                converged=alive)


def _solve_static_batch(stack: SystemStack, b: np.ndarray, X: np.ndarray,
                        rows: np.ndarray, max_iter: int,
                        vtol: float) -> np.ndarray:
    """Batched Newton solve of ``G x + i_nl(x) = b[rows]`` warm from ``X``.

    Updates ``X`` rows in place; returns a bool mask (aligned with
    ``rows``) of designs that converged."""
    tpl = stack.template
    n, n1 = stack.size, stack.size + 1
    ok = np.zeros(len(rows), dtype=bool)
    active = np.arange(len(rows))
    G_all = stack.G if not stack.sparse else stack.G_rows(
        np.arange(stack.n_designs))
    for _ in range(max_iter):
        if len(active) == 0:
            break
        a = len(active)
        r = rows[active]
        Xa = X[r]
        if stack.dev is not None:
            Xp = np.concatenate([Xa, np.zeros((a, 1))], axis=1)
            Vt = Xp[:, tpl._terms_pad]
            i_d, g = eval_companion_batch(stack.dev.take(r), Vt)
            i_nl = i_d @ tpl._res_map
            J_nl = (g.reshape(a, -1) @ tpl.newton_g_map
                    ).reshape(a, n1, n1)[:, :n, :n]
        else:
            i_nl = np.zeros((a, n))
            J_nl = 0.0
        F = (G_all[r] @ Xa[..., None])[..., 0] + i_nl - b[r]
        dx, singular = _solve_active(G_all[r] + J_nl, -F)
        if singular.any():
            keep = ~singular
            active, dx, Xa = active[keep], dx[keep], Xa[keep]
            if len(active) == 0:
                break
            r = rows[active]
        step = np.abs(dx).max(axis=1)
        over = step > 0.4
        if over.any():
            dx[over] *= (0.4 / step[over])[:, None]
        X[r] = Xa + dx
        conv = step < vtol
        if conv.any():
            ok[active[conv]] = True
            active = active[~conv]
    return ok


def _nonlinear_current(system: MnaSystem, x: np.ndarray) -> np.ndarray:
    """Backward-compatible alias of :meth:`MnaSystem.nonlinear_current`."""
    return system.nonlinear_current(x)


def _nonlinear_current_and_jacobian(system: MnaSystem,
                                    x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Backward-compatible alias of
    :meth:`MnaSystem.nonlinear_current_and_jacobian`."""
    return system.nonlinear_current_and_jacobian(x)


def _solve_static(system: MnaSystem, b: np.ndarray, x0: np.ndarray,
                  max_iter: int, vtol: float) -> np.ndarray:
    """Newton solve of G x + i_nl(x) = b from a warm start."""
    x = x0.copy()
    for _ in range(max_iter):
        i_nl, J_nl = system.nonlinear_current_and_jacobian(x)
        F = system.G @ x + i_nl - b
        try:
            dx = np.linalg.solve(system.G + J_nl, -F)
        except np.linalg.LinAlgError:
            raise ConvergenceError("static re-solve Jacobian singular")
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        if step > 0.4:
            dx *= 0.4 / step
        x = x + dx
        if step < vtol:
            return x
    raise ConvergenceError("static re-solve did not converge")
