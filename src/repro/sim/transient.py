"""Nonlinear transient analysis (trapezoidal integration + Newton).

The large-signal counterpart of :mod:`repro.sim.linear`: each time step
solves the nonlinear system

    ``C (x_{k+1} - x_k) = (h/2) (f(x_{k+1}, t_{k+1}) + f(x_k, t_k))``

with ``f(x, t) = b(t) - G x - i_nl(x)`` by damped Newton iteration,
warm-started from the previous step.  Time-varying stimuli are supplied as
``waveforms={"V1": fn(t) -> value}`` overriding the DC value of the named
source during the run (the classic PWL/pulse testbench pattern).

Used by the examples and the verification tests (e.g. checking that the
small-signal settling measurement agrees with a true large-signal step for
small steps); the RL hot loop uses the cheaper linearised analyses.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.circuits.elements import CurrentSource, VoltageSource
from repro.errors import AnalysisError, ConvergenceError
from repro.sim.dc import OperatingPoint, solve_dc
from repro.sim.system import MnaSystem

Waveform = Callable[[float], float]


def step_waveform(before: float, after: float, t_step: float = 0.0) -> Waveform:
    """A step stimulus: ``before`` for t < t_step, ``after`` afterwards."""

    def wave(t: float) -> float:
        return before if t < t_step else after

    return wave


def pulse_waveform(low: float, high: float, delay: float, rise: float,
                   width: float, fall: float | None = None) -> Waveform:
    """SPICE-style trapezoidal pulse."""
    fall = rise if fall is None else fall

    def wave(t: float) -> float:
        t = t - delay
        if t < 0.0:
            return low
        if t < rise:
            return low + (high - low) * t / rise
        t -= rise
        if t < width:
            return high
        t -= width
        if t < fall:
            return high - (high - low) * t / fall
        return low

    return wave


@dataclasses.dataclass
class TransientResult:
    """Waveforms from a transient run."""

    system: MnaSystem
    time: np.ndarray       # (T,)
    solutions: np.ndarray  # (T, size)

    def voltage(self, node: str) -> np.ndarray:
        """Node-voltage waveform over the simulated interval."""
        i = self.system.node_index[node]
        if i < 0:
            return np.zeros(len(self.time))
        return self.solutions[:, i]

    def branch_current(self, element_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined element."""
        return self.solutions[:, self.system.branch_index[element_name]]


def _source_vector(system: MnaSystem, waveforms: dict[str, Waveform],
                   t: float) -> np.ndarray:
    """DC excitation vector with waveform overrides applied at time ``t``."""
    b = system.b_dc.copy()
    for name, wave in waveforms.items():
        element = system.netlist[name]
        value = wave(t)
        if isinstance(element, VoltageSource):
            k = system.branch_index[name]
            b[k] += value - element.dc
        elif isinstance(element, CurrentSource):
            i = system.node_index[element.p]
            j = system.node_index[element.n]
            delta = value - element.dc
            if i >= 0:
                b[i] -= delta
            if j >= 0:
                b[j] += delta
        else:
            raise AnalysisError(
                f"waveform target {name!r} is not an independent source")
    return b


def transient_analysis(system: MnaSystem, *, t_stop: float, dt: float,
                       waveforms: dict[str, Waveform] | None = None,
                       x0: np.ndarray | None = None,
                       max_newton: int = 50, vtol: float = 1e-8) -> TransientResult:
    """Integrate the full nonlinear circuit equations over ``[0, t_stop]``.

    Parameters
    ----------
    t_stop, dt:
        Stop time and fixed step size [s].
    waveforms:
        Optional time functions per independent source name.
    x0:
        Initial state; when omitted, the DC operating point at t=0 (with
        waveform overrides applied) is used — the standard SPICE behaviour.
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise AnalysisError(f"bad transient window t_stop={t_stop}, dt={dt}")
    waveforms = waveforms or {}
    for name in waveforms:
        if name not in system.netlist:
            raise AnalysisError(f"waveform refers to unknown element {name!r}")

    if x0 is None:
        op0 = solve_dc(system)
        x = op0.x.copy()
        # Re-solve with t=0 waveform values if they differ from the DC values.
        if waveforms:
            b0 = _source_vector(system, waveforms, 0.0)
            if not np.allclose(b0, system.b_dc):
                x = _solve_static(system, b0, x, max_newton, vtol)
    else:
        x = np.asarray(x0, dtype=float).copy()

    n_steps = int(np.ceil(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_steps + 1, system.size))
    states[0] = x

    G = system.G
    h2 = dt / 2.0
    for k in range(1, n_steps + 1):
        # Device capacitances depend on the operating region, so the C
        # matrix is refreshed from the state at the start of each step.
        C = system.capacitance_matrix_at(x)
        t_prev, t_now = times[k - 1], times[k]
        b_prev = _source_vector(system, waveforms, t_prev)
        b_now = _source_vector(system, waveforms, t_now)
        f_prev = b_prev - G @ x - _nonlinear_current(system, x)
        # Newton on F(v) = C (v - x) - h/2 (b_now - G v - i_nl(v)) - h/2 f_prev
        v = x.copy()
        converged = False
        for _ in range(max_newton):
            i_nl, J_nl = _nonlinear_current_and_jacobian(system, v)
            F = C @ (v - x) - h2 * (b_now - G @ v - i_nl) - h2 * f_prev
            J = C + h2 * (G + J_nl)
            try:
                dv = np.linalg.solve(J, -F)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    f"transient Jacobian singular at t={t_now:.3e}s")
            step = float(np.max(np.abs(dv))) if dv.size else 0.0
            if step > 0.5:
                dv *= 0.5 / step
            v = v + dv
            if step < vtol:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton failed at t={t_now:.3e}s", residual=step)
        x = v
        states[k] = x
    return TransientResult(system=system, time=times, solutions=states)


def _nonlinear_current(system: MnaSystem, x: np.ndarray) -> np.ndarray:
    i = np.zeros(system.size)
    get = system.voltage_getter(x)
    for k, mosfet in enumerate(system.mosfets):
        i_d = mosfet.eval_companion(get)[0]
        d, s = system._mos_terms[k][0], system._mos_terms[k][2]
        if d >= 0:
            i[d] += i_d
        if s >= 0:
            i[s] -= i_d
    return i


def _nonlinear_current_and_jacobian(system: MnaSystem,
                                    x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    i = np.zeros(system.size)
    J = np.zeros((system.size, system.size))
    get = system.voltage_getter(x)
    for k, mosfet in enumerate(system.mosfets):
        i_d, g_d, g_g, g_s, g_b = mosfet.eval_companion(get)
        d, g, s, b = system._mos_terms[k]
        if d >= 0:
            i[d] += i_d
        if s >= 0:
            i[s] -= i_d
        for idx, g_val in ((d, g_d), (g, g_g), (s, g_s), (b, g_b)):
            if idx >= 0:
                if d >= 0:
                    J[d, idx] += g_val
                if s >= 0:
                    J[s, idx] -= g_val
    return i, J


def _solve_static(system: MnaSystem, b: np.ndarray, x0: np.ndarray,
                  max_iter: int, vtol: float) -> np.ndarray:
    """Newton solve of G x + i_nl(x) = b from a warm start."""
    x = x0.copy()
    for _ in range(max_iter):
        i_nl, J_nl = _nonlinear_current_and_jacobian(system, x)
        F = system.G @ x + i_nl - b
        try:
            dx = np.linalg.solve(system.G + J_nl, -F)
        except np.linalg.LinAlgError:
            raise ConvergenceError("static re-solve Jacobian singular")
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        if step > 0.4:
            dx *= 0.4 / step
        x = x + dx
        if step < vtol:
            return x
    raise ConvergenceError("static re-solve did not converge")
