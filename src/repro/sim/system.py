"""Modified nodal analysis (MNA) system assembly.

:class:`MnaSystem` turns a :class:`~repro.circuits.netlist.Netlist` into
dense numpy matrices:

* ``G`` — conductance matrix (linear elements only),
* ``C`` — capacitance/inductance matrix,
* ``b_dc`` / ``b_ac`` — DC and AC excitation vectors,

with one unknown per non-ground node plus one per voltage-defined branch
(voltage sources, VCVS, inductors).  Nonlinear devices (MOSFETs) are not in
``G``; each Newton iteration stamps their companion model through
:meth:`MnaSystem.newton_matrices`.

The circuits in this reproduction have 5–20 unknowns, so dense linear
algebra is both simpler and faster than sparse here.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.elements import Element
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import GROUND, Netlist
from repro.errors import NetlistError
from repro.units import ROOM_TEMPERATURE


class _Stamper:
    """Accumulates element stamps into an :class:`MnaSystem`'s arrays."""

    def __init__(self, system: "MnaSystem", G: np.ndarray, C: np.ndarray,
                 b_dc: np.ndarray, b_ac: np.ndarray):
        self._system = system
        self._G = G
        self._C = C
        self._b_dc = b_dc
        self._b_ac = b_ac

    def node(self, name: str) -> int:
        return self._system.node_index[name]

    def branch(self, element: Element) -> int:
        return self._system.branch_index[element.name]

    def add_g(self, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            self._G[i, j] += value

    def add_c(self, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            self._C[i, j] += value

    def add_b_dc(self, i: int, value: float) -> None:
        if i >= 0:
            self._b_dc[i] += value

    def add_b_ac(self, i: int, value: float) -> None:
        if i >= 0:
            self._b_ac[i] += value


class MnaSystem:
    """MNA matrices and index maps for one netlist at one temperature.

    Parameters
    ----------
    netlist:
        The circuit.  It is validated (ground reference, DC paths) on
        construction.
    temperature:
        Simulation temperature [K]; used by noise analyses and available to
        elements.
    """

    def __init__(self, netlist: Netlist, temperature: float = ROOM_TEMPERATURE):
        netlist.validate()
        self.netlist = netlist
        self.temperature = float(temperature)

        self.node_index: dict[str, int] = {GROUND: -1}
        for i, node in enumerate(sorted(netlist.nodes())):
            self.node_index[node] = i
        self.n_nodes = len(self.node_index) - 1

        self.branch_index: dict[str, int] = {}
        next_index = self.n_nodes
        for element in netlist:
            if element.has_branch:
                self.branch_index[element.name] = next_index
                next_index += 1
        self.size = next_index

        self.mosfets: tuple[Mosfet, ...] = tuple(
            e for e in netlist if isinstance(e, Mosfet))
        for mosfet in self.mosfets:
            for node in mosfet.nodes:
                if node not in self.node_index:
                    raise NetlistError(
                        f"mosfet {mosfet.name} references unknown node {node!r}")
        # Pre-resolve terminal indices for the Newton hot loop.
        self._mos_terms = np.array(
            [[self.node_index[m.d], self.node_index[m.g],
              self.node_index[m.s], self.node_index[m.b]]
             for m in self.mosfets], dtype=np.intp).reshape(len(self.mosfets), 4)

        self.G = np.zeros((self.size, self.size))
        self.C = np.zeros((self.size, self.size))
        self.b_dc = np.zeros(self.size)
        self.b_ac = np.zeros(self.size, dtype=complex)
        stamper = _Stamper(self, self.G, self.C, self.b_dc, self.b_ac)
        for element in netlist:
            element.stamp(stamper)

    # -- voltage access ------------------------------------------------------
    def voltage_getter(self, x: np.ndarray):
        """Return a ``node name -> voltage`` callable over solution vector ``x``."""
        index = self.node_index

        def get(node: str) -> float:
            i = index[node]
            return 0.0 if i < 0 else float(x[i])

        return get

    # -- Newton companion assembly ---------------------------------------------
    def newton_matrices(self, x: np.ndarray, gmin: float = 0.0,
                        source_scale: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(A, rhs)`` of the companion-model linear system.

        Solving ``A x_new = rhs`` performs one Newton step from ``x``:
        ``A = G + J_nl(x) (+ gmin on node diagonals)`` and
        ``rhs = source_scale * b_dc - i_nl(x) + J_nl(x) x``.
        """
        A = self.G.copy()
        rhs = source_scale * self.b_dc
        get = self.voltage_getter(x)
        for k, mosfet in enumerate(self.mosfets):
            i_d, g_d, g_g, g_s, g_b = mosfet.eval_companion(get)
            d, g, s, b = self._mos_terms[k]
            v_d = 0.0 if d < 0 else x[d]
            v_g = 0.0 if g < 0 else x[g]
            v_s = 0.0 if s < 0 else x[s]
            v_b = 0.0 if b < 0 else x[b]
            i_eq = i_d - (g_d * v_d + g_g * v_g + g_s * v_s + g_b * v_b)
            for idx, g_val in ((d, g_d), (g, g_g), (s, g_s), (b, g_b)):
                if idx >= 0:
                    if d >= 0:
                        A[d, idx] += g_val
                    if s >= 0:
                        A[s, idx] -= g_val
            if d >= 0:
                rhs[d] -= i_eq
            if s >= 0:
                rhs[s] += i_eq
        if gmin > 0.0:
            diag = np.arange(self.n_nodes)
            A[diag, diag] += gmin
        return A, rhs

    def residual(self, x: np.ndarray, source_scale: float = 1.0) -> np.ndarray:
        """KCL/KVL residual ``F(x) = G x + i_nl(x) - b`` (amps / volts)."""
        f = self.G @ x - source_scale * self.b_dc
        get = self.voltage_getter(x)
        for k, mosfet in enumerate(self.mosfets):
            i_d = mosfet.eval_companion(get)[0]
            d, s = self._mos_terms[k][0], self._mos_terms[k][2]
            if d >= 0:
                f[d] += i_d
            if s >= 0:
                f[s] -= i_d
        return f

    # -- small-signal assembly ----------------------------------------------------
    def small_signal_matrices(self, op) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(G_ss, C_ss)`` with every MOSFET's linearised model stamped
        at the operating point ``op``."""
        G = self.G.copy()
        C = self.C.copy()
        stamper = _Stamper(self, G, C, np.zeros(self.size),
                           np.zeros(self.size, dtype=complex))
        for mosfet in self.mosfets:
            mosfet.stamp_small_signal(stamper, op.mosfet_state(mosfet.name))
        return G, C

    def capacitance_matrix_at(self, x: np.ndarray) -> np.ndarray:
        """Capacitance matrix including MOSFET capacitances evaluated at the
        (large-signal) solution ``x`` — used by the nonlinear transient
        engine, where device capacitances vary along the trajectory."""
        C = self.C.copy()
        get = self.voltage_getter(x)
        stamper = _Stamper(self, np.zeros_like(self.G), C,
                           np.zeros(self.size), np.zeros(self.size, dtype=complex))
        for mosfet in self.mosfets:
            state = mosfet.state_at(get)
            d, g = stamper.node(mosfet.d), stamper.node(mosfet.g)
            s, b = stamper.node(mosfet.s), stamper.node(mosfet.b)
            for (i, j, c) in ((g, s, state.cgs), (g, d, state.cgd),
                              (d, b, state.cdb), (s, b, state.csb)):
                stamper.add_c(i, i, c)
                stamper.add_c(j, j, c)
                stamper.add_c(i, j, -c)
                stamper.add_c(j, i, -c)
        return C

    def noise_source_list(self, op):
        """All noise current sources ``(i_index, j_index, psd_fn)`` at ``op``."""
        sources = []
        for element in self.netlist:
            for p, n, psd in element.noise_sources(op):
                sources.append((self.node_index[p], self.node_index[n], psd))
        return sources
